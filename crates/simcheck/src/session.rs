//! Differential testing of the LTL retransmission protocol.
//!
//! Two [`shell::ltl::LtlEngine`]s exchange messages across a scripted lossy
//! channel, all three driven as ordinary [`dcsim`] components. A
//! [`dcsim::Observer`] attached to the engine drains each component's
//! protocol trace after *every* event, feeds it to a pure reference model
//! per direction — [`GbnRefModel`] for go-back-N sessions,
//! [`SrRefModel`] for selective-repeat ones — and cross-checks the real
//! engines' introspection views against the model state. Any divergence —
//! out-of-window transmission, wrong cumulative ack, an inexact SACK
//! bitmap, duplicated or reordered delivery, spurious connection
//! failure — is reported as a [`Violation`] pinned to the exact event
//! index where it appeared.

use crate::model::GbnRefModel;
use crate::sr_model::SrRefModel;
use crate::Violation;
use bytes::Bytes;
use catapult::chaos::{ChaosTargets, FaultConfig, FaultEvent, FaultKind, FaultPlan};
use dcnet::{Msg, NetEvent, NodeAddr, PortId};
use dcsim::{
    Component, ComponentId, Context, Engine, EventRecord, Observer, SimDuration, SimRng, SimTime,
};
use shell::ltl::{
    FrameKind, LtlConfig, LtlEngine, LtlEvent, LtlFrame, LtlMode, Poll, RecvConnView, SendConnView,
};
use std::collections::VecDeque;

const TIMER_TICK: u64 = 1;
const TIMER_POLL: u64 = 2;

/// Retransmission-timer granularity of the session nodes.
const TICK: SimDuration = SimDuration::from_micros(10);
/// One-way channel latency.
const CHANNEL_DELAY: SimDuration = SimDuration::from_nanos(1_200);
/// Outage length modelled for a bad-image load in a session.
const BAD_IMAGE_DOWN: SimDuration = SimDuration::from_micros(800);

/// Command scheduled at a node: submit one message on its send connection.
struct SendCmd {
    counter: u64,
    len: usize,
}

/// One observable protocol action at a node, in occurrence order.
#[derive(Debug, Clone, Copy)]
enum NodeEvent {
    Submitted {
        first_seq: u32,
        frames: u32,
        counter: u64,
    },
    DataTx {
        seq: u32,
    },
    AckTx {
        seq: u32,
    },
    NackTx {
        seq: u32,
    },
    SackTx {
        seq: u32,
        bits: u64,
    },
    DataRx {
        seq: u32,
        last_frag: bool,
    },
    AckRx {
        seq: u32,
    },
    SackRx {
        seq: u32,
        bits: u64,
    },
    NackRx,
    Delivered {
        counter: u64,
    },
    ConnFailed,
}

/// A session endpoint: one real LTL engine pumped the same way the Shell
/// pumps its engine (poll loop + retransmission tick), logging every
/// observable protocol action for the oracle.
struct LtlNode {
    ltl: LtlEngine,
    mtu: usize,
    peer_channel: ComponentId,
    tick_armed: bool,
    poll_armed: bool,
    log: Vec<NodeEvent>,
}

impl LtlNode {
    fn new(ltl: LtlEngine, mtu: usize, peer_channel: ComponentId) -> LtlNode {
        LtlNode {
            ltl,
            mtu,
            peer_channel,
            tick_armed: false,
            poll_armed: false,
            log: Vec::new(),
        }
    }

    fn log_ltl_events(&mut self, events: Vec<LtlEvent>) {
        for ev in events {
            match ev {
                LtlEvent::Deliver { payload, .. } => {
                    let mut head = [0u8; 8];
                    let n = payload.len().min(8);
                    head[..n].copy_from_slice(&payload[..n]);
                    self.log.push(NodeEvent::Delivered {
                        counter: u64::from_be_bytes(head),
                    });
                }
                LtlEvent::ConnectionFailed { .. } => self.log.push(NodeEvent::ConnFailed),
            }
        }
    }

    fn pump(&mut self, ctx: &mut Context<'_, Msg>) {
        loop {
            match self.ltl.poll(ctx.now()) {
                Poll::Ready(pkt) => {
                    if let Ok(frame) = LtlFrame::decode(&pkt.payload) {
                        let ev = match frame.kind {
                            FrameKind::Data => Some(NodeEvent::DataTx { seq: frame.seq }),
                            FrameKind::Ack => Some(NodeEvent::AckTx { seq: frame.seq }),
                            FrameKind::Nack => Some(NodeEvent::NackTx { seq: frame.seq }),
                            FrameKind::Sack => frame.sack_bits().map(|bits| NodeEvent::SackTx {
                                seq: frame.seq,
                                bits,
                            }),
                            _ => None,
                        };
                        if let Some(ev) = ev {
                            self.log.push(ev);
                        }
                    }
                    ctx.send(self.peer_channel, Msg::packet(pkt, PortId(0)));
                }
                Poll::Later(t) => {
                    if !self.poll_armed {
                        self.poll_armed = true;
                        ctx.timer_after(t.saturating_since(ctx.now()), TIMER_POLL);
                    }
                    break;
                }
                Poll::Empty => break,
            }
        }
    }

    fn ensure_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.tick_armed && self.ltl.in_flight() > 0 {
            self.tick_armed = true;
            ctx.timer_after(TICK, TIMER_TICK);
        }
    }
}

impl Component<Msg> for LtlNode {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Net(NetEvent::Packet { pkt, .. }) => {
                if let Ok(frame) = LtlFrame::decode(&pkt.payload) {
                    match frame.kind {
                        FrameKind::Data => self.log.push(NodeEvent::DataRx {
                            seq: frame.seq,
                            last_frag: frame.last_frag,
                        }),
                        FrameKind::Ack => self.log.push(NodeEvent::AckRx { seq: frame.seq }),
                        FrameKind::Nack => self.log.push(NodeEvent::NackRx),
                        FrameKind::Sack => {
                            if let Some(bits) = frame.sack_bits() {
                                self.log.push(NodeEvent::SackRx {
                                    seq: frame.seq,
                                    bits,
                                });
                            }
                        }
                        _ => {}
                    }
                }
                let events = self.ltl.on_packet(&pkt, ctx.now());
                self.log_ltl_events(events);
            }
            Msg::Net(_) | Msg::Egress { .. } | Msg::LtlRx(_) => {}
            Msg::Custom(any) => {
                if let Ok(cmd) = any.downcast::<SendCmd>() {
                    let first_seq = self
                        .ltl
                        .send_conn_view(0)
                        .map(|v| v.next_seq)
                        .unwrap_or_default();
                    let frames = cmd.len.div_ceil(self.mtu) as u32;
                    let mut payload = vec![0u8; cmd.len];
                    let head = cmd.counter.to_be_bytes();
                    let n = cmd.len.min(8);
                    payload[..n].copy_from_slice(&head[..n]);
                    if self.ltl.send_message(0, 0, Bytes::from(payload)).is_ok() {
                        self.log.push(NodeEvent::Submitted {
                            first_seq,
                            frames,
                            counter: cmd.counter,
                        });
                    }
                }
            }
        }
        self.pump(ctx);
        self.ensure_tick(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Msg>) {
        match token {
            TIMER_TICK => {
                self.tick_armed = false;
                let events = self.ltl.on_tick(ctx.now());
                self.log_ltl_events(events);
            }
            TIMER_POLL => self.poll_armed = false,
            _ => {}
        }
        self.pump(ctx);
        self.ensure_tick(ctx);
    }
}

/// A frame the channel dropped, charged to a protocol direction.
#[derive(Debug, Clone, Copy)]
struct DropEntry {
    toward_b: bool,
    kind: FrameKind,
}

/// A "corrupt the next N frames toward `node`" rule, armed at `from`.
struct CorruptRule {
    from: SimTime,
    node: NodeAddr,
    remaining: u32,
}

/// The scripted lossy channel between the two nodes: fixed forward
/// latency plus drop windows, corruption bursts and i.i.d. loss windows
/// derived from a [`FaultPlan`].
struct Channel {
    node_a: ComponentId,
    node_b: ComponentId,
    b_addr: NodeAddr,
    /// `(start, end, endpoint)`: frames with this endpoint as source or
    /// destination are lost inside the window.
    windows: Vec<(SimTime, SimTime, NodeAddr)>,
    corrupt: Vec<CorruptRule>,
    /// `(start, end, endpoint, rate_ppm)`: frames *sent by* this endpoint
    /// drop i.i.d. at `rate_ppm` inside the window (a lossy egress).
    lossy: Vec<(SimTime, SimTime, NodeAddr, u32)>,
    /// Seeded stream driving the i.i.d. lossy-window draws; per-frame
    /// draws are deterministic because event order is.
    rng: SimRng,
    log: Vec<DropEntry>,
}

impl Channel {
    fn from_plan(
        plan: &FaultPlan,
        seed: u64,
        a_addr: NodeAddr,
        b_addr: NodeAddr,
        node_a: ComponentId,
        node_b: ComponentId,
    ) -> Channel {
        let mut windows = Vec::new();
        let mut corrupt = Vec::new();
        let mut lossy = Vec::new();
        let rack_addr = |pod: u16, tor: u16| {
            if a_addr.pod == pod && a_addr.tor == tor {
                Some(a_addr)
            } else if b_addr.pod == pod && b_addr.tor == tor {
                Some(b_addr)
            } else {
                None
            }
        };
        for FaultEvent { at, kind } in &plan.events {
            match *kind {
                FaultKind::LinkFlap { node, down } => windows.push((*at, *at + down, node)),
                FaultKind::TorCrash { pod, tor, reboot } => {
                    if let Some(node) = rack_addr(pod, tor) {
                        windows.push((*at, *at + reboot, node));
                    }
                }
                FaultKind::CorruptBurst { node, frames } => corrupt.push(CorruptRule {
                    from: *at,
                    node,
                    remaining: frames,
                }),
                FaultKind::FpgaHang { node, duration } => windows.push((*at, *at + duration, node)),
                FaultKind::BadImage { node } => windows.push((*at, *at + BAD_IMAGE_DOWN, node)),
                FaultKind::LossyLink {
                    node,
                    rate_ppm,
                    duration,
                } => lossy.push((*at, *at + duration, node, rate_ppm)),
                FaultKind::HostStall { .. } => {}
            }
        }
        Channel {
            node_a,
            node_b,
            b_addr,
            windows,
            corrupt,
            lossy,
            rng: SimRng::seed_from(seed ^ 0x10_55_1E57),
            log: Vec::new(),
        }
    }
}

impl Component<Msg> for Channel {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Msg::Net(NetEvent::Packet { pkt, .. }) = msg else {
            return;
        };
        let now = ctx.now();
        let kind = match LtlFrame::decode(&pkt.payload) {
            Ok(frame) => frame.kind,
            Err(_) => return,
        };
        let in_window = self
            .windows
            .iter()
            .any(|&(start, end, ep)| now >= start && now < end && (ep == pkt.src || ep == pkt.dst));
        let corrupted = !in_window
            && self.corrupt.iter_mut().any(|rule| {
                if now >= rule.from && rule.node == pkt.dst && rule.remaining > 0 {
                    rule.remaining -= 1;
                    true
                } else {
                    false
                }
            });
        let mut lossy_drop = false;
        if !in_window && !corrupted {
            for &(start, end, ep, rate_ppm) in &self.lossy {
                if now >= start && now < end && ep == pkt.src {
                    lossy_drop = self.rng.chance(rate_ppm as f64 / 1e6);
                    break;
                }
            }
        }
        if in_window || corrupted || lossy_drop {
            self.log.push(DropEntry {
                toward_b: pkt.dst == self.b_addr,
                kind,
            });
            return;
        }
        let dest = if pkt.dst == self.b_addr {
            self.node_b
        } else {
            self.node_a
        };
        ctx.send_after(CHANNEL_DELAY, dest, Msg::packet(pkt, PortId(0)));
    }
}

/// A per-direction reference model dispatching on the session's
/// transport mode. Mode mismatches are themselves violations: a
/// selective-repeat endpoint must never emit a plain cumulative ACK and
/// a go-back-N endpoint must never emit a SACK.
enum RefModel {
    Gbn(GbnRefModel),
    Sr(SrRefModel),
}

impl RefModel {
    fn new(mode: LtlMode, window: u32) -> RefModel {
        match mode {
            LtlMode::GoBackN => RefModel::Gbn(GbnRefModel::new()),
            LtlMode::SelectiveRepeat => RefModel::Sr(SrRefModel::new(window)),
        }
    }

    fn delivered(&self) -> u64 {
        match self {
            RefModel::Gbn(m) => m.delivered(),
            RefModel::Sr(m) => m.delivered(),
        }
    }

    fn on_drop(&mut self) {
        match self {
            RefModel::Gbn(m) => m.on_drop(),
            RefModel::Sr(m) => m.on_drop(),
        }
    }

    fn on_submit(&mut self, first_seq: u32, frames: u32, counter: u64) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_submit(first_seq, frames, counter),
            RefModel::Sr(m) => m.on_submit(first_seq, frames, counter),
        }
    }

    fn on_data_tx(&mut self, seq: u32) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_data_tx(seq),
            RefModel::Sr(m) => m.on_data_tx(seq),
        }
    }

    fn on_data_rx(&mut self, seq: u32, last_frag: bool) -> Result<Vec<u64>, String> {
        match self {
            RefModel::Gbn(m) => m
                .on_data_rx(seq, last_frag)
                .map(|c| c.into_iter().collect()),
            RefModel::Sr(m) => m.on_data_rx(seq, last_frag),
        }
    }

    fn on_ack_tx(&mut self, seq: u32) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_ack_tx(seq),
            RefModel::Sr(_) => Err(format!(
                "plain ack (seq {seq}) from a selective-repeat receiver"
            )),
        }
    }

    fn on_ack_rx(&mut self, seq: u32) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_ack_rx(seq),
            RefModel::Sr(_) => Err(format!(
                "plain ack (seq {seq}) accepted by a selective-repeat sender"
            )),
        }
    }

    fn on_sack_tx(&mut self, cum: u32, bits: u64) -> Result<(), String> {
        match self {
            RefModel::Gbn(_) => Err(format!("sack (cum {cum}) from a go-back-n receiver")),
            RefModel::Sr(m) => m.on_sack_tx(cum, bits),
        }
    }

    fn on_sack_rx(&mut self, cum: u32, bits: u64) -> Result<(), String> {
        match self {
            RefModel::Gbn(_) => Err(format!("sack (cum {cum}) accepted by a go-back-n sender")),
            RefModel::Sr(m) => m.on_sack_rx(cum, bits),
        }
    }

    fn on_nack_tx(&mut self, seq: u32) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_nack_tx(seq),
            RefModel::Sr(m) => m.on_nack_tx(seq),
        }
    }

    fn on_conn_failed(&mut self) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_conn_failed(),
            RefModel::Sr(m) => m.on_conn_failed(),
        }
    }

    fn on_deliver(&mut self, counter: u64, expected_counter: u64) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.on_deliver(counter, expected_counter),
            RefModel::Sr(m) => m.on_deliver(counter, expected_counter),
        }
    }

    /// Go-back-N pins the contiguous window bounds; selective repeat pins
    /// the exact (possibly holed) in-flight sequence list.
    fn check_sender(&self, view: &SendConnView, unacked: &[u32]) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.check_sender(view),
            RefModel::Sr(m) => m.check_sender(view, unacked),
        }
    }

    fn check_receiver(&self, view: &RecvConnView, buffered: &[u32]) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.check_receiver(view),
            RefModel::Sr(m) => m.check_receiver(view, buffered),
        }
    }

    fn check_complete(&self) -> Result<(), String> {
        match self {
            RefModel::Gbn(m) => m.check_complete(),
            RefModel::Sr(m) => m.check_complete(),
        }
    }
}

/// The differential oracle: drains component traces after every event,
/// steps the per-direction reference models, and compares engine views.
struct SessionOracle {
    node_a: ComponentId,
    node_b: ComponentId,
    chan: ComponentId,
    a_to_b: RefModel,
    b_to_a: RefModel,
    cur_a: usize,
    cur_b: usize,
    cur_chan: usize,
    /// Counters of messages the model completed but the node has not yet
    /// logged as delivered (delivery is logged in the same event).
    due_a: VecDeque<u64>,
    due_b: VecDeque<u64>,
    violations: Vec<Violation>,
    checks: u64,
}

impl SessionOracle {
    fn record(&mut self, at: SimTime, check: &'static str, result: Result<(), String>) {
        self.checks += 1;
        if let Err(detail) = result {
            // A single divergence re-fires on every later check; the
            // first few entries carry all the signal.
            if self.violations.len() < 32 {
                self.violations.push(Violation { at, check, detail });
            }
        }
    }

    /// Applies one node-local trace entry to the direction models.
    /// `a_side` says which endpoint logged it.
    fn apply(&mut self, at: SimTime, a_side: bool, ev: NodeEvent) {
        // `out_model` is the direction this node sends data on;
        // `in_model` the one it receives data on.
        macro_rules! out_model {
            () => {
                if a_side {
                    &mut self.a_to_b
                } else {
                    &mut self.b_to_a
                }
            };
        }
        macro_rules! in_model {
            () => {
                if a_side {
                    &mut self.b_to_a
                } else {
                    &mut self.a_to_b
                }
            };
        }
        match ev {
            NodeEvent::Submitted {
                first_seq,
                frames,
                counter,
            } => {
                let r = out_model!().on_submit(first_seq, frames, counter);
                self.record(at, "ltl.submit", r);
            }
            NodeEvent::DataTx { seq } => {
                let r = out_model!().on_data_tx(seq);
                self.record(at, "ltl.data_tx", r);
            }
            NodeEvent::AckRx { seq } => {
                let r = out_model!().on_ack_rx(seq);
                self.record(at, "ltl.ack_rx", r);
            }
            NodeEvent::SackRx { seq, bits } => {
                let r = out_model!().on_sack_rx(seq, bits);
                self.record(at, "ltl.sack_rx", r);
            }
            NodeEvent::NackRx => {}
            NodeEvent::ConnFailed => {
                let r = out_model!().on_conn_failed();
                self.record(at, "ltl.conn_failed", r);
            }
            NodeEvent::DataRx { seq, last_frag } => match in_model!().on_data_rx(seq, last_frag) {
                Ok(completed) => {
                    for counter in completed {
                        if a_side {
                            self.due_a.push_back(counter);
                        } else {
                            self.due_b.push_back(counter);
                        }
                    }
                }
                Err(detail) => self.record(at, "ltl.data_rx", Err(detail)),
            },
            NodeEvent::AckTx { seq } => {
                let r = in_model!().on_ack_tx(seq);
                self.record(at, "ltl.ack_tx", r);
            }
            NodeEvent::SackTx { seq, bits } => {
                let r = in_model!().on_sack_tx(seq, bits);
                self.record(at, "ltl.sack_tx", r);
            }
            NodeEvent::NackTx { seq } => {
                let r = in_model!().on_nack_tx(seq);
                self.record(at, "ltl.nack_tx", r);
            }
            NodeEvent::Delivered { counter } => {
                let due = if a_side {
                    self.due_a.pop_front()
                } else {
                    self.due_b.pop_front()
                };
                let r = match due {
                    Some(expect) => in_model!().on_deliver(counter, expect),
                    None => Err(format!(
                        "message with counter {counter} delivered but model completed none"
                    )),
                };
                self.record(at, "ltl.deliver", r);
            }
        }
    }

    fn compare_views(&mut self, at: SimTime, engine: &Engine<Msg>) {
        let Some(a) = engine.component::<LtlNode>(self.node_a) else {
            return;
        };
        let Some(b) = engine.component::<LtlNode>(self.node_b) else {
            return;
        };
        let checks = [
            (
                a.ltl.send_conn_view(0),
                a.ltl.send_unacked_seqs(0),
                b.ltl.recv_conn_view(0),
                b.ltl.recv_buffered_seqs(0),
                true,
            ),
            (
                b.ltl.send_conn_view(0),
                b.ltl.send_unacked_seqs(0),
                a.ltl.recv_conn_view(0),
                a.ltl.recv_buffered_seqs(0),
                false,
            ),
        ];
        for (send_view, unacked, recv_view, buffered, a_to_b) in checks {
            let (rs, rr) = {
                let model = if a_to_b { &self.a_to_b } else { &self.b_to_a };
                (
                    send_view.map(|v| model.check_sender(&v, unacked.as_deref().unwrap_or(&[]))),
                    recv_view.map(|v| model.check_receiver(&v, buffered.as_deref().unwrap_or(&[]))),
                )
            };
            if let Some(r) = rs {
                self.record(at, "ltl.sender_state", r);
            }
            if let Some(r) = rr {
                self.record(at, "ltl.receiver_state", r);
            }
        }
    }
}

impl Observer<Msg> for SessionOracle {
    fn after_event(&mut self, event: &EventRecord, engine: &Engine<Msg>) {
        // Drain whatever new trace entries this event produced. Only the
        // dispatched component's log can have grown.
        for (id, a_side) in [(self.node_a, true), (self.node_b, false)] {
            let cursor = if a_side { self.cur_a } else { self.cur_b };
            let Some(node) = engine.component::<LtlNode>(id) else {
                continue;
            };
            let fresh: Vec<NodeEvent> = node.log[cursor..].to_vec();
            if a_side {
                self.cur_a = node.log.len();
            } else {
                self.cur_b = node.log.len();
            }
            for ev in fresh {
                self.apply(event.at, a_side, ev);
            }
        }
        if let Some(chan) = engine.component::<Channel>(self.chan) {
            let fresh: Vec<DropEntry> = chan.log[self.cur_chan..].to_vec();
            self.cur_chan = chan.log.len();
            for drop in fresh {
                // A lost data frame stalls its own direction; a lost
                // ack/nack stalls the direction it acknowledges.
                let data_toward_b = matches!(drop.kind, FrameKind::Data) == drop.toward_b;
                if data_toward_b {
                    self.a_to_b.on_drop();
                } else {
                    self.b_to_a.on_drop();
                }
            }
        }
        self.compare_views(event.at, engine);
    }
}

/// Everything parameterising one differential session run.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Engine seed (schedules, jitter).
    pub seed: u64,
    /// Tie-break salt for same-timestamp event ordering (0 = FIFO).
    pub salt: u64,
    /// Messages submitted in each direction.
    pub msgs_each_way: u32,
    /// Maximum message size in MTU-sized frames.
    pub max_msg_frames: u32,
    /// Nominal run length; sends and faults land inside it.
    pub horizon: SimDuration,
    /// Enable NACK fast retransmit.
    pub nack: bool,
    /// Transport mode both endpoints run (and the oracle models).
    pub mode: LtlMode,
    /// Bug injection: silently lose this many retransmissions inside the
    /// real engine (0 = healthy).
    pub lose_retransmits: u32,
    /// Bug injection (selective repeat): drop the highest bit from this
    /// many non-empty SACK bitmaps at endpoint A (0 = healthy). The
    /// protocol self-heals around it, so only the exact-bitmap oracle
    /// can catch it.
    pub omit_sacks: u32,
    /// The fault schedule shaping the channel.
    pub plan: FaultPlan,
}

impl SessionSpec {
    /// Addresses of the two session endpoints (also the fault-plan
    /// targets): racks 0 and 1 of pod 0.
    pub fn endpoints() -> (NodeAddr, NodeAddr) {
        (NodeAddr::new(0, 0, 0), NodeAddr::new(0, 1, 0))
    }

    /// The fault-plan targets for a session.
    pub fn targets() -> ChaosTargets {
        let (a, b) = Self::endpoints();
        ChaosTargets {
            accelerators: vec![a, b],
            clients: Vec::new(),
            racks: vec![(0, 0), (0, 1)],
        }
    }

    /// The fault mix used for session fuzzing: the standard chaos mix
    /// with outage lengths compressed to the session timescale.
    pub fn fault_config(horizon: SimDuration) -> FaultConfig {
        FaultConfig {
            flap_down: SimDuration::from_micros(300),
            tor_reboot: SimDuration::from_micros(900),
            hang_duration: SimDuration::from_micros(250),
            burst_frames: 3,
            ..FaultConfig::with_rate(horizon, 1.5)
        }
    }

    /// Generates the spec for one fuzzing seed. Odd seeds run with a
    /// salted tie-break order, exercising the schedule-perturbation
    /// half of the determinism contract.
    pub fn generate(seed: u64) -> SessionSpec {
        let horizon = SimDuration::from_millis(4);
        let plan = FaultPlan::generate(seed, &Self::targets(), &Self::fault_config(horizon));
        SessionSpec {
            seed,
            salt: if seed % 2 == 1 {
                seed ^ 0x9E37_79B9_7F4A_7C15
            } else {
                0
            },
            msgs_each_way: 12,
            max_msg_frames: 4,
            horizon,
            nack: seed % 4 < 2,
            mode: LtlMode::GoBackN,
            lose_retransmits: 0,
            omit_sacks: 0,
            plan,
        }
    }

    /// The same spec with a different transport mode (the A/B sweep runs
    /// every seed in both modes).
    pub fn with_mode(mut self, mode: LtlMode) -> SessionSpec {
        self.mode = mode;
        self
    }
}

/// Result of one differential session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Oracle violations, in event order.
    pub violations: Vec<Violation>,
    /// Events the engine dispatched.
    pub events: u64,
    /// Messages delivered across both directions.
    pub delivered: u64,
    /// Oracle checks evaluated.
    pub checks: u64,
}

/// Runs one differential session to quiescence.
pub fn run_session(spec: &SessionSpec) -> SessionOutcome {
    let (a_addr, b_addr) = SessionSpec::endpoints();
    let mut engine: Engine<Msg> = Engine::new(spec.seed);
    engine.set_tie_break_salt(spec.salt);

    let base = spec.horizon; // plan horizon; sends land in its first 55%
    let cfg = LtlConfig::default()
        .without_dcqcn()
        .with_nack_enabled(spec.nack)
        .with_mode(spec.mode);
    let mtu = cfg.mtu_payload;
    let recv_window = cfg.recv_window;

    let mut ltl_a = LtlEngine::new(a_addr, cfg.clone());
    let mut ltl_b = LtlEngine::new(b_addr, cfg);
    let a_recv = ltl_a.add_recv(b_addr);
    let b_recv = ltl_b.add_recv(a_addr);
    ltl_a.add_send(b_addr, b_recv);
    ltl_b.add_send(a_addr, a_recv);
    if spec.lose_retransmits > 0 {
        ltl_a.debug_lose_retransmits(spec.lose_retransmits);
    }
    if spec.omit_sacks > 0 {
        ltl_a.debug_omit_sacks(spec.omit_sacks);
    }

    let chan_id = engine.next_component_id();
    let node_a_id = ComponentId::from_raw(1);
    let node_b_id = ComponentId::from_raw(2);
    let chan = Channel::from_plan(&spec.plan, spec.seed, a_addr, b_addr, node_a_id, node_b_id);
    assert_eq!(engine.add_component(chan), chan_id);
    assert_eq!(
        engine.add_component(LtlNode::new(ltl_a, mtu, chan_id)),
        node_a_id
    );
    assert_eq!(
        engine.add_component(LtlNode::new(ltl_b, mtu, chan_id)),
        node_b_id
    );

    // Schedule submissions from a dedicated stream (independent of the
    // engine's own RNG so observers or jitter never shift the workload).
    let mut rng = SimRng::seed_from(spec.seed ^ 0x5E55_1017);
    let window = base.as_nanos() as f64 * 0.55;
    for (node, n) in [
        (node_a_id, spec.msgs_each_way),
        (node_b_id, spec.msgs_each_way),
    ] {
        for counter in 0..n {
            let at = SimTime::from_nanos((rng.uniform() * window) as u64);
            let frames = 1 + rng.index(spec.max_msg_frames as usize);
            let len = (frames - 1) * mtu + 1 + rng.index(mtu);
            engine.schedule(
                at,
                node,
                Msg::custom(SendCmd {
                    counter: counter as u64,
                    len,
                }),
            );
        }
    }

    engine.set_observer(Box::new(SessionOracle {
        node_a: node_a_id,
        node_b: node_b_id,
        chan: chan_id,
        a_to_b: RefModel::new(spec.mode, recv_window),
        b_to_a: RefModel::new(spec.mode, recv_window),
        cur_a: 0,
        cur_b: 0,
        cur_chan: 0,
        due_a: VecDeque::new(),
        due_b: VecDeque::new(),
        violations: Vec::new(),
        checks: 0,
    }));

    let events = engine.run_to_idle();
    let end = engine.now();

    let oracle = engine
        .observer_as::<SessionOracle>()
        .expect("oracle attached above");
    let mut violations = oracle.violations.clone();
    let mut checks = oracle.checks;
    for (model, name) in [(&oracle.a_to_b, "a_to_b"), (&oracle.b_to_a, "b_to_a")] {
        checks += 1;
        if let Err(detail) = model.check_complete() {
            violations.push(Violation {
                at: end,
                check: "ltl.complete",
                detail: format!("{name}: {detail}"),
            });
        }
    }
    let delivered = oracle.a_to_b.delivered() + oracle.b_to_a.delivered();
    SessionOutcome {
        violations,
        events,
        delivered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_session_has_no_violations() {
        let mut spec = SessionSpec::generate(2); // even seed: FIFO order
        spec.plan = FaultPlan::default();
        let out = run_session(&spec);
        assert_eq!(out.violations, Vec::new());
        assert_eq!(out.delivered, 2 * spec.msgs_each_way as u64);
        assert!(out.checks > 0);
    }

    #[test]
    fn faulty_channel_still_satisfies_the_oracle() {
        for seed in 0..8 {
            let spec = SessionSpec::generate(seed);
            let out = run_session(&spec);
            assert_eq!(out.violations, Vec::new(), "seed {seed}");
        }
    }

    #[test]
    fn session_is_deterministic_per_seed() {
        let spec = SessionSpec::generate(5);
        let a = run_session(&spec);
        let b = run_session(&spec);
        assert_eq!(a.events, b.events);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn clean_selective_repeat_session_has_no_violations() {
        let mut spec = SessionSpec::generate(2).with_mode(LtlMode::SelectiveRepeat);
        spec.plan = FaultPlan::default();
        let out = run_session(&spec);
        assert_eq!(out.violations, Vec::new());
        assert_eq!(out.delivered, 2 * spec.msgs_each_way as u64);
        assert!(out.checks > 0);
    }

    #[test]
    fn faulty_channel_still_satisfies_the_selective_repeat_oracle() {
        for seed in 0..8 {
            let spec = SessionSpec::generate(seed).with_mode(LtlMode::SelectiveRepeat);
            let out = run_session(&spec);
            assert_eq!(out.violations, Vec::new(), "seed {seed}");
        }
    }

    #[test]
    fn selective_repeat_session_is_deterministic_per_seed() {
        let spec = SessionSpec::generate(5).with_mode(LtlMode::SelectiveRepeat);
        let a = run_session(&spec);
        let b = run_session(&spec);
        assert_eq!(a.events, b.events);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn injected_sack_omission_is_caught() {
        // Dropping a bit from the SACK bitmap never loses data — the
        // sender simply retransmits the frame — so a delivery-only oracle
        // is blind to it. The exact-bitmap check must catch it on any
        // seed whose channel actually reorders or drops data (the bitmap
        // is only non-empty when the reassembly buffer is).
        let mut caught = false;
        for seed in 0..32 {
            let mut spec = SessionSpec::generate(seed).with_mode(LtlMode::SelectiveRepeat);
            spec.omit_sacks = 4;
            if !run_session(&spec).violations.is_empty() {
                caught = true;
                break;
            }
        }
        assert!(caught, "sack-omission bug evaded the oracle on 32 seeds");
    }

    #[test]
    fn injected_retransmit_loss_is_caught() {
        // Losing a retransmission inside the engine desynchronises the
        // real window base from the model's cumulative-ack floor the
        // moment the entry disappears. It needs a seed whose plan
        // actually forces a timeout; sweep a few.
        let mut caught = false;
        for seed in 0..32 {
            let mut spec = SessionSpec::generate(seed);
            spec.lose_retransmits = 1;
            if !run_session(&spec).violations.is_empty() {
                caught = true;
                break;
            }
        }
        assert!(caught, "bug injection evaded the oracle on 32 seeds");
    }
}
