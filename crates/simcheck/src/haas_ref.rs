//! Pure reference implementation of the elastic HaaS scheduler.
//!
//! [`RefScheduler`] re-implements the placement contract documented on
//! [`haas::ElasticScheduler`] — best-fit placement, bounded-latency
//! preemption, best-fit-decreasing defragmentation, spot reclamation —
//! from the specification alone, with none of the production structure:
//! state is one flat slot list with leases embedded in their slots, every
//! query is a fresh scan, and there is no incremental bookkeeping to get
//! wrong. The differential harness in [`crate::elastic`] steps it in
//! lockstep with the real scheduler and compares [`Decision`] streams,
//! placement snapshots and lease tables after every trace event.

use dcnet::NodeAddr;
use dcsim::SimTime;
use haas::{
    fingerprint_decision, Decision, ElasticConfig, LeaseEvent, LeaseEventKind, PlacementRow,
    RegionLease, RegionRef, TenantClass,
};
use shell::tenant::{TenantCaps, TenantId};

/// A lease as the reference tracks it: stored inside its slot.
#[derive(Debug, Clone)]
struct RefLease {
    id: u64,
    req: u64,
    tenant: TenantId,
    class: TenantClass,
    alms: u32,
    preemptible: bool,
    caps: TenantCaps,
}

/// One placement slot (a PR region on a board), flat across all boards.
#[derive(Debug, Clone)]
struct RefSlot {
    board: NodeAddr,
    region: u8,
    alms: u32,
    occupant: Option<RefLease>,
    /// In-flight eviction: when the slot frees, and the request (if any)
    /// it is reserved for.
    pending: Option<(SimTime, Option<u64>)>,
}

#[derive(Debug, Clone)]
struct RefWaiting {
    req: u64,
    tenant: TenantId,
    class: TenantClass,
    alms: u32,
    preemptible: bool,
    caps: TenantCaps,
    arrived: SimTime,
}

/// Lifecycle of a request sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefReq {
    Queued,
    Active(u64),
    Done,
}

/// The executable reference model of the elastic scheduler contract.
#[derive(Debug, Clone)]
pub struct RefScheduler {
    cfg: ElasticConfig,
    /// Registration order, with the up/down flag.
    boards: Vec<(NodeAddr, bool)>,
    /// All slots, in board-registration then region order.
    slots: Vec<RefSlot>,
    queue: Vec<RefWaiting>,
    reqs: Vec<(u64, RefReq)>,
    next_lease: u64,
    defrag_done: u64,
    decisions: Vec<Decision>,
    fingerprint: u64,
}

impl RefScheduler {
    /// Creates an empty reference scheduler.
    pub fn new(cfg: ElasticConfig) -> RefScheduler {
        RefScheduler {
            cfg,
            boards: Vec::new(),
            slots: Vec::new(),
            queue: Vec::new(),
            reqs: Vec::new(),
            next_lease: 0,
            defrag_done: 0,
            decisions: Vec::new(),
            fingerprint: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Registers a board (must mirror the real scheduler's registration
    /// order; duplicates are a harness bug and simply ignored).
    pub fn add_board(&mut self, addr: NodeAddr, region_alms: &[u32]) {
        if self.boards.iter().any(|(a, _)| *a == addr) {
            return;
        }
        self.boards.push((addr, true));
        for (i, &alms) in region_alms.iter().enumerate() {
            self.slots.push(RefSlot {
                board: addr,
                region: i as u8,
                alms,
                occupant: None,
                pending: None,
            });
        }
    }

    /// The decision log so far.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Whether a board is currently up (false for unknown boards).
    pub fn board_is_up(&self, addr: NodeAddr) -> bool {
        self.board_up_flag(addr)
    }

    /// FNV-1a fingerprint of the decision log (same fold as the real
    /// scheduler's).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Placement snapshot in the real scheduler's canonical shape.
    pub fn placement(&self) -> Vec<PlacementRow> {
        self.slots
            .iter()
            .map(|s| {
                (
                    RegionRef {
                        board: s.board,
                        region: s.region,
                    },
                    s.occupant.as_ref().map(|l| l.id),
                    s.pending.map(|(t, r)| (t.as_nanos(), r)),
                )
            })
            .collect()
    }

    /// Live leases as [`RegionLease`] values, ascending id.
    pub fn leases(&self) -> Vec<RegionLease> {
        let mut out: Vec<RegionLease> = self
            .slots
            .iter()
            .filter_map(|s| {
                let l = s.occupant.as_ref()?;
                Some(RegionLease {
                    id: l.id,
                    req: l.req,
                    tenant: l.tenant,
                    class: l.class,
                    alms: l.alms,
                    preemptible: l.preemptible,
                    caps: l.caps,
                    at: RegionRef {
                        board: s.board,
                        region: s.region,
                    },
                })
            })
            .collect();
        out.sort_by_key(|l| l.id);
        out
    }

    /// Applies one trace event, returning the decisions it produced.
    pub fn apply(&mut self, ev: &LeaseEvent) -> Vec<Decision> {
        let start = self.decisions.len();
        self.advance_to(ev.at);
        match &ev.kind {
            LeaseEventKind::Request {
                req,
                tenant,
                class,
                alms,
                preemptible,
                caps,
            } => self.request(ev.at, *req, *tenant, *class, *alms, *preemptible, *caps),
            LeaseEventKind::Release { req } => self.release(ev.at, *req),
            LeaseEventKind::BoardDown { board } => self.board_down(ev.at, *board),
            LeaseEventKind::BoardUp { board } => self.board_up(ev.at, *board),
        }
        self.decisions[start..].to_vec()
    }

    /// Runs time forward, completing due evictions and defrag boundaries
    /// in order; evictions at time T complete before a defrag at T.
    pub fn advance_to(&mut self, now: SimTime) {
        loop {
            let next_evict = self
                .slots
                .iter()
                .filter_map(|s| s.pending.map(|(t, _)| t))
                .min();
            let next_defrag = (self.cfg.defrag_period.as_nanos() > 0).then(|| {
                SimTime::from_nanos((self.defrag_done + 1) * self.cfg.defrag_period.as_nanos())
            });
            let step = match (next_evict, next_defrag) {
                (Some(e), Some(d)) if e <= d => (e, true),
                (Some(e), None) => (e, true),
                (_, Some(d)) => (d, false),
                (None, None) => return,
            };
            if step.0 > now {
                return;
            }
            if step.1 {
                self.complete_evictions(step.0);
            } else {
                self.defrag_done = step.0.as_nanos() / self.cfg.defrag_period.as_nanos();
                self.defrag(step.0);
            }
        }
    }

    fn push(&mut self, d: Decision) {
        self.fingerprint = fingerprint_decision(self.fingerprint, &d);
        self.decisions.push(d);
    }

    fn req_state(&self, req: u64) -> Option<RefReq> {
        self.reqs
            .iter()
            .rev()
            .find(|(r, _)| *r == req)
            .map(|(_, s)| *s)
    }

    fn set_req(&mut self, req: u64, state: RefReq) {
        if let Some(slot) = self.reqs.iter_mut().find(|(r, _)| *r == req) {
            slot.1 = state;
        } else {
            self.reqs.push((req, state));
        }
    }

    fn board_up_flag(&self, addr: NodeAddr) -> bool {
        self.boards.iter().any(|(a, up)| *a == addr && *up)
    }

    /// Index of the smallest free, unreserved slot on an up board that
    /// fits `alms`; ties go to the earliest slot in registration order.
    fn best_fit_free(&self, alms: u32) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.occupant.is_none()
                && s.pending.is_none()
                && s.alms >= alms
                && self.board_up_flag(s.board)
                && best.is_none_or(|(sz, _)| s.alms < sz)
            {
                best = Some((s.alms, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn grant(&mut self, now: SimTime, w: &RefWaiting, slot_idx: usize) {
        let id = self.next_lease;
        self.next_lease += 1;
        let at = RegionRef {
            board: self.slots[slot_idx].board,
            region: self.slots[slot_idx].region,
        };
        self.slots[slot_idx].occupant = Some(RefLease {
            id,
            req: w.req,
            tenant: w.tenant,
            class: w.class,
            alms: w.alms,
            preemptible: w.preemptible,
            caps: w.caps,
        });
        self.set_req(w.req, RefReq::Active(id));
        self.push(Decision::Grant {
            req: w.req,
            lease: id,
            at,
            waited_ns: now.as_nanos().saturating_sub(w.arrived.as_nanos()),
        });
    }

    /// Grants every queued request that now fits, strongest class first
    /// then arrival order, skipping requests that still do not fit.
    fn grant_queued(&mut self, now: SimTime) {
        loop {
            let mut order: Vec<usize> = (0..self.queue.len()).collect();
            order.sort_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].req));
            let pick = order
                .into_iter()
                .find_map(|i| self.best_fit_free(self.queue[i].alms).map(|s| (i, s)));
            let Some((i, slot_idx)) = pick else { return };
            let w = self.queue.remove(i);
            self.grant(now, &w, slot_idx);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn request(
        &mut self,
        now: SimTime,
        req: u64,
        tenant: TenantId,
        class: TenantClass,
        alms: u32,
        preemptible: bool,
        caps: TenantCaps,
    ) {
        let largest = self
            .slots
            .iter()
            .filter(|s| self.board_up_flag(s.board))
            .map(|s| s.alms)
            .max()
            .unwrap_or(0);
        if alms > largest {
            self.set_req(req, RefReq::Done);
            self.push(Decision::Reject { req });
            return;
        }
        let preemptible = match class {
            TenantClass::Guaranteed => false,
            TenantClass::Standard => preemptible,
            TenantClass::Spot => true,
        };
        let w = RefWaiting {
            req,
            tenant,
            class,
            alms,
            preemptible,
            caps,
            arrived: now,
        };
        if let Some(slot_idx) = self.best_fit_free(alms) {
            self.grant(now, &w, slot_idx);
        } else {
            self.set_req(req, RefReq::Queued);
            self.queue.push(w.clone());
            self.push(Decision::Queue { req });
            self.try_preempt_for(now, &w);
        }
        self.reclaim_if_drained(now);
    }

    /// Evicts the weakest-class preemptible lease of a strictly lower
    /// class in the smallest sufficient region, reserving it for `w`.
    fn try_preempt_for(&mut self, now: SimTime, w: &RefWaiting) {
        let mut best: Option<((core::cmp::Reverse<u8>, u32, u64), usize)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            let Some(l) = &s.occupant else { continue };
            if !l.preemptible
                || l.class.rank() <= w.class.rank()
                || s.pending.is_some()
                || s.alms < w.alms
                || !self.board_up_flag(s.board)
            {
                continue;
            }
            let key = (core::cmp::Reverse(l.class.rank()), s.alms, l.id);
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, i));
            }
        }
        let Some((_, idx)) = best else { return };
        let victim = self.slots[idx].occupant.as_ref().map(|l| l.id).unwrap_or(0);
        let at = RegionRef {
            board: self.slots[idx].board,
            region: self.slots[idx].region,
        };
        self.slots[idx].pending = Some((now + self.cfg.eviction_window, Some(w.req)));
        self.push(Decision::Evict {
            victim,
            for_req: w.req,
            at,
        });
    }

    /// Completes every eviction due exactly at `t`, in slot order; freed
    /// slots go to their reserved request first, then the general queue.
    fn complete_evictions(&mut self, t: SimTime) {
        let mut freed: Vec<(usize, Option<u64>)> = Vec::new();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some((due, reserved)) = s.pending {
                if due == t {
                    s.pending = None;
                    if let Some(l) = s.occupant.take() {
                        self.reqs
                            .iter_mut()
                            .filter(|(r, _)| *r == l.req)
                            .for_each(|slot| slot.1 = RefReq::Done);
                    }
                    freed.push((i, reserved));
                }
            }
        }
        for (idx, reserved) in &freed {
            if let Some(req) = reserved {
                if let Some(pos) = self.queue.iter().position(|w| w.req == *req) {
                    let w = self.queue.remove(pos);
                    self.grant(t, &w, *idx);
                }
            }
        }
        if !freed.is_empty() {
            self.grant_queued(t);
            self.repreempt_queued(t);
        }
    }

    /// Re-arms preemption for queued requests with no reservation and no
    /// free fit, strongest class first (after crashes and reserved
    /// grants, which can both strand a stronger waiter).
    fn repreempt_queued(&mut self, now: SimTime) {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].req));
        for i in order {
            let w = self.queue[i].clone();
            let reserved = self
                .slots
                .iter()
                .any(|s| matches!(s.pending, Some((_, Some(r))) if r == w.req));
            if reserved || self.best_fit_free(w.alms).is_some() {
                continue;
            }
            self.try_preempt_for(now, &w);
        }
    }

    fn release(&mut self, now: SimTime, req: u64) {
        match self.req_state(req) {
            None | Some(RefReq::Done) => {
                self.push(Decision::Release { req, lease: None });
            }
            Some(RefReq::Queued) => {
                self.queue.retain(|w| w.req != req);
                self.set_req(req, RefReq::Done);
                for s in &mut self.slots {
                    if let Some((t, Some(r))) = s.pending {
                        if r == req {
                            s.pending = Some((t, None));
                        }
                    }
                }
                self.push(Decision::Release { req, lease: None });
            }
            Some(RefReq::Active(id)) => {
                self.set_req(req, RefReq::Done);
                for s in &mut self.slots {
                    if s.occupant.as_ref().is_some_and(|l| l.id == id) {
                        s.occupant = None;
                    }
                }
                self.push(Decision::Release {
                    req,
                    lease: Some(id),
                });
                self.grant_queued(now);
            }
        }
    }

    /// Spot leases eligible for reclamation: largest region first, ties
    /// by lease id.
    fn spot_victims(&self) -> Vec<(u32, u64, usize)> {
        let mut v: Vec<(u32, u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let l = s.occupant.as_ref()?;
                (l.class == TenantClass::Spot && s.pending.is_none() && self.board_up_flag(s.board))
                    .then_some((s.alms, l.id, i))
            })
            .collect();
        v.sort_by_key(|&(alms, id, _)| (core::cmp::Reverse(alms), id));
        v
    }

    /// Keeps `spot_reserve_permille` of the pool free or freeing by
    /// reclaiming spot leases, largest first.
    fn reclaim_if_drained(&mut self, now: SimTime) {
        if self.cfg.spot_reserve_permille == 0 {
            return;
        }
        loop {
            let pool: u64 = self
                .slots
                .iter()
                .filter(|s| self.board_up_flag(s.board))
                .map(|s| s.alms as u64)
                .sum();
            if pool == 0 {
                return;
            }
            let freeing: u64 = self
                .slots
                .iter()
                .filter(|s| self.board_up_flag(s.board))
                .filter(|s| s.occupant.is_none() || s.pending.is_some())
                .map(|s| s.alms as u64)
                .sum();
            if freeing * 1000 >= pool * self.cfg.spot_reserve_permille as u64 {
                return;
            }
            let Some(&(_, victim, idx)) = self.spot_victims().first() else {
                return;
            };
            let at = RegionRef {
                board: self.slots[idx].board,
                region: self.slots[idx].region,
            };
            self.slots[idx].pending = Some((now + self.cfg.eviction_window, None));
            self.push(Decision::Reclaim { victim, at });
        }
    }

    fn board_down(&mut self, now: SimTime, board: NodeAddr) {
        let Some(flag) = self.boards.iter_mut().find(|(a, _)| *a == board) else {
            return;
        };
        flag.1 = false;
        let mut lost = Vec::new();
        for s in self.slots.iter_mut().filter(|s| s.board == board) {
            if let Some(l) = s.occupant.take() {
                lost.push((l.id, l.req));
            }
            s.pending = None;
        }
        lost.sort_unstable();
        for &(_, req) in &lost {
            self.set_req(req, RefReq::Done);
        }
        self.push(Decision::BoardDown {
            board,
            lost: lost.into_iter().map(|(id, _)| id).collect(),
        });
        // Dropped reservations re-arm: queued requests without one and
        // without a free fit retry preemption, strongest first.
        self.repreempt_queued(now);
    }

    fn board_up(&mut self, now: SimTime, board: NodeAddr) {
        let Some(flag) = self.boards.iter_mut().find(|(a, _)| *a == board) else {
            return;
        };
        flag.1 = true;
        self.push(Decision::BoardUp { board });
        self.grant_queued(now);
    }

    /// Best-fit-decreasing repack: every live lease on an up,
    /// non-evicting slot is reassigned the smallest fitting slot;
    /// assignments that change become migrations, applied two-phase in
    /// lease-id order.
    fn defrag(&mut self, now: SimTime) {
        let candidate: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pending.is_none() && self.board_up_flag(s.board))
            .map(|(i, _)| i)
            .collect();
        let mut by_size: Vec<(u32, u64, usize)> = candidate
            .iter()
            .filter_map(|&i| {
                let l = self.slots[i].occupant.as_ref()?;
                Some((l.alms, l.id, i))
            })
            .collect();
        by_size.sort_by_key(|&(alms, id, _)| (core::cmp::Reverse(alms), id));
        let mut taken = vec![false; candidate.len()];
        // (lease id, from slot, to slot), gathered then sorted by id.
        let mut moves: Vec<(u64, usize, usize)> = Vec::new();
        for (alms, id, from) in by_size {
            let mut best: Option<(u32, usize)> = None;
            for (ci, &slot_idx) in candidate.iter().enumerate() {
                let sz = self.slots[slot_idx].alms;
                if !taken[ci] && sz >= alms && best.is_none_or(|(bsz, _)| sz < bsz) {
                    best = Some((sz, ci));
                }
            }
            if let Some((_, ci)) = best {
                taken[ci] = true;
                if candidate[ci] != from {
                    moves.push((id, from, candidate[ci]));
                }
            }
        }
        moves.sort_by_key(|&(id, _, _)| id);
        let mut carried: Vec<(usize, RefLease)> = Vec::new();
        for &(_, from, to) in &moves {
            if let Some(l) = self.slots[from].occupant.take() {
                carried.push((to, l));
            }
        }
        for (to, l) in carried {
            self.slots[to].occupant = Some(l);
        }
        for (id, from, to) in moves {
            self.push(Decision::Migrate {
                lease: id,
                from: RegionRef {
                    board: self.slots[from].board,
                    region: self.slots[from].region,
                },
                to: RegionRef {
                    board: self.slots[to].board,
                    region: self.slots[to].region,
                },
            });
        }
        self.grant_queued(now);
        self.repreempt_queued(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::SimDuration;

    fn caps() -> TenantCaps {
        TenantCaps {
            er_mbps: 500,
            ltl_credits: 8,
        }
    }

    fn ev(at: SimTime, kind: LeaseEventKind) -> LeaseEvent {
        LeaseEvent { at, kind }
    }

    fn request(req: u64, class: TenantClass, alms: u32, preemptible: bool) -> LeaseEventKind {
        LeaseEventKind::Request {
            req,
            tenant: TenantId(req as u32),
            class,
            alms,
            preemptible,
            caps: caps(),
        }
    }

    #[test]
    fn reference_places_best_fit() {
        let mut r = RefScheduler::new(ElasticConfig::default());
        r.add_board(NodeAddr::new(0, 0, 1), &[10_000, 20_000]);
        let d = r.apply(&ev(
            SimTime::ZERO,
            request(0, TenantClass::Standard, 9_000, false),
        ));
        assert!(matches!(
            d[0],
            Decision::Grant {
                at: RegionRef { region: 0, .. },
                ..
            }
        ));
    }

    #[test]
    fn reference_matches_real_on_a_mixed_trace() {
        let cfg = ElasticConfig {
            eviction_window: SimDuration::from_millis(100),
            defrag_period: SimDuration::from_secs(1),
            spot_reserve_permille: 200,
        };
        let mut real = haas::ElasticScheduler::new(cfg);
        let mut reference = RefScheduler::new(cfg);
        for h in 1..=2u16 {
            real.add_board(NodeAddr::new(0, 0, h), &[10_000, 20_000, 30_000])
                .unwrap();
            reference.add_board(NodeAddr::new(0, 0, h), &[10_000, 20_000, 30_000]);
        }
        let classes = TenantClass::ALL;
        for i in 0..60u64 {
            let at = SimTime::from_millis(i * 37);
            let kind = match i % 5 {
                4 => LeaseEventKind::Release { req: i / 2 },
                _ => request(
                    i,
                    classes[(i % 3) as usize],
                    5_000 + ((i as u32 * 2_971) % 26_000),
                    i % 2 == 0,
                ),
            };
            let e = ev(at, kind);
            assert_eq!(real.apply(&e), reference.apply(&e), "event {i}");
        }
        real.advance_to(SimTime::from_secs(5));
        reference.advance_to(SimTime::from_secs(5));
        assert_eq!(real.fingerprint(), reference.fingerprint());
        assert_eq!(real.placement(), reference.placement());
        let real_leases: Vec<RegionLease> = real.leases().cloned().collect();
        assert_eq!(real_leases, reference.leases());
    }
}
