//! Global invariants checked at event granularity over a full cluster.
//!
//! [`InvariantObserver`] attaches to the cluster engine through the
//! [`dcsim::Observer`] hook and, after *every* dispatched event,
//! re-evaluates predicates that must hold in every reachable state:
//!
//! * **Switch queue bounds** — a lossy egress queue never exceeds the
//!   configured capacity (the drop rule admits a frame only while
//!   `queued + wire <= capacity`); lossless queues stay under the
//!   PFC-derived ceiling.
//! * **PFC obedience** — while a switch egress (or the shell's TOR-facing
//!   egress) has a class paused across an event, it transmits nothing on
//!   that class. Pause state only flips inside an observed event, so
//!   `paused before == paused after == true` proves the whole interval
//!   was paused.
//! * **LTL receive monotonicity** — each receive connection's expected
//!   sequence number never moves backward (serial arithmetic).
//! * **HaaS lease legality** — node states only make the legal moves:
//!   Unallocated ⇄ Leased, anything → Failed, Failed → Unallocated
//!   (repair). A Failed node is never handed straight to a service, and
//!   a lease never changes hands without passing through the pool.

use crate::{seq_le, Violation};
use dcnet::{Msg, NodeAddr, PortId, Switch, TrafficClass};
use dcsim::{Component, ComponentId, Engine, EventRecord, Observer, ShardedEngine, SimTime};
use haas::{FailureMonitor, FpgaState};
use shell::Shell;
use std::collections::BTreeMap;

/// Read-only typed component access: the least the invariant checks need
/// from an engine, implemented by both execution modes so the same
/// oracles run under the classic event loop (at event granularity, via
/// [`Observer`]) and the sharded engine (at whatever step granularity
/// the harness drives, via [`InvariantObserver::check_now`]).
pub trait ComponentView {
    /// A typed component reference, if `id` holds a `T`.
    fn view<T: Component<Msg>>(&self, id: ComponentId) -> Option<&T>;
}

impl ComponentView for Engine<Msg> {
    fn view<T: Component<Msg>>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
    }
}

impl ComponentView for ShardedEngine<Msg> {
    fn view<T: Component<Msg>>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
    }
}

impl ComponentView for catapult::Cluster {
    fn view<T: Component<Msg>>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
    }
}

/// Snapshot of one switch egress (port, class) lane.
#[derive(Debug, Clone, Copy, Default)]
struct LaneSnap {
    paused: bool,
    tx_frames: u64,
}

/// Snapshot of one shell's observable LTL state.
#[derive(Debug, Clone, Default)]
struct ShellSnap {
    tor_paused: bool,
    ltl_tx_frames: u64,
    recv_expected: Vec<u32>,
}

/// Simplified HaaS node state for transition checking.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeSnap {
    Unallocated,
    Leased(String),
    Failed,
    Unregistered,
}

/// Event-granularity invariant checker for a cluster simulation.
pub struct InvariantObserver {
    switches: Vec<ComponentId>,
    shells: Vec<ComponentId>,
    monitor: Option<(ComponentId, Vec<NodeAddr>)>,
    switch_prev: BTreeMap<ComponentId, Vec<LaneSnap>>,
    shell_prev: BTreeMap<ComponentId, ShellSnap>,
    node_prev: BTreeMap<NodeAddr, NodeSnap>,
    violations: Vec<Violation>,
    checks: u64,
    /// Whether snapshots are taken after *every* event. The PFC-obedience
    /// checks compare pause state across consecutive snapshots and are
    /// only sound when nothing can flip a pause bit between them — at
    /// coarser (window) granularity they would flag legal transmissions,
    /// so they are disabled.
    event_granular: bool,
}

impl InvariantObserver {
    /// Builds a checker over the given switches, shells, and (optionally)
    /// a failure monitor with the node addresses to track.
    pub fn new(
        switches: Vec<ComponentId>,
        shells: Vec<ComponentId>,
        monitor: Option<(ComponentId, Vec<NodeAddr>)>,
    ) -> InvariantObserver {
        InvariantObserver {
            switches,
            shells,
            monitor,
            switch_prev: BTreeMap::new(),
            shell_prev: BTreeMap::new(),
            node_prev: BTreeMap::new(),
            violations: Vec::new(),
            checks: 0,
            event_granular: true,
        }
    }

    /// Like [`InvariantObserver::new`], but for checking at coarser than
    /// event granularity — between `run_until` steps of a sharded
    /// cluster, say. Queue bounds, LTL receive monotonicity, and HaaS
    /// transition legality are granularity-insensitive and stay on; the
    /// PFC-obedience snapshot diffs (which would misread "paused at both
    /// edges of a window" as "paused throughout") are disabled.
    pub fn windowed(
        switches: Vec<ComponentId>,
        shells: Vec<ComponentId>,
        monitor: Option<(ComponentId, Vec<NodeAddr>)>,
    ) -> InvariantObserver {
        let mut obs = InvariantObserver::new(switches, shells, monitor);
        obs.event_granular = false;
        obs
    }

    /// Runs every (enabled) check once against the current state. Drive
    /// this between steps when no [`Observer`] hook is available — e.g.
    /// under the sharded engine.
    pub fn check_now<V: ComponentView>(&mut self, at: SimTime, view: &V) {
        self.check_switches(at, view);
        self.check_shells(at, view);
        self.check_haas(at, view);
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total predicate evaluations.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    fn push(&mut self, at: SimTime, check: &'static str, detail: String) {
        if self.violations.len() < 32 {
            self.violations.push(Violation { at, check, detail });
        }
    }

    fn node_state(monitor: &FailureMonitor, addr: NodeAddr) -> NodeSnap {
        match monitor.rm().state(addr) {
            Some(FpgaState::Unallocated) => NodeSnap::Unallocated,
            Some(FpgaState::Leased { service, .. }) => NodeSnap::Leased(service.clone()),
            Some(FpgaState::Failed) => NodeSnap::Failed,
            None => NodeSnap::Unregistered,
        }
    }

    fn check_switches<V: ComponentView>(&mut self, at: SimTime, engine: &V) {
        for idx in 0..self.switches.len() {
            let id = self.switches[idx];
            let Some(sw) = engine.view::<Switch>(id) else {
                continue;
            };
            let ports = sw.port_count();
            let capacity = sw.config().queue_capacity_bytes;
            // Lossless classes are paused, not dropped; their backlog is
            // bounded by what every ingress can pour in past its XOFF
            // threshold plus frames already committed to the wire.
            let lossless_cap = sw
                .config()
                .pfc
                .as_ref()
                .map(|pfc| capacity.max(ports as u64 * pfc.xoff_bytes) + 64 * 1024);
            let mut snaps = Vec::with_capacity(ports * TrafficClass::COUNT);
            for port in 0..ports {
                for class_idx in 0..TrafficClass::COUNT {
                    let class = TrafficClass::new(class_idx as u8);
                    let port_id = PortId(port as u16);
                    let queued = sw.queue_bytes(port_id, class);
                    self.checks += 1;
                    if sw.class_is_lossless(class) {
                        if let Some(cap) = lossless_cap {
                            if queued > cap {
                                self.push(
                                    at,
                                    "switch.lossless_bound",
                                    format!(
                                        "switch {id:?} port {port} class {class_idx}: \
                                         {queued} B queued > PFC ceiling {cap} B"
                                    ),
                                );
                            }
                        }
                    } else if queued > capacity {
                        self.push(
                            at,
                            "switch.lossy_bound",
                            format!(
                                "switch {id:?} port {port} class {class_idx}: \
                                 {queued} B queued > capacity {capacity} B"
                            ),
                        );
                    }
                    let snap = LaneSnap {
                        paused: sw.tx_paused(port_id, class),
                        tx_frames: sw.tx_frames(port_id, class),
                    };
                    snaps.push(snap);
                }
            }
            if let Some(prev) = self.switch_prev.remove(&id).filter(|_| self.event_granular) {
                for (lane, (p, c)) in prev.iter().zip(snaps.iter()).enumerate() {
                    self.checks += 1;
                    if p.paused && c.paused && c.tx_frames != p.tx_frames {
                        let (port, class_idx) =
                            (lane / TrafficClass::COUNT, lane % TrafficClass::COUNT);
                        self.push(
                            at,
                            "switch.pfc_obedience",
                            format!(
                                "switch {id:?} port {port} class {class_idx}: transmitted \
                                 {} frame(s) while paused",
                                c.tx_frames - p.tx_frames
                            ),
                        );
                    }
                }
            }
            self.switch_prev.insert(id, snaps);
        }
    }

    fn check_shells<V: ComponentView>(&mut self, at: SimTime, engine: &V) {
        for idx in 0..self.shells.len() {
            let id = self.shells[idx];
            let Some(shell) = engine.view::<Shell>(id) else {
                continue;
            };
            let ltl = shell.ltl();
            let mut snap = ShellSnap {
                tor_paused: shell.tor_paused(TrafficClass::LTL),
                ltl_tx_frames: shell.stats_view().ltl_tx_frames,
                recv_expected: Vec::with_capacity(ltl.recv_conn_count()),
            };
            for conn in 0..ltl.recv_conn_count() {
                snap.recv_expected.push(
                    ltl.recv_conn_view(conn as u16)
                        .map(|v| v.expected_seq)
                        .unwrap_or_default(),
                );
            }
            if let Some(prev) = self.shell_prev.remove(&id) {
                self.checks += 1;
                if self.event_granular
                    && prev.tor_paused
                    && snap.tor_paused
                    && snap.ltl_tx_frames != prev.ltl_tx_frames
                {
                    self.push(
                        at,
                        "shell.pfc_obedience",
                        format!(
                            "shell {id:?} handed {} LTL frame(s) to a paused egress",
                            snap.ltl_tx_frames - prev.ltl_tx_frames
                        ),
                    );
                }
                for (conn, (p, c)) in prev
                    .recv_expected
                    .iter()
                    .zip(snap.recv_expected.iter())
                    .enumerate()
                {
                    self.checks += 1;
                    if !seq_le(*p, *c) {
                        self.push(
                            at,
                            "ltl.expected_monotonic",
                            format!(
                                "shell {id:?} recv conn {conn}: expected_seq moved \
                                 backward {p} -> {c}"
                            ),
                        );
                    }
                }
            }
            self.shell_prev.insert(id, snap);
        }
    }

    fn check_haas<V: ComponentView>(&mut self, at: SimTime, engine: &V) {
        let Some((monitor_id, addrs)) = self.monitor.clone() else {
            return;
        };
        let Some(monitor) = engine.view::<FailureMonitor>(monitor_id) else {
            return;
        };
        for addr in addrs {
            let cur = Self::node_state(monitor, addr);
            if let Some(prev) = self.node_prev.get(&addr) {
                self.checks += 1;
                let legal = match (prev, &cur) {
                    (a, b) if a == b => true,
                    (_, NodeSnap::Failed) => true,
                    (NodeSnap::Unallocated, NodeSnap::Leased(_)) => true,
                    (NodeSnap::Leased(_), NodeSnap::Unallocated) => true,
                    (NodeSnap::Failed, NodeSnap::Unallocated) => true, // repair
                    _ => false,
                };
                if !legal {
                    self.push(
                        at,
                        "haas.transition",
                        format!("node {addr}: illegal state transition {prev:?} -> {cur:?}"),
                    );
                }
            }
            self.node_prev.insert(addr, cur);
        }
    }
}

impl Observer<Msg> for InvariantObserver {
    fn after_event(&mut self, event: &EventRecord, engine: &Engine<Msg>) {
        self.check_now(event.at, engine);
    }
}
