//! Delta-debugging reduction of failing event lists.
//!
//! Given an event list that makes an oracle fire and a closure that
//! re-runs the simulation, [`ddmin`] finds a 1-minimal sub-list: removing
//! any single remaining event makes the failure disappear. Because each
//! probe is a fully deterministic replay, the result is an exact minimal
//! reproduction, not a statistical one. Generic over the event type —
//! chaos [`catapult::chaos::FaultEvent`]s and elastic
//! [`haas::LeaseEvent`]s shrink through the same machinery.

/// Zeller–Hildebrandt ddmin over an event list. `still_fails` must return
/// `true` when the simulation run with the candidate event list still
/// exhibits the failure. Returns a 1-minimal failing sub-list (the input
/// itself must fail; this is debug-asserted by re-running it).
pub fn ddmin<T, F>(events: &[T], mut still_fails: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    let mut cur: Vec<T> = events.to_vec();
    if cur.is_empty() {
        return cur;
    }
    let mut granularity = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            // Complement: everything except [start, end).
            let candidate: Vec<T> = cur[..start]
                .iter()
                .chain(cur[end..].iter())
                .cloned()
                .collect();
            if !candidate.is_empty() && still_fails(&candidate) {
                cur = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= cur.len() {
                break;
            }
            granularity = (granularity * 2).min(cur.len());
        }
    }
    // Final 1-minimality pass: try dropping each single event.
    let mut i = 0;
    while cur.len() > 1 && i < cur.len() {
        let mut candidate = cur.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            cur = candidate;
        } else {
            i += 1;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use catapult::chaos::{FaultEvent, FaultKind};
    use dcnet::NodeAddr;
    use dcsim::{SimDuration, SimTime};

    fn flap(host: u16) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_micros(host as u64),
            kind: FaultKind::LinkFlap {
                node: NodeAddr::new(0, 0, host),
                down: SimDuration::from_micros(10),
            },
        }
    }

    fn hosts(events: &[FaultEvent]) -> Vec<u16> {
        events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkFlap { node, .. } => Some(node.host),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let events: Vec<FaultEvent> = (0..16).map(flap).collect();
        let mut probes = 0;
        let minimal = ddmin(&events, |candidate| {
            probes += 1;
            hosts(candidate).contains(&11)
        });
        assert_eq!(hosts(&minimal), vec![11]);
        assert!(probes < 64, "ddmin used {probes} probes for 16 events");
    }

    #[test]
    fn keeps_an_interacting_pair() {
        // Failure needs events 3 AND 12 together: ddmin must keep both.
        let events: Vec<FaultEvent> = (0..16).map(flap).collect();
        let minimal = ddmin(&events, |candidate| {
            let h = hosts(candidate);
            h.contains(&3) && h.contains(&12)
        });
        assert_eq!(hosts(&minimal), vec![3, 12]);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert_eq!(ddmin::<FaultEvent, _>(&[], |_| true), Vec::new());
    }

    #[test]
    fn shrinks_non_copy_event_types() {
        // The elastic scheduler's trace events are Clone-not-Copy;
        // ddmin must reduce them identically.
        let events: Vec<String> = (0..8).map(|i| format!("ev{i}")).collect();
        let minimal = ddmin(&events, |c| c.iter().any(|e| e == "ev5"));
        assert_eq!(minimal, vec!["ev5".to_string()]);
    }
}
