//! Elastic Router conservation fuzzing.
//!
//! Drives an [`shell::ElasticRouter`] with a randomized mix of
//! injections and crossbar steps (under a randomized downstream
//! back-pressure mask) and checks the credit/token conservation laws
//! after every operation:
//!
//! * occupancy == flits accepted − flits routed (nothing duplicated or
//!   leaked),
//! * occupancy never exceeds the configured buffer capacity,
//! * [`shell::ElasticRouter::can_accept`] is truthful — a promised
//!   injection never fails, and the router's stats agree with an
//!   external tally,
//! * a full drain returns every in-flight flit exactly once.

use crate::Violation;
use dcsim::{SimRng, SimTime};
use shell::{CreditPolicy, ElasticRouter, ErConfig, Flit, InjectError};

/// One randomized conservation run of `ops` operations. The `at` stamp
/// on violations carries the op index (the router itself is untimed).
pub fn check_er(seed: u64, ops: u32) -> Vec<Violation> {
    let mut rng = SimRng::seed_from(seed ^ 0xE1A5_71C0);
    let cfg = ErConfig::default()
        .with_ports(2 + rng.index(3))
        .with_vcs(1 + rng.index(3))
        .with_credits_per_vc(1 + rng.index(4))
        .with_shared_credits(rng.index(9))
        .with_policy(if rng.chance(0.5) {
            CreditPolicy::Elastic
        } else {
            CreditPolicy::Static
        });
    let ports = cfg.ports;
    let vcs = cfg.vcs;
    let capacity = ports * (vcs * cfg.credits_per_vc + cfg.shared_credits);
    let mut er = ElasticRouter::new(cfg);
    let mut violations: Vec<Violation> = Vec::new();
    let mut accepted: u64 = 0;
    let mut routed: u64 = 0;
    let mut msg_id: u64 = 0;

    let fail = |violations: &mut Vec<Violation>, op: u32, check, detail: String| {
        violations.push(Violation {
            at: SimTime::from_nanos(op as u64),
            check,
            detail,
        });
    };

    for op in 0..ops {
        if rng.chance(0.6) {
            // Inject at a random (port, vc) with a random destination.
            let port = rng.index(ports);
            let vc = rng.index(vcs);
            let promised = er.can_accept(port, vc);
            msg_id += 1;
            let flit = Flit {
                out_port: rng.index(ports),
                vc,
                tail: rng.chance(0.5),
                msg_id,
                flit_seq: 0,
            };
            match er.inject(port, flit) {
                Ok(()) => {
                    accepted += 1;
                    if !promised {
                        fail(
                            &mut violations,
                            op,
                            "er.can_accept",
                            format!("({port}, {vc}) refused admission but inject succeeded"),
                        );
                    }
                }
                Err(InjectError::NoCredit) => {
                    if promised {
                        fail(
                            &mut violations,
                            op,
                            "er.can_accept",
                            format!("({port}, {vc}) promised a credit but inject failed"),
                        );
                    }
                }
                Err(InjectError::BadPort) => {
                    fail(
                        &mut violations,
                        op,
                        "er.inject",
                        format!("in-range ({port}, {vc}) rejected as BadPort"),
                    );
                }
            }
        } else {
            // One crossbar cycle under random back-pressure.
            let mask: Vec<bool> = (0..ports * vcs).map(|_| rng.chance(0.7)).collect();
            let emitted = er.step(|out, vc| mask[out * vcs + vc]);
            for (_, flit) in &emitted {
                if flit.vc >= vcs {
                    fail(
                        &mut violations,
                        op,
                        "er.step",
                        format!("emitted flit on out-of-range vc {}", flit.vc),
                    );
                }
            }
            routed += emitted.len() as u64;
        }

        let occ = er.occupancy() as u64;
        if occ + routed != accepted {
            fail(
                &mut violations,
                op,
                "er.conservation",
                format!("occupancy {occ} != accepted {accepted} - routed {routed}"),
            );
        }
        if occ > capacity as u64 {
            fail(
                &mut violations,
                op,
                "er.capacity",
                format!("occupancy {occ} exceeds buffer capacity {capacity}"),
            );
        }
        let stats = er.stats_view();
        if stats.flits_injected != accepted || stats.flits_routed != routed {
            fail(
                &mut violations,
                op,
                "er.stats",
                format!(
                    "stats ({}, {}) != tally ({accepted}, {routed})",
                    stats.flits_injected, stats.flits_routed
                ),
            );
        }
        if violations.len() > 8 {
            return violations;
        }
    }

    // Final drain must return exactly the outstanding flits.
    let outstanding = accepted.saturating_sub(routed);
    let drained = er.drain(10_000).len() as u64;
    if drained != outstanding || er.occupancy() != 0 {
        fail(
            &mut violations,
            ops,
            "er.drain",
            format!(
                "drain returned {drained} of {outstanding} outstanding (occupancy {})",
                er.occupancy()
            ),
        );
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_over_many_seeds() {
        for seed in 0..24 {
            let v = check_er(seed, 300);
            assert_eq!(v, Vec::new(), "seed {seed}");
        }
    }
}
