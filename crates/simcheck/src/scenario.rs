//! Randomized whole-cluster scenarios under the invariant checker.
//!
//! Each seed materialises a small random fat-tree, a set of LTL flows
//! between random endpoint pairs, a HaaS control plane tracking every
//! node, and a chaos [`FaultPlan`] — then runs to quiescence with the
//! [`InvariantObserver`] attached and a per-flow delivery-order oracle
//! on every consumer. The same spec replays byte-identically: the
//! outcome is a pure function of `(seed, salt, topology, plan)`.

use crate::invariants::InvariantObserver;
use crate::Violation;
use bytes::Bytes;
use catapult::chaos::{ChaosTargets, FaultConfig, FaultEvent, FaultKind, FaultPlan};
use catapult::{Cluster, ClusterBuilder};
use dcnet::{Msg, NodeAddr, PortId, SwitchCmd};
use dcsim::{Component, ComponentId, Context, SimDuration, SimRng, SimTime};
use fpga::Image;
use haas::{
    Constraints, DeployImage, FailureMonitor, FpgaManager, NodeDownReport, ResourceManager,
    ServiceManager,
};
use shell::{LtlConnFailed, LtlDeliver, ShellCmd};
use std::collections::BTreeMap;

/// Per-node delivery-order oracle and failure reporter: checks that the
/// counter embedded in each delivered payload strictly increases per
/// (source, connection) flow — no duplicated, reordered or replayed
/// delivery survives go-back-N — and relays connection failures to the
/// failure monitor like a production consumer would.
struct FlowConsumer {
    addr: NodeAddr,
    monitor: ComponentId,
    last_counter: BTreeMap<(u32, u16), u64>,
    delivered: u64,
    violations: Vec<Violation>,
}

impl Component<Msg> for FlowConsumer {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Msg::Custom(any) = msg else { return };
        match any.downcast::<LtlDeliver>() {
            Ok(deliver) => {
                self.delivered += 1;
                let mut head = [0u8; 8];
                let n = deliver.payload.len().min(8);
                head[..n].copy_from_slice(&deliver.payload[..n]);
                let counter = u64::from_be_bytes(head);
                let key = (deliver.src.as_u32(), deliver.conn);
                if let Some(&prev) = self.last_counter.get(&key) {
                    if counter <= prev {
                        self.violations.push(Violation {
                            at: ctx.now(),
                            check: "flow.delivery_order",
                            detail: format!(
                                "node {} flow {key:?}: counter {counter} after {prev} \
                                 (duplicate or reordered delivery)",
                                self.addr
                            ),
                        });
                    }
                }
                self.last_counter.insert(key, counter);
            }
            Err(any) => {
                if let Ok(failed) = any.downcast::<LtlConnFailed>() {
                    ctx.send(
                        self.monitor,
                        Msg::custom(NodeDownReport {
                            addr: failed.remote,
                        }),
                    );
                }
            }
        }
    }
}

/// Everything parameterising one cluster scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Cluster / engine seed.
    pub seed: u64,
    /// Tie-break salt (0 = FIFO).
    pub salt: u64,
    /// Racks in the single pod.
    pub racks: u16,
    /// Hosts per rack.
    pub hosts_per_rack: u16,
    /// LTL flow pairs.
    pub pairs: u16,
    /// Messages per pair.
    pub msgs_per_pair: u32,
    /// Send/fault window.
    pub horizon: SimDuration,
    /// The chaos schedule.
    pub plan: FaultPlan,
}

impl ScenarioSpec {
    /// All populated node addresses of the scenario's topology.
    pub fn addrs(&self) -> Vec<NodeAddr> {
        let mut addrs = Vec::new();
        for rack in 0..self.racks {
            for host in 0..self.hosts_per_rack {
                addrs.push(NodeAddr::new(0, rack, host));
            }
        }
        addrs
    }

    /// Fault-plan targets: every node, every rack.
    pub fn targets(&self) -> ChaosTargets {
        ChaosTargets {
            accelerators: self.addrs(),
            clients: Vec::new(),
            racks: (0..self.racks).map(|r| (0, r)).collect(),
        }
    }

    /// The scenario fault mix: the standard chaos mix with outage
    /// lengths compressed to the scenario timescale.
    pub fn fault_config(horizon: SimDuration) -> FaultConfig {
        FaultConfig {
            flap_down: SimDuration::from_micros(300),
            tor_reboot: SimDuration::from_micros(900),
            hang_duration: SimDuration::from_micros(250),
            burst_frames: 3,
            ..FaultConfig::with_rate(horizon, 1.0)
        }
    }

    /// Generates the spec for one fuzzing seed: random topology, random
    /// flow set, seeded fault plan. Odd seeds run salted.
    pub fn generate(seed: u64) -> ScenarioSpec {
        let mut rng = SimRng::seed_from(seed ^ 0x5CE2_A210);
        let racks = 2 + rng.index(3) as u16;
        let hosts_per_rack = 2 + rng.index(3) as u16;
        let total = (racks * hosts_per_rack) as usize;
        let pairs = (1 + rng.index(3)).min(total / 2) as u16;
        let horizon = SimDuration::from_millis(2);
        let mut spec = ScenarioSpec {
            seed,
            salt: if seed % 2 == 1 {
                seed ^ 0xA5A5_0F0F_3C3C_9696
            } else {
                0
            },
            racks,
            hosts_per_rack,
            pairs,
            msgs_per_pair: 4 + rng.index(5) as u32,
            horizon,
            plan: FaultPlan::default(),
        };
        spec.plan = FaultPlan::generate(seed, &spec.targets(), &Self::fault_config(horizon));
        spec
    }
}

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Invariant and delivery-order violations, in event order.
    pub violations: Vec<Violation>,
    /// Events dispatched.
    pub events: u64,
    /// Messages delivered across all consumers.
    pub delivered: u64,
    /// Oracle checks evaluated.
    pub checks: u64,
}

/// Schedules every fault in the plan onto the cluster (mirrors the chaos
/// harness's installation; host stalls have no target here and are
/// skipped).
fn install_plan(cluster: &mut Cluster, monitor_id: ComponentId, plan: &FaultPlan) {
    for FaultEvent { at, kind } in plan.events.clone() {
        match kind {
            FaultKind::LinkFlap { node, down } => {
                let tor = cluster.fabric().tor_switch(node.pod, node.tor);
                let port = PortId(node.host);
                let e = cluster.engine_mut();
                e.schedule(
                    at,
                    tor,
                    Msg::custom(SwitchCmd::SetLinkUp { port, up: false }),
                );
                e.schedule(
                    at + down,
                    tor,
                    Msg::custom(SwitchCmd::SetLinkUp { port, up: true }),
                );
            }
            FaultKind::TorCrash { pod, tor, reboot } => {
                let id = cluster.fabric().tor_switch(pod, tor);
                cluster.engine_mut().schedule(
                    at,
                    id,
                    Msg::custom(SwitchCmd::Crash {
                        reboot_after: reboot,
                    }),
                );
            }
            FaultKind::CorruptBurst { node, frames } => {
                let tor = cluster.fabric().tor_switch(node.pod, node.tor);
                cluster.engine_mut().schedule(
                    at,
                    tor,
                    Msg::custom(SwitchCmd::CorruptNext {
                        port: PortId(node.host),
                        frames,
                    }),
                );
            }
            FaultKind::FpgaHang { node, duration } => {
                let shell = cluster.shell_id(node).expect("targets are populated");
                cluster.engine_mut().schedule(
                    at,
                    shell,
                    Msg::custom(ShellCmd::HangRole { duration }),
                );
            }
            FaultKind::HostStall { .. } => {}
            FaultKind::LossyLink {
                node,
                rate_ppm,
                duration,
            } => {
                let shell = cluster.shell_id(node).expect("targets are populated");
                let e = cluster.engine_mut();
                e.schedule(
                    at,
                    shell,
                    Msg::custom(ShellCmd::SetLtlLossRate(rate_ppm as f64 / 1e6)),
                );
                e.schedule(
                    at + duration,
                    shell,
                    Msg::custom(ShellCmd::SetLtlLossRate(0.0)),
                );
            }
            FaultKind::BadImage { node } => {
                let shell = cluster.shell_id(node).expect("targets are populated");
                let mut bad = Image::application("simcheck-bad", "role");
                bad.features.bridge = false;
                let e = cluster.engine_mut();
                e.schedule(
                    at,
                    shell,
                    Msg::custom(ShellCmd::Reconfigure { partial: false }),
                );
                e.schedule(
                    at,
                    monitor_id,
                    Msg::custom(DeployImage {
                        addr: node,
                        image: bad,
                    }),
                );
            }
        }
    }
}

/// Runs one scenario to quiescence under the invariant observer.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    let shape = dcnet::FabricShape {
        hosts_per_tor: spec.hosts_per_rack,
        tors_per_pod: spec.racks,
        pods: 1,
        spines: 1,
    };
    let mut cluster = ClusterBuilder::new(spec.seed)
        .fabric_config(&catapult::calib::fabric_config(shape))
        .shell_config(catapult::calib::shell_config())
        .build();
    cluster.engine_mut().set_tie_break_salt(spec.salt);

    let addrs = spec.addrs();
    for &addr in &addrs {
        cluster.add_shell(addr);
    }

    // HaaS control plane: every node registered, one service leasing a
    // slice of the pool, an FM view per node.
    let mut rm = ResourceManager::new();
    for &addr in &addrs {
        rm.register(addr);
    }
    let mut sm = ServiceManager::new("simcheck");
    sm.grow(&mut rm, spec.pairs as usize, &Constraints::default())
        .expect("pool covers the flow count");
    let mut monitor = FailureMonitor::new(rm, Some(SimDuration::from_micros(600)));
    monitor.add_service(sm);
    for &addr in &addrs {
        monitor.add_fm(FpgaManager::new(addr));
    }
    let monitor_id = cluster.engine_mut().add_component(monitor);

    // Flows between the first 2*pairs shuffled nodes; consumer per node.
    let mut rng = SimRng::seed_from(spec.seed ^ 0xF10A_5EED);
    let mut shuffled = addrs.clone();
    rng.shuffle(&mut shuffled);
    let mut send_conns = Vec::new();
    for pair in 0..spec.pairs as usize {
        let client = shuffled[2 * pair];
        let server = shuffled[2 * pair + 1];
        let (client_send, _, _, _) = cluster.connect_pair(client, server);
        send_conns.push((client, client_send));
    }
    let mut consumer_ids = Vec::new();
    for &addr in &addrs {
        let consumer = FlowConsumer {
            addr,
            monitor: monitor_id,
            last_counter: BTreeMap::new(),
            delivered: 0,
            violations: Vec::new(),
        };
        let id = cluster.engine_mut().add_component(consumer);
        cluster.set_consumer(addr, id);
        consumer_ids.push(id);
    }

    // Workload: per-flow monotone counters embedded in each payload.
    // Submission times are made strictly increasing per flow so a
    // tie-break salt can never reorder two submissions of the same flow
    // (which would be a workload artefact, not a protocol violation).
    let window = spec.horizon.as_nanos() as f64 * 0.7;
    for &(client, conn) in &send_conns {
        let shell_id = cluster.shell_id(client).expect("just populated");
        let mut times: Vec<u64> = (0..spec.msgs_per_pair)
            .map(|_| (rng.uniform() * window) as u64)
            .collect();
        times.sort_unstable();
        for (counter, t) in times.into_iter().enumerate() {
            let len = 9 + rng.index(1800);
            let mut payload = vec![0u8; len];
            payload[..8].copy_from_slice(&(counter as u64).to_be_bytes());
            cluster.engine_mut().schedule(
                SimTime::from_nanos(t + counter as u64),
                shell_id,
                Msg::custom(ShellCmd::LtlSend {
                    conn,
                    vc: 0,
                    payload: Bytes::from(payload),
                }),
            );
        }
    }

    install_plan(&mut cluster, monitor_id, &spec.plan);

    let switches: Vec<ComponentId> = {
        let fabric = cluster.fabric();
        let mut ids: Vec<ComponentId> = fabric.tor_switches().collect();
        ids.push(fabric.agg_switch(0));
        ids.extend_from_slice(fabric.spine_switches());
        ids
    };
    let shell_ids: Vec<ComponentId> = cluster.shells().map(|(_, id)| id).collect();
    cluster
        .engine_mut()
        .set_observer(Box::new(InvariantObserver::new(
            switches,
            shell_ids,
            Some((monitor_id, addrs.clone())),
        )));

    let events = cluster.run_to_idle();

    let engine = cluster.engine();
    let observer = engine
        .observer_as::<InvariantObserver>()
        .expect("observer attached above");
    let mut violations = observer.violations().to_vec();
    let checks = observer.checks();
    let mut delivered = 0;
    for id in consumer_ids {
        if let Some(consumer) = engine.component::<FlowConsumer>(id) {
            violations.extend(consumer.violations.iter().cloned());
            delivered += consumer.delivered;
        }
    }
    violations.sort_by_key(|v| v.at);
    ScenarioOutcome {
        violations,
        events,
        delivered,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenario_upholds_all_invariants() {
        let mut spec = ScenarioSpec::generate(4);
        spec.plan = FaultPlan::default();
        let out = run_scenario(&spec);
        assert_eq!(out.violations, Vec::new());
        assert!(out.delivered > 0);
        assert!(out.checks > 0);
    }

    #[test]
    fn chaotic_scenarios_uphold_all_invariants() {
        for seed in 0..4 {
            let out = run_scenario(&ScenarioSpec::generate(seed));
            assert_eq!(out.violations, Vec::new(), "seed {seed}");
        }
    }

    #[test]
    fn scenario_replays_identically() {
        let spec = ScenarioSpec::generate(7);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.events, b.events);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violations, b.violations);
    }
}
