//! Executable reference model for the LTL selective-repeat retransmission
//! protocol (one direction of one connection).
//!
//! The selective-repeat counterpart of [`crate::model::GbnRefModel`]: fed
//! the observable protocol trace, it tracks the full set of in-flight
//! sequence numbers (the retransmission window may legitimately contain
//! SACK-punched holes), the receiver's out-of-order reassembly buffer,
//! and the FIFO of submitted messages. The differential harness compares
//! this state against the real [`shell::ltl::LtlEngine`]'s exact
//! sequence-list introspection after every event.
//!
//! The SACK contract is checked *exactly*: every SACK the receiver emits
//! must carry `expected - 1` as its cumulative ack and a bitmap that is
//! precisely the contents of the reassembly buffer (bit `i` ⇔ sequence
//! `cum + 2 + i` buffered). The protocol itself self-heals around a
//! forgotten bitmap bit — the sender just retransmits — which is exactly
//! why the check must be exact: a lossy-bitmap bug is invisible to any
//! oracle that only watches deliveries.

use crate::{seq_le, seq_lt};
use shell::ltl::{RecvConnView, SendConnView};
use std::collections::{BTreeSet, VecDeque};

/// One submitted message the receiver has not yet delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingMsg {
    /// Sequence number of its first frame.
    first_seq: u32,
    /// Number of frames.
    frames: u32,
    /// Application-level counter carried in the payload head.
    counter: u64,
}

/// Reference selective-repeat state for one direction (one send
/// connection and its peer receive connection).
#[derive(Debug, Clone)]
pub struct SrRefModel {
    /// Receive reassembly window in frames.
    window: u32,
    /// Next sequence number the sender will assign.
    next_seq: u32,
    /// All sequence numbers below this are cumulatively acknowledged.
    floor: u32,
    /// Sequence numbers transmitted at least once and not yet released by
    /// the cumulative floor (the engine's unacked store is exactly this
    /// set minus [`Self::sacked`]).
    tx: BTreeSet<u32>,
    /// Sequence numbers at or above the floor retired individually by a
    /// SACK bitmap bit.
    sacked: BTreeSet<u32>,
    /// Receiver's next in-order expected sequence number.
    expected: u32,
    /// Receiver's out-of-order reassembly buffer.
    buffered: BTreeSet<u32>,
    /// Submitted messages not yet fully delivered, in order.
    pending: VecDeque<PendingMsg>,
    /// Messages delivered in order so far.
    delivered: u64,
    /// Frames lost by the channel on this direction's data path or its
    /// reverse control path.
    drops: u64,
    /// The sender declared the connection failed.
    failed: bool,
}

impl Default for SrRefModel {
    fn default() -> Self {
        Self::new(64)
    }
}

impl SrRefModel {
    /// A fresh connection: both sides at sequence 0, with the receiver
    /// buffering at most `window - 1` frames ahead.
    pub fn new(window: u32) -> SrRefModel {
        SrRefModel {
            window: window.clamp(1, 64),
            next_seq: 0,
            floor: 0,
            tx: BTreeSet::new(),
            sacked: BTreeSet::new(),
            expected: 0,
            buffered: BTreeSet::new(),
            pending: VecDeque::new(),
            delivered: 0,
            drops: 0,
            failed: false,
        }
    }

    /// Messages delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether the sender has declared the connection failed.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Channel drops charged to this direction so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Records a channel drop affecting this direction.
    pub fn on_drop(&mut self) {
        self.drops += 1;
    }

    /// The application submitted a message segmented into `frames` frames
    /// starting at `first_seq`, carrying `counter` in its payload head.
    pub fn on_submit(&mut self, first_seq: u32, frames: u32, counter: u64) -> Result<(), String> {
        if first_seq != self.next_seq {
            return Err(format!(
                "message submitted at seq {first_seq}, model expected {}",
                self.next_seq
            ));
        }
        if frames == 0 {
            return Err("zero-frame message".into());
        }
        self.pending.push_back(PendingMsg {
            first_seq,
            frames,
            counter,
        });
        self.next_seq = self.next_seq.wrapping_add(frames);
        Ok(())
    }

    /// The sender put a data frame with sequence `seq` on the wire
    /// (first transmission or retransmission).
    pub fn on_data_tx(&mut self, seq: u32) -> Result<(), String> {
        if !(seq_le(self.floor, seq) && seq_lt(seq, self.next_seq)) {
            return Err(format!(
                "data seq {seq} outside window [{}, {})",
                self.floor, self.next_seq
            ));
        }
        if self.sacked.contains(&seq) {
            // A selectively acknowledged frame is retired; retransmitting
            // it wastes the exact bandwidth selective repeat exists to
            // save, and means the sender lost track of its sack state.
            return Err(format!("retransmission of individually sacked seq {seq}"));
        }
        self.tx.insert(seq);
        Ok(())
    }

    /// Which `last_frag` flag the frame at `seq` must carry, per the
    /// pending-message layout. `None` if no pending message covers it.
    fn frame_last_flag(&self, seq: u32) -> Option<bool> {
        for m in &self.pending {
            let last = m.first_seq.wrapping_add(m.frames - 1);
            if seq_le(m.first_seq, seq) && seq_le(seq, last) {
                return Some(seq == last);
            }
        }
        None
    }

    /// Accepts the in-order frame at `expected`; returns the counter of
    /// the message it completes, if any.
    fn accept(&mut self, seq: u32) -> Result<Option<u64>, String> {
        let front = self
            .pending
            .front()
            .copied()
            .ok_or_else(|| format!("in-order data seq {seq} with no message pending"))?;
        let msg_last = front.first_seq.wrapping_add(front.frames - 1);
        self.expected = self.expected.wrapping_add(1);
        if seq == msg_last {
            self.pending.pop_front();
            self.delivered += 1;
            return Ok(Some(front.counter));
        }
        Ok(None)
    }

    /// A data frame with sequence `seq` (and `last_frag` marker) reached
    /// the receiver. Returns the counters of every message this frame
    /// completes — filling a gap can release a run of buffered frames and
    /// with them several messages at once.
    pub fn on_data_rx(&mut self, seq: u32, last_frag: bool) -> Result<Vec<u64>, String> {
        if seq_lt(seq, self.expected) || self.buffered.contains(&seq) {
            // Duplicate of something delivered or already buffered: the
            // receiver re-advertises its state, nothing changes.
            return Ok(Vec::new());
        }
        let offset = seq.wrapping_sub(self.expected);
        if offset >= self.window {
            // Beyond the reassembly window: the receiver drops it.
            return Ok(Vec::new());
        }
        match self.frame_last_flag(seq) {
            None => {
                return Err(format!("data seq {seq} belongs to no pending message"));
            }
            Some(want) if want != last_frag => {
                return Err(format!(
                    "frame seq {seq} has last_frag={last_frag}, model expects {want}"
                ));
            }
            Some(_) => {}
        }
        if seq != self.expected {
            self.buffered.insert(seq);
            return Ok(Vec::new());
        }
        let mut completed = Vec::new();
        completed.extend(self.accept(seq)?);
        while self.buffered.remove(&self.expected) {
            let next = self.expected;
            completed.extend(self.accept(next)?);
        }
        Ok(completed)
    }

    /// The receiver emitted a SACK with cumulative ack `cum` and bitmap
    /// `bits`. Both are checked exactly against the receiver state.
    pub fn on_sack_tx(&self, cum: u32, bits: u64) -> Result<(), String> {
        let want = self.expected.wrapping_sub(1);
        if cum != want {
            return Err(format!("sack cum {cum}, receiver's floor is {want}"));
        }
        // Bit i ⇔ sequence cum + 2 + i sits in the reassembly buffer.
        // cum + 1 is the receiver's first gap and can never be sacked, so
        // the 64-bit map covers the whole window exactly.
        for i in 0..64u32 {
            let s = cum.wrapping_add(2).wrapping_add(i);
            let advertised = bits & (1u64 << i) != 0;
            let held = self.buffered.contains(&s);
            if advertised != held {
                return Err(format!(
                    "sack bitmap bit {i} (seq {s}) = {advertised}, reassembly buffer says {held}"
                ));
            }
        }
        Ok(())
    }

    /// A SACK with cumulative ack `cum` and bitmap `bits` reached the
    /// sender: the floor advances past `cum` and every bitmap sequence is
    /// retired individually.
    pub fn on_sack_rx(&mut self, cum: u32, bits: u64) -> Result<(), String> {
        if !seq_lt(cum, self.next_seq) {
            return Err(format!(
                "sack cum {cum} which was never assigned (next_seq {})",
                self.next_seq
            ));
        }
        let floor = cum.wrapping_add(1);
        if seq_lt(self.floor, floor) {
            self.floor = floor;
            let f = self.floor;
            self.tx.retain(|&s| seq_le(f, s));
            self.sacked.retain(|&s| seq_le(f, s));
        }
        for i in 0..64u32 {
            if bits & (1u64 << i) == 0 {
                continue;
            }
            let s = cum.wrapping_add(2).wrapping_add(i);
            if !seq_lt(s, self.next_seq) {
                return Err(format!(
                    "sack bit for seq {s} which was never assigned (next_seq {})",
                    self.next_seq
                ));
            }
            if seq_lt(s, self.floor) {
                continue; // stale information, already released
            }
            if !self.tx.contains(&s) {
                return Err(format!("sack bit for seq {s} which was never transmitted"));
            }
            self.sacked.insert(s);
        }
        Ok(())
    }

    /// The receiver emitted a NACK requesting retransmission of `seq`.
    pub fn on_nack_tx(&self, seq: u32) -> Result<(), String> {
        if seq != self.expected {
            return Err(format!(
                "nack requests seq {seq}, receiver expects {}",
                self.expected
            ));
        }
        Ok(())
    }

    /// The sender declared the connection failed (retries exhausted).
    pub fn on_conn_failed(&mut self) -> Result<(), String> {
        if self.drops == 0 {
            return Err("connection declared failed on a loss-free channel".into());
        }
        self.failed = true;
        Ok(())
    }

    /// The receiver-side application got a completed message carrying
    /// `counter`; must match what [`Self::on_data_rx`] just completed.
    pub fn on_deliver(&mut self, counter: u64, expected_counter: u64) -> Result<(), String> {
        if counter != expected_counter {
            return Err(format!(
                "delivered message counter {counter}, model completed {expected_counter}"
            ));
        }
        Ok(())
    }

    /// The exact in-flight sequence list a correct sender must hold, in
    /// window (serial) order.
    fn expected_unacked(&self) -> Vec<u32> {
        let mut seqs: Vec<u32> = self
            .tx
            .iter()
            .copied()
            .filter(|s| !self.sacked.contains(s))
            .collect();
        seqs.sort_by_key(|s| s.wrapping_sub(self.floor));
        seqs
    }

    /// Differential check of the real sender's view and exact in-flight
    /// sequence list after an event.
    pub fn check_sender(&self, view: &SendConnView, unacked: &[u32]) -> Result<(), String> {
        if self.failed {
            // Past failure the engine clears its queues; nothing to pin.
            return Ok(());
        }
        if view.next_seq != self.next_seq {
            return Err(format!(
                "sender next_seq {} != model {}",
                view.next_seq, self.next_seq
            ));
        }
        let want = self.expected_unacked();
        if unacked != want.as_slice() {
            return Err(format!(
                "sender in-flight seqs {unacked:?} != model tx-minus-sacked {want:?}"
            ));
        }
        Ok(())
    }

    /// Differential check of the real receiver's view and exact reassembly
    /// buffer after an event.
    pub fn check_receiver(&self, view: &RecvConnView, buffered: &[u32]) -> Result<(), String> {
        if view.expected_seq != self.expected {
            return Err(format!(
                "receiver expected_seq {} != model {}",
                view.expected_seq, self.expected
            ));
        }
        let mut want: Vec<u32> = self.buffered.iter().copied().collect();
        want.sort_by_key(|s| s.wrapping_sub(self.expected));
        if buffered != want.as_slice() {
            return Err(format!(
                "receiver reassembly buffer {buffered:?} != model {want:?}"
            ));
        }
        Ok(())
    }

    /// End-of-run completeness: every submitted message was delivered,
    /// unless the connection legally failed.
    pub fn check_complete(&self) -> Result<(), String> {
        if !self.failed && !self.pending.is_empty() {
            return Err(format!(
                "{} submitted message(s) never delivered on an un-failed connection",
                self.pending.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_exchange_walks_through() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 2, 7).unwrap();
        m.on_data_tx(0).unwrap();
        assert_eq!(m.on_data_rx(0, false).unwrap(), vec![]);
        m.on_sack_tx(0, 0).unwrap();
        m.on_sack_rx(0, 0).unwrap();
        m.on_data_tx(1).unwrap();
        assert_eq!(m.on_data_rx(1, true).unwrap(), vec![7]);
        m.on_sack_tx(1, 0).unwrap();
        m.on_sack_rx(1, 0).unwrap();
        assert_eq!(m.delivered(), 1);
        m.check_complete().unwrap();
    }

    #[test]
    fn gap_fill_releases_buffered_run() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 1, 10).unwrap();
        m.on_submit(1, 1, 11).unwrap();
        m.on_submit(2, 1, 12).unwrap();
        for s in 0..3 {
            m.on_data_tx(s).unwrap();
        }
        // Seqs 1 and 2 arrive over the gap at 0: buffered.
        assert_eq!(m.on_data_rx(1, true).unwrap(), vec![]);
        assert_eq!(m.on_data_rx(2, true).unwrap(), vec![]);
        // The matching sack advertises both (bits 0 and 1 above cum=MAX).
        m.on_sack_tx(u32::MAX, 0b11).unwrap();
        // Filling the hole completes all three messages in order.
        assert_eq!(m.on_data_rx(0, true).unwrap(), vec![10, 11, 12]);
        m.on_sack_tx(2, 0).unwrap();
    }

    #[test]
    fn inexact_sack_bitmap_is_a_violation() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 3, 1).unwrap();
        for s in 0..3 {
            m.on_data_tx(s).unwrap();
        }
        m.on_data_rx(1, false).unwrap();
        m.on_data_rx(2, true).unwrap();
        // Buffer holds {1, 2}: only the exact bitmap passes.
        m.on_sack_tx(u32::MAX, 0b11).unwrap();
        assert!(m.on_sack_tx(u32::MAX, 0b01).is_err(), "omitted bit");
        assert!(m.on_sack_tx(u32::MAX, 0b111).is_err(), "phantom bit");
        assert!(m.on_sack_tx(0, 0b11).is_err(), "wrong cumulative ack");
    }

    #[test]
    fn sacked_frames_leave_the_inflight_set_and_stay_retired() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 3, 1).unwrap();
        for s in 0..3 {
            m.on_data_tx(s).unwrap();
        }
        // Receiver holds {1, 2}; seq 0 is the hole.
        m.on_sack_rx(u32::MAX, 0b11).unwrap();
        assert_eq!(m.expected_unacked(), vec![0]);
        // Retransmitting the retired frames is itself a violation.
        assert!(m.on_data_tx(1).is_err());
        m.on_data_tx(0).unwrap();
        // The cumulative ack for everything clears the window.
        m.on_sack_rx(2, 0).unwrap();
        assert_eq!(m.expected_unacked(), Vec::<u32>::new());
    }

    #[test]
    fn sack_for_untransmitted_seq_is_a_violation() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 4, 1).unwrap();
        m.on_data_tx(0).unwrap();
        // Bit 0 above cum=0 names seq 2, which never hit the wire.
        assert!(m.on_sack_rx(0, 0b1).is_err());
        // And a bit naming a never-assigned seq is equally illegal.
        assert!(m.on_sack_rx(0, 1u64 << 40).is_err());
    }

    #[test]
    fn frames_beyond_the_window_do_not_change_state() {
        let mut m = SrRefModel::new(2);
        m.on_submit(0, 3, 1).unwrap();
        for s in 0..3 {
            m.on_data_tx(s).unwrap();
        }
        assert_eq!(m.on_data_rx(1, false).unwrap(), vec![]);
        // Offset 2 with window 2: dropped, not buffered.
        assert_eq!(m.on_data_rx(2, true).unwrap(), vec![]);
        m.on_sack_tx(u32::MAX, 0b1).unwrap();
    }

    #[test]
    fn duplicate_data_is_ignored() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 1, 1).unwrap();
        m.on_data_tx(0).unwrap();
        assert_eq!(m.on_data_rx(0, true).unwrap(), vec![1]);
        assert_eq!(m.on_data_rx(0, true).unwrap(), vec![]);
        assert_eq!(m.delivered(), 1);
    }

    #[test]
    fn failure_requires_loss() {
        let mut m = SrRefModel::new(64);
        assert!(m.on_conn_failed().is_err());
        m.on_drop();
        m.on_conn_failed().unwrap();
        assert!(m.failed());
    }

    #[test]
    fn incomplete_run_is_flagged() {
        let mut m = SrRefModel::new(64);
        m.on_submit(0, 1, 1).unwrap();
        assert!(m.check_complete().is_err());
    }
}
