//! Flight recorder: bounded, deterministic span recording on simulation
//! hot paths, exportable as Chrome trace-event JSON.
//!
//! Components hold a cheap-clone [`TrackTracer`] (one per named track) and
//! emit instants or complete spans with sim-clock timestamps. Everything
//! lands in one shared [`FlightRecorder`] ring buffer: when the buffer is
//! full the oldest event is dropped and counted, so memory stays bounded
//! and the retained window is always the most recent activity. Because
//! events are appended in simulation dispatch order and timestamped from
//! the sim clock, the exported JSON is byte-identical for the same seed.
//!
//! Handles share the recorder through `Arc<Mutex<..>>` so traced
//! components stay `Send` and can be partitioned across the worker
//! threads of a sharded engine. The lock is uncontended in the
//! single-engine case; sharded runs keep tracing disabled (appends from
//! concurrent shards would interleave nondeterministically), so the
//! mutex is a `Send` bound, not a synchronization point on the hot path.
//!
//! # Examples
//!
//! ```
//! use dcsim::{SimDuration, SimTime};
//! use telemetry::Tracer;
//!
//! let tracer = Tracer::new(1024);
//! let track = tracer.track("ltl/0.0.1");
//! track.instant(SimTime::from_micros(1), "send", &[("seq", 1)]);
//! track.complete(
//!     SimTime::from_micros(1),
//!     SimDuration::from_micros(3),
//!     "request",
//!     &[("id", 7)],
//! );
//! let json = tracer.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(telemetry::json::validate_chrome_trace(&json).is_ok());
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dcsim::{SimDuration, SimTime};
use serde::Value;

/// Event kind, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A point event (`"ph":"i"`, thread-scoped).
    Instant,
    /// A complete span with a duration (`"ph":"X"`).
    Complete,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Index of the track (exported as the `tid`).
    pub track: u32,
    /// Event kind.
    pub phase: TracePhase,
    /// Sim-clock timestamp in nanoseconds (span start for a complete span).
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Event name.
    pub name: &'static str,
    /// Numeric arguments, shown in the Perfetto detail pane.
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct Recorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    tracks: Vec<String>,
}

impl Recorder {
    fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Bounded ring buffer of [`TraceEvent`]s plus the track name table.
///
/// Usually accessed through [`Tracer`] / [`TrackTracer`] handles; exposed
/// so exports and tests can inspect the raw events.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    inner: Recorder,
}

/// Shared handle to a [`FlightRecorder`]; clone freely.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<FlightRecorder>>,
}

/// A [`Tracer`] bound to one named track (one Perfetto "thread" row).
#[derive(Debug, Clone)]
pub struct TrackTracer {
    inner: Arc<Mutex<FlightRecorder>>,
    track: u32,
}

impl Tracer {
    /// Creates a recorder retaining at most `capacity` events (oldest
    /// dropped first).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(FlightRecorder {
                inner: Recorder {
                    capacity,
                    ..Recorder::default()
                },
            })),
        }
    }

    /// Registers a named track and returns a handle that records onto it.
    /// Registering the same name twice yields a second handle to the same
    /// track.
    pub fn track(&self, name: &str) -> TrackTracer {
        let mut rec = self.inner.lock().expect("recorder lock poisoned");
        let tracks = &mut rec.inner.tracks;
        let track = match tracks.iter().position(|t| t == name) {
            Some(i) => i as u32,
            None => {
                tracks.push(name.to_string());
                (tracks.len() - 1) as u32
            }
        };
        TrackTracer {
            inner: Arc::clone(&self.inner),
            track,
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .events
            .len()
    }

    /// Returns `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted (or refused) because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .dropped
    }

    /// Registered track names, in registration order.
    pub fn tracks(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .tracks
            .clone()
    }

    /// Discards all retained events (track registrations are kept).
    pub fn clear(&self) {
        let mut rec = self.inner.lock().expect("recorder lock poisoned");
        rec.inner.events.clear();
        rec.inner.dropped = 0;
    }

    /// Runs `f` over the retained events in recording order.
    pub fn with_events<R>(&self, f: impl FnOnce(&VecDeque<TraceEvent>) -> R) -> R {
        f(&self
            .inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .events)
    }

    /// Exports the retained events as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are emitted in microseconds as
    /// required by the format; `displayTimeUnit` is set to `"ns"`.
    pub fn to_chrome_json(&self) -> String {
        let rec = self.inner.lock().expect("recorder lock poisoned");
        let mut events: Vec<Value> =
            Vec::with_capacity(rec.inner.events.len() + rec.inner.tracks.len());
        for (tid, name) in rec.inner.tracks.iter().enumerate() {
            events.push(Value::Object(vec![
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::U64(0)),
                ("tid".into(), Value::U64(tid as u64)),
                ("name".into(), Value::Str("thread_name".into())),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name.clone()))]),
                ),
            ]));
        }
        for ev in &rec.inner.events {
            let mut obj = vec![
                (
                    "ph".into(),
                    Value::Str(match ev.phase {
                        TracePhase::Instant => "i".into(),
                        TracePhase::Complete => "X".into(),
                    }),
                ),
                ("pid".into(), Value::U64(0)),
                ("tid".into(), Value::U64(ev.track as u64)),
                ("name".into(), Value::Str(ev.name.into())),
                ("cat".into(), Value::Str("sim".into())),
                ("ts".into(), Value::F64(ev.ts_ns as f64 / 1_000.0)),
            ];
            match ev.phase {
                TracePhase::Complete => {
                    obj.push(("dur".into(), Value::F64(ev.dur_ns as f64 / 1_000.0)));
                }
                TracePhase::Instant => {
                    obj.push(("s".into(), Value::Str("t".into())));
                }
            }
            if !ev.args.is_empty() {
                obj.push((
                    "args".into(),
                    Value::Object(
                        ev.args
                            .iter()
                            .map(|&(k, v)| (k.to_string(), Value::U64(v)))
                            .collect(),
                    ),
                ));
            }
            events.push(Value::Object(obj));
        }
        let root = Value::Object(vec![
            ("displayTimeUnit".into(), Value::Str("ns".into())),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        render(&root)
    }
}

fn render(v: &Value) -> String {
    struct Raw<'a>(&'a Value);
    impl serde::Serialize for Raw<'_> {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(v)).expect("trace serializes")
}

impl TrackTracer {
    /// Records a point event at sim time `at`.
    pub fn instant(&self, at: SimTime, name: &'static str, args: &[(&'static str, u64)]) {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .push(TraceEvent {
                track: self.track,
                phase: TracePhase::Instant,
                ts_ns: at.as_nanos(),
                dur_ns: 0,
                name,
                args: args.to_vec(),
            });
    }

    /// Records a complete span starting at `start` and lasting `dur`.
    pub fn complete(
        &self,
        start: SimTime,
        dur: SimDuration,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .inner
            .push(TraceEvent {
                track: self.track,
                phase: TracePhase::Complete,
                ts_ns: start.as_nanos(),
                dur_ns: dur.as_nanos(),
                name,
                args: args.to_vec(),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let t = Tracer::new(2);
        let tr = t.track("a");
        for i in 0..5u64 {
            tr.instant(SimTime::from_nanos(i), "e", &[("i", i)]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        t.with_events(|evs| {
            assert_eq!(evs[0].args, vec![("i", 3)]);
            assert_eq!(evs[1].args, vec![("i", 4)]);
        });
    }

    #[test]
    fn track_registration_deduplicates() {
        let t = Tracer::new(8);
        let a = t.track("x");
        let b = t.track("x");
        let c = t.track("y");
        assert_eq!(a.track, b.track);
        assert_ne!(a.track, c.track);
        assert_eq!(t.tracks(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn chrome_export_is_valid_and_stable() {
        let build = || {
            let t = Tracer::new(64);
            let tr = t.track("ltl/0.0.1");
            tr.instant(SimTime::from_micros(1), "send", &[("seq", 1)]);
            tr.complete(
                SimTime::from_micros(2),
                SimDuration::from_nanos(1500),
                "req",
                &[],
            );
            t.to_chrome_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same inputs must serialize to identical bytes");
        assert!(crate::json::validate_chrome_trace(&a).is_ok());
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":1.5"));
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let t = Tracer::new(0);
        let tr = t.track("a");
        tr.instant(SimTime::ZERO, "e", &[]);
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 1);
    }
}
