//! Minimal JSON parser for validating telemetry output.
//!
//! The vendored `serde_json` stub is serialize-only, but the CI telemetry
//! smoke lane must prove that an exported trace actually *parses* as JSON.
//! This module is a small recursive-descent parser over the full JSON
//! grammar, used for validation (and light structural checks) only.

use serde::Value;

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Validates that `input` is well-formed JSON.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

/// Validates that `input` is well-formed Chrome trace-event JSON in the
/// object form: a top-level object whose `traceEvents` member is an array
/// of event objects each carrying a `ph` phase string.
pub fn validate_chrome_trace(input: &str) -> Result<(), String> {
    let root = parse(input)?;
    let Value::Object(fields) = root else {
        return Err("top level is not an object".into());
    };
    let Some((_, events)) = fields.iter().find(|(k, _)| k == "traceEvents") else {
        return Err("missing \"traceEvents\" member".into());
    };
    let Value::Array(events) = events else {
        return Err("\"traceEvents\" is not an array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Value::Object(fields) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        match fields.iter().find(|(k, _)| k == "ph") {
            Some((_, Value::Str(_))) => {}
            Some(_) => return Err(format!("traceEvents[{i}].ph is not a string")),
            None => return Err(format!("traceEvents[{i}] has no \"ph\" phase")),
        }
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // RFC 8259 leaves duplicate-key behaviour undefined; for a
            // validator that ambiguity is a defect, so reject outright.
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!(
                    "duplicate key {key:?} in object at byte {}",
                    self.pos
                ));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined; the exporters never emit them.
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?,
                            );
                        }
                        Some(esc) => {
                            out.push(match esc {
                                b'"' => '"',
                                b'\\' => '\\',
                                b'/' => '/',
                                b'b' => '\u{8}',
                                b'f' => '\u{c}',
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                _ => return Err(format!("bad escape at byte {}", self.pos)),
                            });
                            self.pos += 1;
                        }
                        None => return Err("unterminated string".into()),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // self.pos is at the 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(format!("bad number at byte {start}"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| format!("number out of range at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| format!("number out of range at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("1.5e3").unwrap(), Value::F64(1500.0));
        assert_eq!(
            parse("[1, \"a\\n\", {}]").unwrap(),
            Value::Array(vec![
                Value::U64(1),
                Value::Str("a\n".into()),
                Value::Object(vec![])
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"unterminated", "tru"] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_truncated_objects() {
        for bad in [
            "{\"a\"",
            "{\"a\":",
            "{\"a\":1",
            "{\"a\":1,",
            "{\"a\":1,\"b\"",
            "{\"a\":{\"b\":2}",
            "[{\"a\":1}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_bad_escapes() {
        for bad in [
            r#""\x""#,         // unknown escape letter
            r#""\""#,          // escape at end of input
            r#""\u12""#,       // truncated \u escape
            r#""\u12G4""#,     // non-hex digit
            r#""\uD800""#,     // lone surrogate
            "\"raw\ttab\"",    // raw control byte
            "\"line\nbreak\"", // raw newline
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
        // The escaped forms of the same characters are fine.
        assert_eq!(parse(r#""a\tb\nc""#).unwrap(), Value::Str("a\tb\nc".into()));
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn rejects_duplicate_keys() {
        for bad in [
            "{\"a\":1,\"a\":2}",
            "{\"a\":1,\"b\":2,\"a\":3}",
            "{\"outer\":{\"k\":1,\"k\":2}}",
            "[{\"k\":null,\"k\":null}]",
        ] {
            assert!(
                validate(bad).unwrap_err().contains("duplicate key"),
                "{bad:?} should fail with a duplicate-key error"
            );
        }
        // Same key at different nesting levels is legal.
        assert!(validate("{\"k\":{\"k\":1},\"j\":{\"k\":2}}").is_ok());
    }

    #[test]
    fn round_trips_serializer_output() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::F64(1.25), Value::U64(2)]),
            ),
            ("b \"q\"".into(), Value::Str("x\ty".into())),
        ]);
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = serde_json::to_string(&Raw(v.clone())).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn chrome_trace_shape_checks() {
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\",\"ts\":1.0}]}").is_ok());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ts\":1.0}]}").is_err());
    }
}
