//! The metrics registry: [`MetricSource`], [`MetricVisitor`] and
//! [`MetricsSnapshot`].
//!
//! The registry is pull-based: nothing is registered up front. Taking a
//! snapshot walks the component tree, each [`MetricSource`] publishes its
//! values through a [`MetricVisitor`], and the snapshot stores them in a
//! `BTreeMap` keyed by slash-separated paths (`"shell/0.0.1/ltl/retransmits"`).
//! The map makes iteration and serialization order a pure function of the
//! keys, which is what makes a same-seed metrics dump byte-identical.

use std::collections::BTreeMap;

use dcsim::SimTime;
use serde::{Serialize, Value};

use crate::histogram::{Histogram, HistogramSnapshot};

/// One published metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(f64),
    /// Distribution summary with exact percentiles.
    Histogram(HistogramSnapshot),
}

impl Serialize for MetricValue {
    fn to_value(&self) -> Value {
        match self {
            MetricValue::Counter(v) => v.to_value(),
            MetricValue::Gauge(v) => v.to_value(),
            MetricValue::Histogram(h) => h.to_value(),
        }
    }
}

/// A component that can publish its metrics into the registry.
///
/// This is the uniform read-out surface: `metrics()` is the registry view
/// of what the legacy per-component `stats()` structs expose ad hoc.
pub trait MetricSource {
    /// Publishes this component's metrics through `m`. Implementations
    /// must be deterministic: emit in a fixed order and derive every value
    /// from simulation state only.
    fn metrics(&self, m: &mut MetricVisitor<'_>);
}

/// Write handle a [`MetricSource`] publishes through; scoped to the
/// component's path prefix.
pub struct MetricVisitor<'a> {
    prefix: String,
    entries: &'a mut BTreeMap<String, MetricValue>,
}

impl MetricVisitor<'_> {
    fn key(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.prefix, name)
        }
    }

    /// Publishes a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.entries
            .insert(self.key(name), MetricValue::Counter(value));
    }

    /// Publishes a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.entries
            .insert(self.key(name), MetricValue::Gauge(value));
    }

    /// Publishes a snapshot of a live histogram.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.entries
            .insert(self.key(name), MetricValue::Histogram(h.snapshot()));
    }

    /// Publishes a histogram built from a raw sample stream, with
    /// `bucket_width`-wide distribution buckets (0 = no buckets).
    pub fn histogram_samples(
        &mut self,
        name: &str,
        bucket_width: u64,
        samples: impl IntoIterator<Item = u64>,
    ) {
        let h = Histogram::from_samples(bucket_width, samples);
        self.entries
            .insert(self.key(name), MetricValue::Histogram(h.snapshot()));
    }

    /// Recurses into a child source under `segment`, e.g. a shell visiting
    /// its embedded LTL engine under `"ltl"`.
    pub fn child(&mut self, segment: &str, source: &dyn MetricSource) {
        let mut v = MetricVisitor {
            prefix: self.key(segment),
            entries: self.entries,
        };
        source.metrics(&mut v);
    }

    /// Recurses into a child source under a stable zero-padded indexed
    /// segment: `child_indexed("tenant", 7, ..)` publishes under
    /// `tenant007`. The padding keeps dynamically-sized families (tenants,
    /// regions) in numeric order under the registry's lexicographic key
    /// sort, mirroring the fixed `torPP.TT` path convention.
    pub fn child_indexed(&mut self, prefix: &str, index: u64, source: &dyn MetricSource) {
        let mut v = MetricVisitor {
            prefix: self.key(&format!("{prefix}{index:03}")),
            entries: self.entries,
        };
        source.metrics(&mut v);
    }
}

/// A frozen, deterministic view of every published metric at one instant
/// of simulated time.
///
/// This is the single `snapshot()` shape that replaces the divergent
/// per-component stats surfaces: report assembly reads counters back out
/// by key (or sums them across components with [`MetricsSnapshot::sum_counters`])
/// instead of hand-gathering structs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    at_ns: u64,
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot stamped with the sim-clock instant `at`.
    pub fn new(at: SimTime) -> Self {
        MetricsSnapshot {
            at_ns: at.as_nanos(),
            entries: BTreeMap::new(),
        }
    }

    /// Sim-clock instant this snapshot was taken, in nanoseconds.
    pub fn at_nanos(&self) -> u64 {
        self.at_ns
    }

    /// Walks `source`, storing everything it publishes under `path`.
    pub fn visit(&mut self, path: &str, source: &dyn MetricSource) {
        let mut v = MetricVisitor {
            prefix: path.to_string(),
            entries: &mut self.entries,
        };
        source.metrics(&mut v);
    }

    /// Returns a scoped visitor for publishing ad-hoc values under `path`
    /// without a [`MetricSource`] (e.g. driver-level gauges).
    pub fn visitor(&mut self, path: &str) -> MetricVisitor<'_> {
        MetricVisitor {
            prefix: path.to_string(),
            entries: &mut self.entries,
        }
    }

    /// Number of stored metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up any metric by full key.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.get(key)
    }

    /// Looks up a counter by full key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.entries.get(key)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge by full key.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.entries.get(key)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram by full key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(key)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sums every counter whose key ends with `/suffix` (or equals
    /// `suffix`). This is how reports aggregate one quantity across many
    /// components, e.g. `sum_counters("ltl/retransmits")` over all shells.
    pub fn sum_counters(&self, suffix: &str) -> u64 {
        self.matching(suffix)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Merges every histogram whose key ends with `/suffix` (or equals
    /// `suffix`) into one exact aggregate, or `None` if no key matches.
    pub fn merged_histogram(&self, suffix: &str) -> Option<HistogramSnapshot> {
        let parts: Vec<&HistogramSnapshot> = self
            .matching(suffix)
            .filter_map(|(_, v)| match v {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(HistogramSnapshot::merged(parts))
        }
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn matching<'a>(
        &'a self,
        suffix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a MetricValue)> + 'a {
        self.entries.iter().filter_map(move |(k, v)| {
            let hit = k == suffix
                || (k.len() > suffix.len()
                    && k.ends_with(suffix)
                    && k.as_bytes()[k.len() - suffix.len() - 1] == b'/');
            hit.then_some((k.as_str(), v))
        })
    }

    /// Serializes the snapshot as compact JSON. Key order is the
    /// `BTreeMap` order, so the same metrics yield the same bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serializes")
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let metrics = self
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("at_ns".into(), self.at_ns.to_value()),
            ("metrics".into(), Value::Object(metrics)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl MetricSource for Fake {
        fn metrics(&self, m: &mut MetricVisitor<'_>) {
            m.counter("rx", 3);
            m.counter("tx", 4);
            m.gauge("occupancy", 0.5);
            m.histogram_samples("lat_ns", 0, [10, 20, 30]);
        }
    }

    struct Nested;

    impl MetricSource for Nested {
        fn metrics(&self, m: &mut MetricVisitor<'_>) {
            m.counter("outer", 1);
            m.child("inner", &Fake);
        }
    }

    #[test]
    fn visit_prefixes_keys() {
        let mut snap = MetricsSnapshot::new(SimTime::from_micros(5));
        snap.visit("node0", &Fake);
        assert_eq!(snap.counter("node0/rx"), Some(3));
        assert_eq!(snap.gauge("node0/occupancy"), Some(0.5));
        assert_eq!(snap.histogram("node0/lat_ns").unwrap().p50, Some(20));
        assert_eq!(snap.at_nanos(), 5_000);
    }

    #[test]
    fn child_nests_paths() {
        let mut snap = MetricsSnapshot::new(SimTime::ZERO);
        snap.visit("a", &Nested);
        assert_eq!(snap.counter("a/outer"), Some(1));
        assert_eq!(snap.counter("a/inner/rx"), Some(3));
    }

    #[test]
    fn sum_counters_matches_whole_path_segments() {
        let mut snap = MetricsSnapshot::new(SimTime::ZERO);
        snap.visit("n0", &Fake);
        snap.visit("n1", &Fake);
        snap.visitor("odd").counter("xrx", 100);
        assert_eq!(snap.sum_counters("rx"), 6);
        assert_eq!(snap.sum_counters("tx"), 8);
    }

    #[test]
    fn merged_histogram_aggregates() {
        let mut snap = MetricsSnapshot::new(SimTime::ZERO);
        snap.visit("n0", &Fake);
        snap.visit("n1", &Fake);
        let m = snap.merged_histogram("lat_ns").unwrap();
        assert_eq!(m.count, 6);
        assert_eq!(m.max, Some(30));
        assert!(snap.merged_histogram("nope").is_none());
    }

    #[test]
    fn json_is_key_ordered_and_stable() {
        let mut a = MetricsSnapshot::new(SimTime::ZERO);
        a.visit("z", &Fake);
        a.visit("a", &Fake);
        let mut b = MetricsSnapshot::new(SimTime::ZERO);
        b.visit("a", &Fake);
        b.visit("z", &Fake);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("\"a/rx\"").unwrap() < json.find("\"z/rx\"").unwrap());
        assert!(crate::json::validate(&json).is_ok());
    }
}
