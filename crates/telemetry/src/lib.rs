//! # telemetry — deterministic sim-time metrics and tracing
//!
//! One uniform read-out surface for every instrumented component in the
//! Configurable Cloud reproduction. Components implement [`MetricSource`]
//! and publish counters, gauges and histograms into a [`MetricsSnapshot`]
//! keyed by slash-separated component paths; hot paths additionally emit
//! spans into a bounded [`FlightRecorder`] ring buffer that exports as
//! Chrome trace-event JSON (viewable in Perfetto).
//!
//! Determinism is a hard constraint, matching the simulation substrate:
//!
//! * every timestamp comes from the sim clock ([`dcsim::SimTime`]), never
//!   wall-clock time;
//! * snapshot entries live in a `BTreeMap`, so serialization order is a
//!   pure function of the metric keys, not registration order;
//! * the same seed therefore produces a byte-identical metrics dump and
//!   trace JSON across runs and processes.
//!
//! # Examples
//!
//! ```
//! use telemetry::{MetricSource, MetricVisitor, MetricsSnapshot};
//!
//! struct Nic { rx: u64, tx: u64 }
//!
//! impl MetricSource for Nic {
//!     fn metrics(&self, m: &mut MetricVisitor<'_>) {
//!         m.counter("rx_frames", self.rx);
//!         m.counter("tx_frames", self.tx);
//!     }
//! }
//!
//! let nic = Nic { rx: 7, tx: 5 };
//! let mut snap = MetricsSnapshot::new(dcsim::SimTime::from_micros(10));
//! snap.visit("node0/nic", &nic);
//! assert_eq!(snap.counter("node0/nic/rx_frames"), Some(7));
//! assert!(snap.to_json().contains("\"node0/nic/tx_frames\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod json;
mod registry;
mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{MetricSource, MetricValue, MetricVisitor, MetricsSnapshot};
pub use trace::{FlightRecorder, TraceEvent, TracePhase, Tracer, TrackTracer};
