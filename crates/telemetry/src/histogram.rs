//! Registry histograms: streaming moments plus exact percentiles plus
//! optional fixed-width distribution buckets.
//!
//! A [`Histogram`] is the live accumulator components record into; a
//! [`HistogramSnapshot`] is the frozen, serializable view published into a
//! [`crate::MetricsSnapshot`]. Moments come from
//! [`dcsim::StreamingStats`] and tail quantiles from
//! [`dcsim::PercentileRecorder`], so snapshot percentiles are exact, not
//! bucket-approximated.

use std::collections::BTreeMap;

use dcsim::{PercentileRecorder, SimDuration, StreamingStats};
use serde::{Serialize, Value};

/// Live histogram accumulator (typically over latencies in nanoseconds).
///
/// # Examples
///
/// ```
/// use telemetry::Histogram;
///
/// let mut h = Histogram::with_bucket_width(250);
/// for v in [100, 200, 300, 400] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.p50, Some(200));
/// assert_eq!(snap.buckets, vec![(0, 2), (250, 2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    moments: StreamingStats,
    samples: PercentileRecorder,
    bucket_width: u64,
}

impl Histogram {
    /// Creates an empty histogram without distribution buckets.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Creates an empty histogram whose snapshot carries fixed-width
    /// distribution buckets of `width` (same unit as the samples;
    /// `0` disables bucketing).
    pub fn with_bucket_width(width: u64) -> Self {
        Histogram {
            bucket_width: width,
            ..Histogram::default()
        }
    }

    /// Builds a histogram from an existing sample stream.
    pub fn from_samples(width: u64, samples: impl IntoIterator<Item = u64>) -> Self {
        let mut h = Histogram::with_bucket_width(width);
        for v in samples {
            h.record(v);
        }
        h
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.moments.record(value as f64);
        self.samples.record(value);
    }

    /// Adds one duration sample, recorded as nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.moments = StreamingStats::new();
        self.samples.clear();
    }

    /// Freezes the accumulator into a serializable snapshot with exact
    /// percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut sorted: PercentileRecorder = self.samples.iter().collect();
        // `checked_div` is None exactly when bucket_width is 0, i.e. the
        // histogram was built without distribution buckets.
        let mut map: BTreeMap<u64, u64> = BTreeMap::new();
        for v in self.samples.iter() {
            if let Some(bucket) = v.checked_div(self.bucket_width) {
                *map.entry(bucket * self.bucket_width).or_insert(0) += 1;
            }
        }
        let buckets: Vec<(u64, u64)> = map.into_iter().collect();
        HistogramSnapshot {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
            min: sorted.min(),
            max: sorted.max(),
            p50: sorted.percentile(50.0),
            p90: sorted.percentile(90.0),
            p99: sorted.percentile(99.0),
            p999: sorted.percentile(99.9),
            bucket_width: self.bucket_width,
            buckets,
            samples: self.samples.iter().collect(),
        }
    }
}

/// Frozen, serializable view of a [`Histogram`].
///
/// Serialization covers the summary fields and the distribution buckets;
/// the raw samples are retained in memory (for exact re-aggregation via
/// [`HistogramSnapshot::merged`]) but deliberately kept out of the JSON
/// dump to bound its size.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 with fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: Option<u64>,
    /// Largest sample.
    pub max: Option<u64>,
    /// Exact 50th percentile (nearest rank).
    pub p50: Option<u64>,
    /// Exact 90th percentile.
    pub p90: Option<u64>,
    /// Exact 99th percentile.
    pub p99: Option<u64>,
    /// Exact 99.9th percentile.
    pub p999: Option<u64>,
    /// Width of the distribution buckets (0 = no buckets).
    pub bucket_width: u64,
    /// Non-empty `(bucket_start, count)` pairs in ascending order.
    pub buckets: Vec<(u64, u64)>,
    samples: Vec<u64>,
}

impl HistogramSnapshot {
    /// The raw samples behind this snapshot, in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Exact `p`-th percentile recomputed from the raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let mut rec: PercentileRecorder = self.samples.iter().copied().collect();
        rec.percentile(p)
    }

    /// Merges several snapshots into one by re-aggregating their raw
    /// samples (in iteration order), so percentiles of the merged view
    /// stay exact. The bucket width is taken from the first snapshot
    /// with a non-zero width.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramSnapshot>) -> HistogramSnapshot {
        let mut width = 0;
        let mut all: Vec<u64> = Vec::new();
        for p in parts {
            if width == 0 {
                width = p.bucket_width;
            }
            all.extend_from_slice(&p.samples);
        }
        Histogram::from_samples(width, all).snapshot()
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), self.count.to_value()),
            ("mean".into(), self.mean.to_value()),
            ("std_dev".into(), self.std_dev.to_value()),
            ("min".into(), self.min.to_value()),
            ("max".into(), self.max.to_value()),
            ("p50".into(), self.p50.to_value()),
            ("p90".into(), self.p90.to_value()),
            ("p99".into(), self.p99.to_value()),
            ("p999".into(), self.p999.to_value()),
            ("bucket_width".into(), self.bucket_width.to_value()),
            ("buckets".into(), self.buckets.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_percentile_recorder() {
        let mut h = Histogram::new();
        let mut r = PercentileRecorder::new();
        let mut x = 17u64;
        for i in 0..5_000u64 {
            let v = x % 1_000_000;
            h.record(v);
            r.record(v);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50, r.percentile(50.0));
        assert_eq!(snap.p90, r.percentile(90.0));
        assert_eq!(snap.p99, r.percentile(99.0));
        assert_eq!(snap.p999, r.percentile(99.9));
        assert_eq!(snap.min, r.min());
        assert_eq!(snap.max, r.max());
    }

    #[test]
    fn moments_match_streaming_stats() {
        let xs = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let mut h = Histogram::new();
        let mut s = StreamingStats::new();
        for &v in &xs {
            h.record(v);
            s.record(v as f64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, s.count());
        assert!((snap.mean - s.mean()).abs() < 1e-12);
        assert!((snap.std_dev - s.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn buckets_partition_samples() {
        let mut h = Histogram::with_bucket_width(100);
        for v in [0, 99, 100, 250, 251, 900] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 2), (100, 1), (200, 2), (900, 1)]);
        assert_eq!(
            snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            snap.count
        );
    }

    #[test]
    fn merged_is_exact() {
        let a = Histogram::from_samples(250, [100, 900]).snapshot();
        let b = Histogram::from_samples(250, [500]).snapshot();
        let m = HistogramSnapshot::merged([&a, &b]);
        assert_eq!(m.count, 3);
        assert_eq!(m.p50, Some(500));
        assert_eq!(m.max, Some(900));
        assert_eq!(m.bucket_width, 250);
    }

    #[test]
    fn serialization_skips_raw_samples() {
        let snap = Histogram::from_samples(250, [1, 2, 3]).snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"p999\""));
        assert!(!json.contains("samples"));
    }

    #[test]
    fn empty_snapshot_is_all_none() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p999, None);
        assert!(snap.buckets.is_empty());
    }
}
