//! Elastic multi-tenant HaaS scheduling over partial-reconfiguration
//! regions.
//!
//! The paper's Resource Manager leases *whole boards*. Once boards are
//! carved into PR regions ([`fpga::PrBoard`]), the pool becomes elastic:
//! tenants lease individual regions, higher classes preempt lower ones
//! with a bounded eviction latency, a periodic defragmentation pass
//! repacks leases best-fit-decreasing, and spot capacity is reclaimed
//! when the free pool drains. [`ElasticScheduler`] is that control
//! plane, driven by a time-ordered [`LeaseEvent`] trace and emitting a
//! [`Decision`] log whose FNV-1a fingerprint makes whole runs
//! byte-comparable.
//!
//! Every rule below is deliberately a *total, deterministic* function of
//! the event history — the pure reference scheduler in `simcheck`
//! re-implements the same contract and is compared lock-step, decision
//! by decision:
//!
//! * **placement** is best-fit: the smallest free region that holds the
//!   request, ties broken by board registration order then region index;
//! * **preemption**: a request that does not fit may evict the
//!   lowest-class preemptible lease (spot before standard; guaranteed is
//!   never evicted) in the smallest sufficient region, ties by lease id;
//!   the region is reserved and the eviction completes one
//!   `eviction_window` later;
//! * **defragmentation** runs at every `defrag_period` boundary and
//!   repacks live leases best-fit-decreasing, migrating only leases
//!   whose assignment changes (in lease-id order);
//! * **spot reclamation** evicts spot leases (largest region first) when
//!   the free share of the pool falls below `spot_reserve_permille`.

use std::collections::BTreeMap;

use dcnet::NodeAddr;
use dcsim::{SimDuration, SimTime};
use shell::tenant::{TenantCaps, TenantId};
use telemetry::{Histogram, MetricSource, MetricVisitor};

/// Tenant service class, in strict priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TenantClass {
    /// Paid, never preempted.
    Guaranteed,
    /// Default class; preemptible only when the lease opts in.
    Standard,
    /// Best-effort; always preemptible and reclaimable.
    Spot,
}

impl TenantClass {
    /// Priority rank: lower is stronger.
    pub fn rank(self) -> u8 {
        match self {
            TenantClass::Guaranteed => 0,
            TenantClass::Standard => 1,
            TenantClass::Spot => 2,
        }
    }

    /// All classes, strongest first.
    pub const ALL: [TenantClass; 3] = [
        TenantClass::Guaranteed,
        TenantClass::Standard,
        TenantClass::Spot,
    ];

    /// Short lowercase label (metric paths, reports).
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::Guaranteed => "guaranteed",
            TenantClass::Standard => "standard",
            TenantClass::Spot => "spot",
        }
    }
}

/// One row of a placement snapshot: the region, its occupant lease id,
/// and any pending eviction as `(due_ns, reserved_request)`.
pub type PlacementRow = (RegionRef, Option<u64>, Option<(u64, Option<u64>)>);

/// One PR region on one board, the unit of placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionRef {
    /// The board.
    pub board: NodeAddr,
    /// Region index on the board (carve order).
    pub region: u8,
}

impl core::fmt::Display for RegionRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/r{}", self.board, self.region)
    }
}

/// A live lease of one PR region by one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLease {
    /// Lease id (monotonic grant order).
    pub id: u64,
    /// The request sequence number that produced this lease.
    pub req: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Service class.
    pub class: TenantClass,
    /// ALMs the tenant asked for (≤ the region's size).
    pub alms: u32,
    /// Whether this lease may be preempted by a higher class.
    pub preemptible: bool,
    /// Shell isolation caps programmed for the tenant.
    pub caps: TenantCaps,
    /// Where the lease currently runs.
    pub at: RegionRef,
}

/// Why an elastic operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticError {
    /// No region on any up board is large enough, ever.
    RequestTooLarge {
        /// ALMs requested.
        alms: u32,
        /// Largest region in the pool (0 when no boards are up).
        largest: u32,
    },
    /// Direct preemption of a lease that is not preemptible.
    NotPreemptible(u64),
    /// Unknown lease or request id.
    UnknownLease(u64),
    /// Spot reclamation requested but no spot lease exists.
    SpotPoolEmpty,
    /// The board is not registered.
    UnknownBoard(NodeAddr),
    /// The board is already registered.
    DuplicateBoard(NodeAddr),
}

impl core::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ElasticError::RequestTooLarge { alms, largest } => {
                write!(
                    f,
                    "request for {alms} ALMs exceeds largest region ({largest})"
                )
            }
            ElasticError::NotPreemptible(id) => write!(f, "lease {id} is not preemptible"),
            ElasticError::UnknownLease(id) => write!(f, "unknown lease/request {id}"),
            ElasticError::SpotPoolEmpty => f.write_str("no spot lease to reclaim"),
            ElasticError::UnknownBoard(a) => write!(f, "unknown board {a}"),
            ElasticError::DuplicateBoard(a) => write!(f, "board {a} already registered"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// Elastic scheduler tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Grace between an eviction decision and the region being free
    /// (victim checkpoint + region unload). Bounds priority inversion.
    pub eviction_window: SimDuration,
    /// Defragmentation repack period (0 disables defrag).
    pub defrag_period: SimDuration,
    /// Spot reclamation trigger: keep at least this share of the pool
    /// free or freeing, in permille.
    pub spot_reserve_permille: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            // One role partial-reconfiguration plus checkpoint slack.
            eviction_window: SimDuration::from_millis(500),
            defrag_period: SimDuration::from_secs(10),
            spot_reserve_permille: 0,
        }
    }
}

/// One input to the scheduler: something a tenant or the fabric did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: LeaseEventKind,
}

/// The kinds of trace events the scheduler consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseEventKind {
    /// A tenant asks for a region.
    Request {
        /// Request sequence number (unique per trace; release handle).
        req: u64,
        /// Requesting tenant.
        tenant: TenantId,
        /// Service class.
        class: TenantClass,
        /// ALMs needed.
        alms: u32,
        /// Whether the resulting lease may be preempted (forced `true`
        /// for spot, ignored `false` for guaranteed).
        preemptible: bool,
        /// Shell caps to program while the lease runs.
        caps: TenantCaps,
    },
    /// The tenant is done with the lease created by request `req` (or
    /// cancels it while still queued).
    Release {
        /// The originating request sequence number.
        req: u64,
    },
    /// A board crashed: every lease on it is lost.
    BoardDown {
        /// The crashed board.
        board: NodeAddr,
    },
    /// A crashed board came back, all regions free.
    BoardUp {
        /// The recovered board.
        board: NodeAddr,
    },
}

/// One scheduler decision — the oracle compares these lock-step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Request `req` got lease `lease` at `at`.
    Grant {
        /// Request sequence number.
        req: u64,
        /// Newly minted lease id.
        lease: u64,
        /// Placement.
        at: RegionRef,
        /// Wait from arrival to grant, in nanoseconds.
        waited_ns: u64,
    },
    /// Request `req` cannot be placed yet and waits.
    Queue {
        /// Request sequence number.
        req: u64,
    },
    /// Lease `victim` is being evicted so `for_req` can take its region
    /// after the eviction window.
    Evict {
        /// Evicted lease.
        victim: u64,
        /// Beneficiary request.
        for_req: u64,
        /// Region being vacated.
        at: RegionRef,
    },
    /// Spot lease `victim` is being reclaimed to refill the free pool.
    Reclaim {
        /// Reclaimed lease.
        victim: u64,
        /// Region being vacated.
        at: RegionRef,
    },
    /// Defragmentation moved lease `lease`.
    Migrate {
        /// The migrated lease.
        lease: u64,
        /// Old placement.
        from: RegionRef,
        /// New placement.
        to: RegionRef,
    },
    /// Request `req` can never be satisfied (larger than any region).
    Reject {
        /// Request sequence number.
        req: u64,
    },
    /// The lease created by request `req` ended (`lease` is `None` when
    /// the request was still queued or already gone).
    Release {
        /// The originating request.
        req: u64,
        /// The released lease, if one was live.
        lease: Option<u64>,
    },
    /// A board crashed, losing these leases (ascending lease id).
    BoardDown {
        /// The crashed board.
        board: NodeAddr,
        /// Leases that died with it.
        lost: Vec<u64>,
    },
    /// A board recovered.
    BoardUp {
        /// The recovered board.
        board: NodeAddr,
    },
}

#[derive(Debug, Clone)]
struct Slot {
    alms: u32,
    lease: Option<u64>,
    /// An eviction in progress: when the region frees, and the request
    /// (if any) the region is reserved for.
    pending: Option<(SimTime, Option<u64>)>,
}

#[derive(Debug, Clone)]
struct BoardState {
    addr: NodeAddr,
    up: bool,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Waiting {
    req: u64,
    tenant: TenantId,
    class: TenantClass,
    alms: u32,
    preemptible: bool,
    caps: TenantCaps,
    arrived: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Queued,
    Active(u64),
    Done,
}

/// The elastic multi-tenant scheduler.
///
/// # Examples
///
/// ```
/// use dcnet::NodeAddr;
/// use dcsim::SimTime;
/// use haas::{
///     Decision, ElasticConfig, ElasticScheduler, LeaseEvent, LeaseEventKind, TenantClass,
/// };
/// use shell::tenant::{TenantCaps, TenantId};
///
/// let mut sched = ElasticScheduler::new(ElasticConfig::default());
/// sched.add_board(NodeAddr::new(0, 0, 1), &[40_000, 40_000])?;
/// let decisions = sched.apply(&LeaseEvent {
///     at: SimTime::ZERO,
///     kind: LeaseEventKind::Request {
///         req: 0,
///         tenant: TenantId(7),
///         class: TenantClass::Standard,
///         alms: 30_000,
///         preemptible: false,
///         caps: TenantCaps::UNLIMITED,
///     },
/// });
/// assert!(matches!(decisions[0], Decision::Grant { req: 0, .. }));
/// # Ok::<(), haas::ElasticError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ElasticScheduler {
    cfg: ElasticConfig,
    boards: Vec<BoardState>,
    board_index: BTreeMap<NodeAddr, usize>,
    leases: BTreeMap<u64, RegionLease>,
    queue: Vec<Waiting>,
    req_state: BTreeMap<u64, ReqState>,
    next_lease: u64,
    clock: SimTime,
    defrag_done: u64,
    decisions: Vec<Decision>,
    fingerprint: u64,
    // Accounting.
    util_integral: u128,
    grants: u64,
    preemptions: u64,
    reclamations: u64,
    migrations: u64,
    rejects: u64,
    lost_leases: u64,
    wait_ns: [Histogram; 3],
    /// Planted-bug hook for oracle validation: defrag migrations zero
    /// the moved lease's caps.
    debug_defrag_drop_caps: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl ElasticScheduler {
    /// Creates an empty scheduler.
    pub fn new(cfg: ElasticConfig) -> ElasticScheduler {
        ElasticScheduler {
            cfg,
            boards: Vec::new(),
            board_index: BTreeMap::new(),
            leases: BTreeMap::new(),
            queue: Vec::new(),
            req_state: BTreeMap::new(),
            next_lease: 0,
            clock: SimTime::ZERO,
            defrag_done: 0,
            decisions: Vec::new(),
            fingerprint: FNV_OFFSET,
            util_integral: 0,
            grants: 0,
            preemptions: 0,
            reclamations: 0,
            migrations: 0,
            rejects: 0,
            lost_leases: 0,
            wait_ns: [Histogram::new(), Histogram::new(), Histogram::new()],
            debug_defrag_drop_caps: false,
        }
    }

    /// Registers a board carved into regions of the given ALM sizes.
    /// Registration order is the placement tie-break order.
    ///
    /// # Errors
    ///
    /// [`ElasticError::DuplicateBoard`] when already registered.
    pub fn add_board(&mut self, addr: NodeAddr, region_alms: &[u32]) -> Result<(), ElasticError> {
        if self.board_index.contains_key(&addr) {
            return Err(ElasticError::DuplicateBoard(addr));
        }
        self.board_index.insert(addr, self.boards.len());
        self.boards.push(BoardState {
            addr,
            up: true,
            slots: region_alms
                .iter()
                .map(|&alms| Slot {
                    alms,
                    lease: None,
                    pending: None,
                })
                .collect(),
        });
        Ok(())
    }

    /// Enables the planted defrag bug (oracle-validation only): every
    /// migration zeroes the moved lease's shell caps.
    pub fn set_debug_defrag_drop_caps(&mut self, on: bool) {
        self.debug_defrag_drop_caps = on;
    }

    /// The decision log so far.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// FNV-1a fingerprint of the decision log (order-sensitive).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Live leases, ascending id.
    pub fn leases(&self) -> impl Iterator<Item = &RegionLease> {
        self.leases.values()
    }

    /// Requests currently waiting, in arrival order.
    pub fn queued_reqs(&self) -> Vec<u64> {
        self.queue.iter().map(|w| w.req).collect()
    }

    /// Total region ALMs on up boards.
    pub fn pool_alms(&self) -> u64 {
        self.boards
            .iter()
            .filter(|b| b.up)
            .flat_map(|b| b.slots.iter())
            .map(|s| s.alms as u64)
            .sum()
    }

    /// ALMs currently leased (demand, not region sizes).
    pub fn used_alms(&self) -> u64 {
        self.leases.values().map(|l| l.alms as u64).sum()
    }

    /// Time-averaged utilization in permille of the pool, over `[0, clock]`.
    pub fn avg_utilization_permille(&self) -> u64 {
        let pool = self.pool_alms() as u128;
        let t = self.clock.as_nanos() as u128;
        if pool == 0 || t == 0 {
            return 0;
        }
        (self.util_integral * 1000 / (pool * t)) as u64
    }

    /// (grants, preemptions, reclamations, migrations, rejects, lost).
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.grants,
            self.preemptions,
            self.reclamations,
            self.migrations,
            self.rejects,
            self.lost_leases,
        )
    }

    /// Wait-time histogram (ns) for one class.
    pub fn wait_histogram(&self, class: TenantClass) -> &Histogram {
        &self.wait_ns[class.rank() as usize]
    }

    /// Canonical placement snapshot: every (board, region) with its
    /// occupant lease id, plus pending reservations — the oracle equates
    /// these between implementations.
    pub fn placement(&self) -> Vec<PlacementRow> {
        let mut out = Vec::new();
        for b in &self.boards {
            for (i, s) in b.slots.iter().enumerate() {
                out.push((
                    RegionRef {
                        board: b.addr,
                        region: i as u8,
                    },
                    s.lease,
                    s.pending.map(|(t, r)| (t.as_nanos(), r)),
                ));
            }
        }
        out
    }

    /// Applies one trace event, returning the decisions it produced.
    /// Events must arrive in non-decreasing time order.
    pub fn apply(&mut self, ev: &LeaseEvent) -> Vec<Decision> {
        let start = self.decisions.len();
        self.advance_to(ev.at);
        match &ev.kind {
            LeaseEventKind::Request {
                req,
                tenant,
                class,
                alms,
                preemptible,
                caps,
            } => {
                let _ = self.request(ev.at, *req, *tenant, *class, *alms, *preemptible, *caps);
            }
            LeaseEventKind::Release { req } => {
                let _ = self.release(ev.at, *req);
            }
            LeaseEventKind::BoardDown { board } => {
                let _ = self.board_down(ev.at, *board);
            }
            LeaseEventKind::BoardUp { board } => {
                let _ = self.board_up(ev.at, *board);
            }
        }
        self.decisions[start..].to_vec()
    }

    /// Runs time forward to `now`, completing due evictions and defrag
    /// boundaries in time order. Called automatically by [`apply`];
    /// public so the driver can settle trailing evictions at trace end.
    ///
    /// [`apply`]: ElasticScheduler::apply
    pub fn advance_to(&mut self, now: SimTime) {
        loop {
            let next_evict = self
                .boards
                .iter()
                .flat_map(|b| b.slots.iter())
                .filter_map(|s| s.pending.map(|(t, _)| t))
                .min();
            let next_defrag = if self.cfg.defrag_period.as_nanos() == 0 {
                None
            } else {
                Some(SimTime::from_nanos(
                    (self.defrag_done + 1) * self.cfg.defrag_period.as_nanos(),
                ))
            };
            // Evictions at time T complete before a defrag boundary at T.
            let step = match (next_evict, next_defrag) {
                (Some(e), Some(d)) if e <= d => (e, true),
                (Some(e), None) => (e, true),
                (_, Some(d)) => (d, false),
                (None, None) => break,
            };
            if step.0 > now {
                break;
            }
            self.account(step.0);
            if step.1 {
                self.complete_evictions(step.0);
            } else {
                self.defrag_done = step.0.as_nanos() / self.cfg.defrag_period.as_nanos();
                self.defrag(step.0);
            }
        }
        self.account(now);
    }

    fn account(&mut self, to: SimTime) {
        if to > self.clock {
            let dt = (to.as_nanos() - self.clock.as_nanos()) as u128;
            self.util_integral += self.used_alms() as u128 * dt;
            self.clock = to;
        }
    }

    fn push(&mut self, d: Decision) {
        self.fingerprint = fingerprint_decision(self.fingerprint, &d);
        self.decisions.push(d);
    }

    /// Submits a request directly (the [`apply`] path for
    /// [`LeaseEventKind::Request`]).
    ///
    /// # Errors
    ///
    /// [`ElasticError::RequestTooLarge`] when no region on any up board
    /// can ever hold `alms`; the request is also recorded as a
    /// [`Decision::Reject`].
    ///
    /// [`apply`]: ElasticScheduler::apply
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &mut self,
        now: SimTime,
        req: u64,
        tenant: TenantId,
        class: TenantClass,
        alms: u32,
        preemptible: bool,
        caps: TenantCaps,
    ) -> Result<(), ElasticError> {
        self.advance_to(now);
        let largest = self
            .boards
            .iter()
            .filter(|b| b.up)
            .flat_map(|b| b.slots.iter())
            .map(|s| s.alms)
            .max()
            .unwrap_or(0);
        if alms > largest {
            self.rejects += 1;
            self.req_state.insert(req, ReqState::Done);
            self.push(Decision::Reject { req });
            return Err(ElasticError::RequestTooLarge { alms, largest });
        }
        // Spot is always preemptible; guaranteed never is.
        let preemptible = match class {
            TenantClass::Guaranteed => false,
            TenantClass::Standard => preemptible,
            TenantClass::Spot => true,
        };
        let w = Waiting {
            req,
            tenant,
            class,
            alms,
            preemptible,
            caps,
            arrived: now,
        };
        if let Some(slot) = self.best_fit_free(alms) {
            self.grant(now, &w, slot);
        } else {
            self.req_state.insert(req, ReqState::Queued);
            self.queue.push(w.clone());
            self.push(Decision::Queue { req });
            self.try_preempt_for(now, &w);
        }
        self.reclaim_if_drained(now);
        Ok(())
    }

    /// Releases the lease created by request `req` (or cancels the
    /// still-queued request).
    ///
    /// # Errors
    ///
    /// [`ElasticError::UnknownLease`] when `req` was never submitted.
    pub fn release(&mut self, now: SimTime, req: u64) -> Result<(), ElasticError> {
        self.advance_to(now);
        match self.req_state.get(&req).copied() {
            None => {
                self.push(Decision::Release { req, lease: None });
                Err(ElasticError::UnknownLease(req))
            }
            Some(ReqState::Queued) => {
                self.queue.retain(|w| w.req != req);
                self.req_state.insert(req, ReqState::Done);
                // Drop any reservation an eviction made for this request;
                // the eviction itself still completes (the victim is
                // already checkpointing).
                for b in &mut self.boards {
                    for s in &mut b.slots {
                        if let Some((t, Some(r))) = s.pending {
                            if r == req {
                                s.pending = Some((t, None));
                            }
                        }
                    }
                }
                self.push(Decision::Release { req, lease: None });
                Ok(())
            }
            Some(ReqState::Active(id)) => {
                self.req_state.insert(req, ReqState::Done);
                let lease = self
                    .leases
                    .remove(&id)
                    .ok_or(ElasticError::UnknownLease(id))?;
                if let Some(slot) = self.slot_mut(lease.at) {
                    slot.lease = None;
                }
                self.push(Decision::Release {
                    req,
                    lease: Some(id),
                });
                self.grant_queued(now);
                Ok(())
            }
            Some(ReqState::Done) => {
                self.push(Decision::Release { req, lease: None });
                Ok(())
            }
        }
    }

    /// Directly preempts one lease (test/diagnostic path; trace-driven
    /// preemption happens inside [`request`]).
    ///
    /// # Errors
    ///
    /// [`ElasticError::UnknownLease`] / [`ElasticError::NotPreemptible`].
    ///
    /// [`request`]: ElasticScheduler::request
    pub fn preempt(&mut self, now: SimTime, lease: u64) -> Result<(), ElasticError> {
        self.advance_to(now);
        let l = self
            .leases
            .get(&lease)
            .ok_or(ElasticError::UnknownLease(lease))?;
        if !l.preemptible {
            return Err(ElasticError::NotPreemptible(lease));
        }
        let at = l.at;
        let due = now + self.cfg.eviction_window;
        if let Some(slot) = self.slot_mut(at) {
            if slot.pending.is_none() {
                slot.pending = Some((due, None));
            }
        }
        self.preemptions += 1;
        self.push(Decision::Reclaim { victim: lease, at });
        Ok(())
    }

    /// Reclaims one spot lease to refill the free pool (the explicit
    /// form of the automatic low-water reclamation).
    ///
    /// # Errors
    ///
    /// [`ElasticError::SpotPoolEmpty`] when no spot lease is live.
    pub fn reclaim_spot(&mut self, now: SimTime) -> Result<u64, ElasticError> {
        self.advance_to(now);
        let victim = self
            .spot_victims()
            .first()
            .copied()
            .ok_or(ElasticError::SpotPoolEmpty)?;
        self.start_reclaim(now, victim);
        Ok(victim)
    }

    /// Marks a board down; leases on it are lost immediately.
    ///
    /// # Errors
    ///
    /// [`ElasticError::UnknownBoard`] for unregistered boards.
    pub fn board_down(&mut self, now: SimTime, board: NodeAddr) -> Result<(), ElasticError> {
        self.advance_to(now);
        let idx = *self
            .board_index
            .get(&board)
            .ok_or(ElasticError::UnknownBoard(board))?;
        self.boards[idx].up = false;
        let mut lost = Vec::new();
        for s in &mut self.boards[idx].slots {
            if let Some(id) = s.lease.take() {
                lost.push(id);
            }
            // Reserved requests go back to plain queued (they were never
            // removed from the queue).
            s.pending = None;
        }
        lost.sort_unstable();
        for id in &lost {
            if let Some(l) = self.leases.remove(id) {
                self.req_state.insert(l.req, ReqState::Done);
            }
        }
        self.lost_leases += lost.len() as u64;
        self.push(Decision::BoardDown { board, lost });
        // Reservations on the dead board vanished with it; queued
        // requests that were counting on them must re-arm preemption or
        // their priority inversion becomes unbounded.
        self.repreempt_queued(now);
        Ok(())
    }

    /// Re-attempts preemption for every queued request that holds no
    /// reservation and fits no free region, strongest class first — the
    /// recovery path after a board crash drops in-flight reservations.
    fn repreempt_queued(&mut self, now: SimTime) {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].req));
        for i in order {
            let w = self.queue[i].clone();
            let reserved = self
                .boards
                .iter()
                .flat_map(|b| b.slots.iter())
                .any(|s| matches!(s.pending, Some((_, Some(r))) if r == w.req));
            if reserved || self.best_fit_free(w.alms).is_some() {
                continue;
            }
            self.try_preempt_for(now, &w);
        }
    }

    /// Marks a board back up, all regions free.
    ///
    /// # Errors
    ///
    /// [`ElasticError::UnknownBoard`] for unregistered boards.
    pub fn board_up(&mut self, now: SimTime, board: NodeAddr) -> Result<(), ElasticError> {
        self.advance_to(now);
        let idx = *self
            .board_index
            .get(&board)
            .ok_or(ElasticError::UnknownBoard(board))?;
        self.boards[idx].up = true;
        self.push(Decision::BoardUp { board });
        self.grant_queued(now);
        Ok(())
    }

    // ----- internals ------------------------------------------------

    fn slot_mut(&mut self, at: RegionRef) -> Option<&mut Slot> {
        let idx = *self.board_index.get(&at.board)?;
        self.boards[idx].slots.get_mut(at.region as usize)
    }

    /// Smallest free, unreserved region on an up board that fits `alms`;
    /// ties by registration order then region index.
    fn best_fit_free(&self, alms: u32) -> Option<RegionRef> {
        let mut best: Option<(u32, RegionRef)> = None;
        for b in self.boards.iter().filter(|b| b.up) {
            for (i, s) in b.slots.iter().enumerate() {
                if s.lease.is_none() && s.pending.is_none() && s.alms >= alms {
                    let r = RegionRef {
                        board: b.addr,
                        region: i as u8,
                    };
                    if best.is_none_or(|(sz, _)| s.alms < sz) {
                        best = Some((s.alms, r));
                    }
                }
            }
        }
        best.map(|(_, r)| r)
    }

    fn grant(&mut self, now: SimTime, w: &Waiting, at: RegionRef) {
        let id = self.next_lease;
        self.next_lease += 1;
        let lease = RegionLease {
            id,
            req: w.req,
            tenant: w.tenant,
            class: w.class,
            alms: w.alms,
            preemptible: w.preemptible,
            caps: w.caps,
            at,
        };
        if let Some(slot) = self.slot_mut(at) {
            slot.lease = Some(id);
        }
        self.leases.insert(id, lease);
        self.req_state.insert(w.req, ReqState::Active(id));
        self.grants += 1;
        let waited_ns = now.as_nanos().saturating_sub(w.arrived.as_nanos());
        self.wait_ns[w.class.rank() as usize].record(waited_ns);
        self.push(Decision::Grant {
            req: w.req,
            lease: id,
            at,
            waited_ns,
        });
    }

    /// Grants queued requests that now fit, strongest class first, then
    /// arrival order; requests that still don't fit are skipped (no
    /// head-of-line blocking across sizes).
    fn grant_queued(&mut self, now: SimTime) {
        loop {
            let mut pick: Option<(usize, RegionRef)> = None;
            let mut order: Vec<usize> = (0..self.queue.len()).collect();
            order.sort_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].req));
            for i in order {
                if let Some(at) = self.best_fit_free(self.queue[i].alms) {
                    pick = Some((i, at));
                    break;
                }
            }
            let Some((i, at)) = pick else { break };
            let w = self.queue.remove(i);
            self.grant(now, &w, at);
        }
    }

    /// Tries to arrange a preemption for a just-queued request: evict the
    /// weakest preemptible lease of a strictly lower class, in the
    /// smallest sufficient region; ties by lease id.
    fn try_preempt_for(&mut self, now: SimTime, w: &Waiting) {
        // Key order: weakest class first (max rank), then smallest
        // sufficient region, then lowest lease id.
        type VictimKey = (core::cmp::Reverse<u8>, u32, u64);
        let mut best: Option<(VictimKey, u64)> = None;
        for l in self.leases.values() {
            if !l.preemptible || l.class.rank() <= w.class.rank() {
                continue;
            }
            let Some(idx) = self.board_index.get(&l.at.board) else {
                continue;
            };
            let b = &self.boards[*idx];
            if !b.up {
                continue;
            }
            let slot = &b.slots[l.at.region as usize];
            if slot.pending.is_some() || slot.alms < w.alms {
                continue;
            }
            let key = (core::cmp::Reverse(l.class.rank()), slot.alms, l.id);
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, l.id));
            }
        }
        let Some((_, victim_id)) = best else {
            return;
        };
        let Some(at) = self.leases.get(&victim_id).map(|l| l.at) else {
            return;
        };
        let due = now + self.cfg.eviction_window;
        if let Some(slot) = self.slot_mut(at) {
            slot.pending = Some((due, Some(w.req)));
        }
        self.preemptions += 1;
        self.push(Decision::Evict {
            victim: victim_id,
            for_req: w.req,
            at,
        });
    }

    /// Completes every eviction due exactly at `t`, in board/region
    /// order; freed regions go to their reserved request first, then the
    /// general queue.
    fn complete_evictions(&mut self, t: SimTime) {
        let mut freed: Vec<(RegionRef, Option<u64>)> = Vec::new();
        for b in &mut self.boards {
            for (i, s) in b.slots.iter_mut().enumerate() {
                if let Some((due, reserved)) = s.pending {
                    if due == t {
                        s.pending = None;
                        s.lease = None;
                        freed.push((
                            RegionRef {
                                board: b.addr,
                                region: i as u8,
                            },
                            reserved,
                        ));
                    }
                }
            }
        }
        for (at, reserved) in &freed {
            // The victim lease dies now (it kept running through the
            // window to checkpoint).
            let dead: Vec<u64> = self
                .leases
                .values()
                .filter(|l| l.at == *at)
                .map(|l| l.id)
                .collect();
            for id in dead {
                if let Some(l) = self.leases.remove(&id) {
                    self.req_state.insert(l.req, ReqState::Done);
                }
            }
            if let Some(req) = reserved {
                if let Some(pos) = self.queue.iter().position(|w| w.req == *req) {
                    let w = self.queue.remove(pos);
                    self.grant(t, &w, *at);
                    continue;
                }
            }
        }
        if !freed.is_empty() {
            self.grant_queued(t);
            // A reserved grant may have seated a lower-class lease while
            // a stronger request kept waiting; re-arm its preemption so
            // the inversion stays bounded by one eviction window.
            self.repreempt_queued(t);
        }
    }

    /// Spot leases eligible for reclamation, largest region first, ties
    /// by lease id.
    fn spot_victims(&self) -> Vec<u64> {
        let mut v: Vec<(u32, u64)> = self
            .leases
            .values()
            .filter(|l| l.class == TenantClass::Spot)
            .filter_map(|l| {
                let idx = *self.board_index.get(&l.at.board)?;
                let b = &self.boards[idx];
                if !b.up {
                    return None;
                }
                let slot = &b.slots[l.at.region as usize];
                if slot.pending.is_some() {
                    return None;
                }
                Some((slot.alms, l.id))
            })
            .collect();
        v.sort_by_key(|&(alms, id)| (core::cmp::Reverse(alms), id));
        v.into_iter().map(|(_, id)| id).collect()
    }

    fn start_reclaim(&mut self, now: SimTime, victim: u64) {
        let Some(at) = self.leases.get(&victim).map(|l| l.at) else {
            return;
        };
        let due = now + self.cfg.eviction_window;
        if let Some(slot) = self.slot_mut(at) {
            slot.pending = Some((due, None));
        }
        self.reclamations += 1;
        self.push(Decision::Reclaim { victim, at });
    }

    /// Automatic reclamation: keep `spot_reserve_permille` of the pool
    /// free or freeing; counts in-flight evictions so one shortfall does
    /// not evict every spot lease at once.
    fn reclaim_if_drained(&mut self, now: SimTime) {
        if self.cfg.spot_reserve_permille == 0 {
            return;
        }
        loop {
            let pool = self.pool_alms();
            if pool == 0 {
                return;
            }
            let freeing: u64 = self
                .boards
                .iter()
                .filter(|b| b.up)
                .flat_map(|b| b.slots.iter())
                .filter(|s| s.lease.is_none() || s.pending.is_some())
                .map(|s| s.alms as u64)
                .sum();
            if freeing * 1000 >= pool * self.cfg.spot_reserve_permille as u64 {
                return;
            }
            let Some(victim) = self.spot_victims().first().copied() else {
                return;
            };
            self.start_reclaim(now, victim);
        }
    }

    /// Best-fit-decreasing repack of live leases across up boards;
    /// migrates only leases whose assignment changes, in lease-id order.
    /// Regions mid-eviction keep their occupant and reservation.
    fn defrag(&mut self, now: SimTime) {
        // Candidate slots: up, not mid-eviction.
        let mut slots: Vec<(u32, RegionRef)> = Vec::new();
        for b in self.boards.iter().filter(|b| b.up) {
            for (i, s) in b.slots.iter().enumerate() {
                if s.pending.is_none() {
                    slots.push((
                        s.alms,
                        RegionRef {
                            board: b.addr,
                            region: i as u8,
                        },
                    ));
                }
            }
        }
        // Movable leases, largest demand first.
        let mut by_size: Vec<(u32, u64)> = self
            .leases
            .values()
            .filter(|l| slots.iter().any(|(_, r)| *r == l.at))
            .map(|l| (l.alms, l.id))
            .collect();
        by_size.sort_by_key(|&(alms, id)| (core::cmp::Reverse(alms), id));
        // Assign each lease the smallest fitting slot, in registration
        // order among equals.
        let mut taken = vec![false; slots.len()];
        let mut target: BTreeMap<u64, RegionRef> = BTreeMap::new();
        for (alms, id) in &by_size {
            let mut best: Option<(u32, usize)> = None;
            for (i, (sz, _)) in slots.iter().enumerate() {
                if !taken[i] && *sz >= *alms && best.is_none_or(|(bsz, _)| *sz < bsz) {
                    best = Some((*sz, i));
                }
            }
            if let Some((_, i)) = best {
                taken[i] = true;
                target.insert(*id, slots[i].1);
            }
        }
        // Apply moves in lease-id order.
        let moves: Vec<(u64, RegionRef, RegionRef)> = target
            .iter()
            .filter_map(|(id, to)| {
                let from = self.leases.get(id)?.at;
                (from != *to).then_some((*id, from, *to))
            })
            .collect();
        // Two-phase apply: clear every vacated slot before occupying any
        // target, so overlapping move chains (A into B's old slot while B
        // moves on) never wipe a freshly placed lease.
        for &(_, from, _) in &moves {
            if let Some(slot) = self.slot_mut(from) {
                slot.lease = None;
            }
        }
        for (id, from, to) in moves {
            if let Some(slot) = self.slot_mut(to) {
                slot.lease = Some(id);
            }
            if let Some(l) = self.leases.get_mut(&id) {
                l.at = to;
                if self.debug_defrag_drop_caps {
                    l.caps = TenantCaps {
                        er_mbps: 0,
                        ltl_credits: 0,
                    };
                }
            }
            self.migrations += 1;
            self.push(Decision::Migrate {
                lease: id,
                from,
                to,
            });
        }
        // Consolidation may have opened a fitting region — and may have
        // displaced a small preemptible lease into a large one, so
        // stranded waiters also re-arm preemption.
        self.grant_queued(now);
        self.repreempt_queued(now);
    }
}

/// Folds one decision into an FNV-1a hash (shared with the reference
/// scheduler so fingerprints compare across implementations).
pub fn fingerprint_decision(hash: u64, d: &Decision) -> u64 {
    fn region(hash: u64, r: RegionRef) -> u64 {
        let h = fnv_fold(hash, &r.board.as_u32().to_le_bytes());
        fnv_fold(h, &[r.region])
    }
    match d {
        Decision::Grant {
            req,
            lease,
            at,
            waited_ns,
        } => {
            let h = fnv_fold(hash, b"G");
            let h = fnv_fold(h, &req.to_le_bytes());
            let h = fnv_fold(h, &lease.to_le_bytes());
            let h = region(h, *at);
            fnv_fold(h, &waited_ns.to_le_bytes())
        }
        Decision::Queue { req } => fnv_fold(fnv_fold(hash, b"Q"), &req.to_le_bytes()),
        Decision::Evict {
            victim,
            for_req,
            at,
        } => {
            let h = fnv_fold(hash, b"E");
            let h = fnv_fold(h, &victim.to_le_bytes());
            let h = fnv_fold(h, &for_req.to_le_bytes());
            region(h, *at)
        }
        Decision::Reclaim { victim, at } => {
            let h = fnv_fold(hash, b"C");
            let h = fnv_fold(h, &victim.to_le_bytes());
            region(h, *at)
        }
        Decision::Migrate { lease, from, to } => {
            let h = fnv_fold(hash, b"M");
            let h = fnv_fold(h, &lease.to_le_bytes());
            let h = region(h, *from);
            region(h, *to)
        }
        Decision::Reject { req } => fnv_fold(fnv_fold(hash, b"X"), &req.to_le_bytes()),
        Decision::Release { req, lease } => {
            let h = fnv_fold(fnv_fold(hash, b"R"), &req.to_le_bytes());
            match lease {
                Some(id) => fnv_fold(h, &id.to_le_bytes()),
                None => fnv_fold(h, b"-"),
            }
        }
        Decision::BoardDown { board, lost } => {
            let mut h = fnv_fold(hash, b"D");
            h = fnv_fold(h, &board.as_u32().to_le_bytes());
            for id in lost {
                h = fnv_fold(h, &id.to_le_bytes());
            }
            h
        }
        Decision::BoardUp { board } => {
            fnv_fold(fnv_fold(hash, b"U"), &board.as_u32().to_le_bytes())
        }
    }
}

impl MetricSource for ElasticScheduler {
    fn metrics(&self, m: &mut MetricVisitor<'_>) {
        m.counter("grants", self.grants);
        m.counter("preemptions", self.preemptions);
        m.counter("reclamations", self.reclamations);
        m.counter("migrations", self.migrations);
        m.counter("rejects", self.rejects);
        m.counter("lost_leases", self.lost_leases);
        m.gauge("queue_len", self.queue.len() as f64);
        m.gauge("live_leases", self.leases.len() as f64);
        m.gauge(
            "avg_utilization_permille",
            self.avg_utilization_permille() as f64,
        );
        for class in TenantClass::ALL {
            m.histogram(
                &format!("wait_ns_{}", class.label()),
                &self.wait_ns[class.rank() as usize],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> TenantCaps {
        TenantCaps {
            er_mbps: 10_000,
            ltl_credits: 64,
        }
    }

    fn board(h: u16) -> NodeAddr {
        NodeAddr::new(0, 0, h)
    }

    /// Two boards: [10k, 20k] and [30k].
    fn sched() -> ElasticScheduler {
        let mut s = ElasticScheduler::new(ElasticConfig {
            eviction_window: SimDuration::from_millis(100),
            defrag_period: SimDuration::from_secs(1),
            spot_reserve_permille: 0,
        });
        s.add_board(board(1), &[10_000, 20_000]).unwrap();
        s.add_board(board(2), &[30_000]).unwrap();
        s
    }

    fn req(req: u64, class: TenantClass, alms: u32, preemptible: bool) -> LeaseEventKind {
        LeaseEventKind::Request {
            req,
            tenant: TenantId(req as u32),
            class,
            alms,
            preemptible,
            caps: caps(),
        }
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_region() {
        let mut s = sched();
        let d = s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Standard, 9_000, false),
        });
        assert!(matches!(
            d[0],
            Decision::Grant {
                at: RegionRef { region: 0, .. },
                ..
            }
        ));
        // Next 9k request: region 0 taken, best fit is the 20k region.
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_micros(1),
            kind: req(1, TenantClass::Standard, 9_000, false),
        });
        assert!(
            matches!(d[0], Decision::Grant { at, .. } if at.region == 1 && at.board == board(1))
        );
    }

    #[test]
    fn preemption_is_bounded_and_grants_after_window() {
        let mut s = sched();
        // Fill everything with preemptible spot.
        for (i, alms) in [(0u64, 10_000u32), (1, 20_000), (2, 30_000)] {
            let d = s.apply(&LeaseEvent {
                at: SimTime::ZERO,
                kind: req(i, TenantClass::Spot, alms, true),
            });
            assert!(matches!(d[0], Decision::Grant { .. }));
        }
        // Guaranteed 15k arrives: queues, evicts the spot in the 20k
        // region (smallest sufficient; spot beats standard as victim).
        let t0 = SimTime::from_millis(10);
        let d = s.apply(&LeaseEvent {
            at: t0,
            kind: req(3, TenantClass::Guaranteed, 15_000, false),
        });
        assert_eq!(d[0], Decision::Queue { req: 3 });
        assert!(matches!(
            d[1],
            Decision::Evict {
                victim: 1,
                for_req: 3,
                ..
            }
        ));
        // After the eviction window, the grant lands automatically.
        s.advance_to(t0 + SimDuration::from_millis(100));
        let last = s.decisions().last().unwrap().clone();
        assert!(matches!(last, Decision::Grant { req: 3, waited_ns, .. }
                if waited_ns == SimDuration::from_millis(100).as_nanos()));
        assert!(s.queued_reqs().is_empty());
    }

    #[test]
    fn guaranteed_is_never_preempted() {
        let mut s = sched();
        for (i, alms) in [(0u64, 10_000u32), (1, 20_000), (2, 30_000)] {
            // `preemptible: true` is ignored for guaranteed.
            s.apply(&LeaseEvent {
                at: SimTime::ZERO,
                kind: req(i, TenantClass::Guaranteed, alms, true),
            });
        }
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_millis(1),
            kind: req(3, TenantClass::Guaranteed, 5_000, false),
        });
        assert_eq!(d, vec![Decision::Queue { req: 3 }], "no eviction");
    }

    #[test]
    fn release_frees_and_backfills_queue() {
        let mut s = sched();
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Standard, 25_000, false),
        });
        s.apply(&LeaseEvent {
            at: SimTime::from_micros(1),
            kind: req(1, TenantClass::Standard, 25_000, false),
        });
        assert_eq!(s.queued_reqs(), vec![1]);
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_micros(2),
            kind: LeaseEventKind::Release { req: 0 },
        });
        assert!(matches!(
            d[0],
            Decision::Release {
                req: 0,
                lease: Some(0)
            }
        ));
        assert!(matches!(d[1], Decision::Grant { req: 1, .. }));
    }

    #[test]
    fn board_down_loses_leases_and_board_up_restores_capacity() {
        let mut s = sched();
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Standard, 25_000, false),
        });
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_millis(1),
            kind: LeaseEventKind::BoardDown { board: board(2) },
        });
        assert_eq!(
            d[0],
            Decision::BoardDown {
                board: board(2),
                lost: vec![0]
            }
        );
        // 25k no longer fits anywhere while board 2 is down.
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_millis(2),
            kind: req(1, TenantClass::Standard, 25_000, false),
        });
        assert_eq!(d[0], Decision::Reject { req: 1 });
        let d = s.apply(&LeaseEvent {
            at: SimTime::from_millis(3),
            kind: LeaseEventKind::BoardUp { board: board(2) },
        });
        assert_eq!(d[0], Decision::BoardUp { board: board(2) });
    }

    #[test]
    fn defrag_consolidates_and_preserves_leases() {
        let mut s = sched();
        // A 9k lease sits in the 30k region (placed there after the
        // smaller regions fill), then the small-region leases go away —
        // defrag should move it into the 10k region.
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Standard, 9_500, false),
        });
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(1, TenantClass::Standard, 18_000, false),
        });
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(2, TenantClass::Standard, 9_000, false),
        });
        assert_eq!(s.leases.get(&2).unwrap().at.board, board(2));
        s.apply(&LeaseEvent {
            at: SimTime::from_millis(1),
            kind: LeaseEventKind::Release { req: 0 },
        });
        let before: Vec<(u64, TenantId, u32, TenantCaps)> = s
            .leases()
            .map(|l| (l.id, l.tenant, l.alms, l.caps))
            .collect();
        s.advance_to(SimTime::from_secs(1));
        let moved = s
            .decisions()
            .iter()
            .any(|d| matches!(d, Decision::Migrate { lease: 2, .. }));
        assert!(moved, "defrag migrated the mis-packed lease");
        let after: Vec<(u64, TenantId, u32, TenantCaps)> = s
            .leases()
            .map(|l| (l.id, l.tenant, l.alms, l.caps))
            .collect();
        assert_eq!(before, after, "identity/caps preserved across defrag");
    }

    #[test]
    fn planted_defrag_bug_drops_caps() {
        let mut s = sched();
        s.set_debug_defrag_drop_caps(true);
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Standard, 9_500, false),
        });
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(1, TenantClass::Standard, 9_000, false),
        });
        s.apply(&LeaseEvent {
            at: SimTime::from_millis(1),
            kind: LeaseEventKind::Release { req: 0 },
        });
        s.advance_to(SimTime::from_secs(1));
        let l = s.leases().next().unwrap();
        assert_eq!(l.caps.er_mbps, 0, "bug visibly corrupts caps");
    }

    #[test]
    fn spot_reserve_reclaims_largest_spot_first() {
        let mut s = ElasticScheduler::new(ElasticConfig {
            eviction_window: SimDuration::from_millis(100),
            defrag_period: SimDuration::ZERO,
            spot_reserve_permille: 300,
        });
        s.add_board(board(1), &[10_000, 20_000, 30_000]).unwrap();
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(0, TenantClass::Spot, 28_000, true),
        });
        s.apply(&LeaseEvent {
            at: SimTime::ZERO,
            kind: req(1, TenantClass::Spot, 18_000, true),
        });
        // Free share now 10k/60k < 30% → reclaim the largest spot.
        let reclaimed = s
            .decisions()
            .iter()
            .any(|d| matches!(d, Decision::Reclaim { victim: 0, .. }));
        assert!(reclaimed, "decisions: {:?}", s.decisions());
    }

    #[test]
    fn identical_traces_produce_identical_fingerprints() {
        let run = || {
            let mut s = sched();
            for i in 0..20u64 {
                s.apply(&LeaseEvent {
                    at: SimTime::from_millis(i * 7),
                    kind: req(
                        i,
                        TenantClass::ALL[(i % 3) as usize],
                        5_000 + (i as u32 * 1_733) % 24_000,
                        i % 2 == 0,
                    ),
                });
                if i % 3 == 2 {
                    s.apply(&LeaseEvent {
                        at: SimTime::from_millis(i * 7 + 3),
                        kind: LeaseEventKind::Release { req: i - 2 },
                    });
                }
            }
            s.advance_to(SimTime::from_secs(2));
            (s.fingerprint(), s.decisions().len())
        };
        assert_eq!(run(), run());
    }
}
