//! Service Managers: per-service controllers that assemble leased FPGAs
//! into hardware Components, balance client load across them, and handle
//! failures by requesting replacements from the Resource Manager.

use dcnet::NodeAddr;

use crate::rm::{AllocError, Constraints, Lease, LeaseId, ResourceManager};

/// An instance of a hardware service: one or more FPGAs plus the
/// constraints they were allocated under (the paper's "Component").
#[derive(Debug, Clone)]
pub struct HwComponent {
    /// Leases backing this component.
    pub leases: Vec<Lease>,
    /// Constraints it was allocated under.
    pub constraints: Constraints,
}

impl HwComponent {
    /// The FPGAs in this component.
    pub fn addrs(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        self.leases.iter().map(|l| l.addr)
    }
}

/// A per-service manager holding components and load-balancing clients
/// across them.
#[derive(Debug)]
pub struct ServiceManager {
    name: String,
    components: Vec<HwComponent>,
    rr: usize,
    replacements: u64,
}

impl ServiceManager {
    /// Creates a manager for the named service.
    pub fn new(name: &str) -> ServiceManager {
        ServiceManager {
            name: name.to_string(),
            components: Vec::new(),
            rr: 0,
            replacements: 0,
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grows the service by `count` single-FPGA components.
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::InsufficientCapacity`] from the RM; on
    /// error nothing is allocated.
    pub fn grow(
        &mut self,
        rm: &mut ResourceManager,
        count: usize,
        constraints: &Constraints,
    ) -> Result<(), AllocError> {
        let leases = rm.request(&self.name, count, constraints)?;
        for lease in leases {
            self.components.push(HwComponent {
                leases: vec![lease],
                constraints: constraints.clone(),
            });
        }
        Ok(())
    }

    /// Allocates one multi-FPGA component (e.g. an 8-FPGA ranking
    /// pipeline).
    ///
    /// # Errors
    ///
    /// Propagates allocation failure; nothing is allocated on error.
    pub fn grow_component(
        &mut self,
        rm: &mut ResourceManager,
        fpgas: usize,
        constraints: &Constraints,
    ) -> Result<&HwComponent, AllocError> {
        let leases = rm.request(&self.name, fpgas, constraints)?;
        self.components.push(HwComponent {
            leases,
            constraints: constraints.clone(),
        });
        // Unreachable after the push above; mapped to a typed error rather
        // than panicking so lease bookkeeping never aborts the control
        // plane.
        self.components
            .last()
            .ok_or(AllocError::InsufficientCapacity)
    }

    /// Shrinks the service by releasing `count` components back to the
    /// pool (most recently allocated first).
    pub fn shrink(&mut self, rm: &mut ResourceManager, count: usize) {
        for _ in 0..count {
            let Some(comp) = self.components.pop() else {
                return;
            };
            for lease in comp.leases {
                let _ = rm.release(lease.id);
            }
        }
    }

    /// All FPGA endpoints across components (what clients connect to).
    pub fn endpoints(&self) -> Vec<NodeAddr> {
        self.components.iter().flat_map(|c| c.addrs()).collect()
    }

    /// Round-robin load balancing: the endpoint the next client should
    /// use, or `None` if the service has no capacity.
    pub fn next_endpoint(&mut self) -> Option<NodeAddr> {
        let endpoints = self.endpoints();
        if endpoints.is_empty() {
            return None;
        }
        let pick = endpoints[self.rr % endpoints.len()];
        self.rr += 1;
        Some(pick)
    }

    /// Components currently held.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Replacements performed after failures.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Handles a node failure reported by the RM (or detected via LTL
    /// timeouts): drops the affected lease and immediately requests a
    /// replacement under the same constraints — "failing nodes are removed
    /// from the pool with replacements quickly added".
    ///
    /// # Errors
    ///
    /// Propagates [`AllocError::InsufficientCapacity`] when no replacement
    /// is available; the component is left degraded in that case.
    pub fn handle_failure(
        &mut self,
        rm: &mut ResourceManager,
        failed_lease: LeaseId,
    ) -> Result<Option<NodeAddr>, AllocError> {
        for comp in &mut self.components {
            if let Some(pos) = comp.leases.iter().position(|l| l.id == failed_lease) {
                comp.leases.remove(pos);
                let constraints = comp.constraints.clone();
                let mut replacement = rm.request(&self.name, 1, &constraints)?;
                // The RM's contract is all-or-nothing; an empty grant is a
                // capacity failure, not a reason to abort the service.
                let Some(lease) = replacement.pop() else {
                    return Err(AllocError::InsufficientCapacity);
                };
                let addr = lease.addr;
                comp.leases.push(lease);
                self.replacements += 1;
                return Ok(Some(addr));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig(n: u16) -> (ResourceManager, ServiceManager) {
        let mut rm = ResourceManager::new();
        for h in 0..n {
            rm.register(NodeAddr::new(0, h / 24, h % 24));
        }
        (rm, ServiceManager::new("test-svc"))
    }

    #[test]
    fn grow_and_shrink_track_pool() {
        let (mut rm, mut sm) = rig(10);
        sm.grow(&mut rm, 6, &Constraints::default()).unwrap();
        assert_eq!(sm.component_count(), 6);
        assert_eq!(rm.unallocated(), 4);
        sm.shrink(&mut rm, 2);
        assert_eq!(sm.component_count(), 4);
        assert_eq!(rm.unallocated(), 6);
    }

    #[test]
    fn round_robin_covers_all_endpoints() {
        let (mut rm, mut sm) = rig(5);
        sm.grow(&mut rm, 3, &Constraints::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            seen.insert(sm.next_endpoint().unwrap());
        }
        assert_eq!(seen.len(), 3);
        // Wraps around.
        assert!(seen.contains(&sm.next_endpoint().unwrap()));
    }

    #[test]
    fn empty_service_has_no_endpoint() {
        let (_, mut sm) = rig(0);
        assert_eq!(sm.next_endpoint(), None);
    }

    #[test]
    fn multi_fpga_component_allocates_together() {
        let (mut rm, mut sm) = rig(10);
        let comp = sm
            .grow_component(&mut rm, 4, &Constraints::default())
            .unwrap();
        assert_eq!(comp.leases.len(), 4);
        assert_eq!(sm.endpoints().len(), 4);
        assert_eq!(sm.component_count(), 1);
    }

    #[test]
    fn failure_triggers_replacement() {
        let (mut rm, mut sm) = rig(6);
        sm.grow(&mut rm, 4, &Constraints::default()).unwrap();
        let victim = sm.endpoints()[1];
        let lease = rm.mark_failed(victim).expect("was leased");
        let replacement = sm.handle_failure(&mut rm, lease).unwrap();
        let new_addr = replacement.expect("replacement granted");
        assert_ne!(new_addr, victim);
        assert_eq!(sm.endpoints().len(), 4, "capacity restored");
        assert!(!sm.endpoints().contains(&victim));
        assert_eq!(sm.replacements(), 1);
    }

    #[test]
    fn failure_with_exhausted_pool_degrades() {
        let (mut rm, mut sm) = rig(3);
        sm.grow(&mut rm, 3, &Constraints::default()).unwrap();
        let victim = sm.endpoints()[0];
        let lease = rm.mark_failed(victim).expect("was leased");
        assert_eq!(
            sm.handle_failure(&mut rm, lease).unwrap_err(),
            AllocError::InsufficientCapacity
        );
        assert_eq!(sm.endpoints().len(), 2, "degraded but functional");
    }

    #[test]
    fn two_services_share_the_pool() {
        let mut rm = ResourceManager::new();
        for h in 0..10 {
            rm.register(NodeAddr::new(0, 0, h));
        }
        let mut a = ServiceManager::new("svc-a");
        let mut b = ServiceManager::new("svc-b");
        a.grow(&mut rm, 4, &Constraints::default()).unwrap();
        b.grow(&mut rm, 4, &Constraints::default()).unwrap();
        assert_eq!(rm.unallocated(), 2);
        // No endpoint overlap.
        let ea: std::collections::HashSet<_> = a.endpoints().into_iter().collect();
        assert!(b.endpoints().iter().all(|e| !ea.contains(e)));
        // Shrinking one service frees capacity the other can claim.
        a.shrink(&mut rm, 4);
        b.grow(&mut rm, 5, &Constraints::default()).unwrap();
        assert_eq!(b.endpoints().len(), 9);
    }
}
