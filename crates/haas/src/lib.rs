//! # haas — Hardware-as-a-Service (Section V-F, Figure 13)
//!
//! The management plane that turns the datacenter's FPGAs into a global
//! pool: a logically centralised [`ResourceManager`] tracks every FPGA and
//! hands out [`Lease`]s; per-service [`ServiceManager`]s request and
//! release leases, balance load across their [`HwComponent`]s and replace
//! failed nodes; a lightweight [`FpgaManager`] per node handles
//! configuration and status for the machine it runs on.
//!
//! On boards carved into partial-reconfiguration regions the pool becomes
//! elastic: [`ElasticScheduler`] leases individual regions to tenants with
//! priority preemption, periodic defragmentation and spot reclamation,
//! emitting a deterministic [`Decision`] log.
//!
//! # Examples
//!
//! ```
//! use dcnet::NodeAddr;
//! use haas::{Constraints, ResourceManager, ServiceManager};
//!
//! let mut rm = ResourceManager::new();
//! for h in 0..8 {
//!     rm.register(NodeAddr::new(0, 0, h));
//! }
//! let mut sm = ServiceManager::new("dnn-pool");
//! sm.grow(&mut rm, 4, &Constraints::default())?;
//! assert_eq!(sm.endpoints().len(), 4);
//! assert_eq!(rm.unallocated(), 4);
//! # Ok::<(), haas::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elastic;
mod fm;
mod health;
mod rm;
mod sm;

pub use elastic::{
    fingerprint_decision, Decision, ElasticConfig, ElasticError, ElasticScheduler, LeaseEvent,
    LeaseEventKind, PlacementRow, RegionLease, RegionRef, TenantClass,
};
pub use fm::{FpgaManager, NodeStatus};
pub use health::{DeployImage, FailureMonitor, NodeDownReport, RecoveryRecord};
pub use rm::{AllocError, Constraints, FpgaState, Lease, LeaseId, ResourceManager};
pub use sm::{HwComponent, ServiceManager};
