//! The Resource Manager: a logically centralised allocator that tracks
//! FPGA resources throughout the datacenter and provides a lease-based
//! API to Service Managers, "in a manner similar to Yarn and other job
//! schedulers".

use std::collections::HashMap;

use dcnet::NodeAddr;

/// Lease identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

/// A granted lease on one FPGA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Lease id (release handle).
    pub id: LeaseId,
    /// The leased FPGA.
    pub addr: NodeAddr,
    /// Service holding the lease.
    pub service: String,
}

/// State of one FPGA in the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaState {
    /// Available for allocation.
    Unallocated,
    /// Leased to a service.
    Leased {
        /// Holder.
        service: String,
        /// The lease.
        lease: LeaseId,
    },
    /// Removed from the pool pending repair.
    Failed,
}

/// Placement constraints for an allocation request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Require all granted FPGAs to be in this pod (bandwidth locality).
    pub pod: Option<u16>,
    /// Require all granted FPGAs to share a TOR with the requester.
    pub same_tor_as: Option<NodeAddr>,
}

impl Constraints {
    fn admits(&self, addr: NodeAddr) -> bool {
        if let Some(pod) = self.pod {
            if addr.pod != pod {
                return false;
            }
        }
        if let Some(peer) = self.same_tor_as {
            if !addr.same_tor(peer) {
                return false;
            }
        }
        true
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough unallocated FPGAs satisfying the constraints.
    InsufficientCapacity,
    /// Unknown lease id on release.
    UnknownLease,
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::InsufficientCapacity => {
                f.write_str("not enough unallocated fpgas satisfy the constraints")
            }
            AllocError::UnknownLease => f.write_str("unknown lease id"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The centralised FPGA pool.
#[derive(Debug, Default)]
pub struct ResourceManager {
    fpgas: HashMap<NodeAddr, FpgaState>,
    leases: HashMap<LeaseId, NodeAddr>,
    next_lease: u64,
    /// Registration order, for deterministic allocation.
    order: Vec<NodeAddr>,
}

impl ResourceManager {
    /// Creates an empty pool.
    pub fn new() -> ResourceManager {
        ResourceManager::default()
    }

    /// Adds an FPGA to the pool (idempotent).
    pub fn register(&mut self, addr: NodeAddr) {
        if self.fpgas.insert(addr, FpgaState::Unallocated).is_none() {
            self.order.push(addr);
        }
    }

    /// Total FPGAs known (any state).
    pub fn total(&self) -> usize {
        self.fpgas.len()
    }

    /// FPGAs currently available.
    pub fn unallocated(&self) -> usize {
        self.fpgas
            .values()
            .filter(|s| matches!(s, FpgaState::Unallocated))
            .count()
    }

    /// FPGAs currently failed.
    pub fn failed(&self) -> usize {
        self.fpgas
            .values()
            .filter(|s| matches!(s, FpgaState::Failed))
            .count()
    }

    /// State of one FPGA.
    pub fn state(&self, addr: NodeAddr) -> Option<&FpgaState> {
        self.fpgas.get(&addr)
    }

    /// Grants `count` leases to `service` under `constraints`, atomically:
    /// either all are granted or none.
    ///
    /// # Errors
    ///
    /// [`AllocError::InsufficientCapacity`] if fewer than `count` FPGAs are
    /// available under the constraints.
    pub fn request(
        &mut self,
        service: &str,
        count: usize,
        constraints: &Constraints,
    ) -> Result<Vec<Lease>, AllocError> {
        let candidates: Vec<NodeAddr> = self
            .order
            .iter()
            .copied()
            .filter(|a| {
                constraints.admits(*a) && matches!(self.fpgas.get(a), Some(FpgaState::Unallocated))
            })
            .take(count)
            .collect();
        if candidates.len() < count {
            return Err(AllocError::InsufficientCapacity);
        }
        let leases = candidates
            .into_iter()
            .map(|addr| {
                let id = LeaseId(self.next_lease);
                self.next_lease += 1;
                self.fpgas.insert(
                    addr,
                    FpgaState::Leased {
                        service: service.to_string(),
                        lease: id,
                    },
                );
                self.leases.insert(id, addr);
                Lease {
                    id,
                    addr,
                    service: service.to_string(),
                }
            })
            .collect();
        Ok(leases)
    }

    /// Releases a lease, returning the FPGA to the pool.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownLease`] if the id is not outstanding.
    pub fn release(&mut self, id: LeaseId) -> Result<(), AllocError> {
        let addr = self.leases.remove(&id).ok_or(AllocError::UnknownLease)?;
        // A failed node stays failed even if its lease is released; a node
        // missing from the map entirely (never possible via the public API)
        // is left untouched rather than panicking on the lookup.
        if matches!(self.fpgas.get(&addr), Some(FpgaState::Leased { .. })) {
            self.fpgas.insert(addr, FpgaState::Unallocated);
        }
        Ok(())
    }

    /// Marks an FPGA failed, removing it from the pool. Returns the lease
    /// that was disrupted, if any — the holding Service Manager uses it to
    /// request a replacement.
    pub fn mark_failed(&mut self, addr: NodeAddr) -> Option<LeaseId> {
        let prev = self.fpgas.insert(addr, FpgaState::Failed)?;
        match prev {
            FpgaState::Leased { lease, .. } => {
                self.leases.remove(&lease);
                Some(lease)
            }
            _ => None,
        }
    }

    /// Returns a repaired FPGA to service.
    pub fn repair(&mut self, addr: NodeAddr) {
        if matches!(self.fpgas.get(&addr), Some(FpgaState::Failed)) {
            self.fpgas.insert(addr, FpgaState::Unallocated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u16) -> ResourceManager {
        let mut rm = ResourceManager::new();
        for h in 0..n {
            rm.register(NodeAddr::new(h / 24 / 40, (h / 24) % 40, h % 24));
        }
        rm
    }

    #[test]
    fn request_and_release_roundtrip() {
        let mut rm = pool(10);
        let leases = rm.request("svc", 4, &Constraints::default()).unwrap();
        assert_eq!(leases.len(), 4);
        assert_eq!(rm.unallocated(), 6);
        for l in &leases {
            assert!(matches!(
                rm.state(l.addr),
                Some(FpgaState::Leased { service, .. }) if service == "svc"
            ));
        }
        for l in leases {
            rm.release(l.id).unwrap();
        }
        assert_eq!(rm.unallocated(), 10);
    }

    #[test]
    fn allocation_is_atomic() {
        let mut rm = pool(3);
        assert_eq!(
            rm.request("svc", 5, &Constraints::default()).unwrap_err(),
            AllocError::InsufficientCapacity
        );
        assert_eq!(rm.unallocated(), 3, "nothing leaked");
    }

    #[test]
    fn constraints_filter_by_pod() {
        let mut rm = ResourceManager::new();
        rm.register(NodeAddr::new(0, 0, 0));
        rm.register(NodeAddr::new(1, 0, 0));
        rm.register(NodeAddr::new(1, 0, 1));
        let c = Constraints {
            pod: Some(1),
            ..Constraints::default()
        };
        let leases = rm.request("svc", 2, &c).unwrap();
        assert!(leases.iter().all(|l| l.addr.pod == 1));
        assert!(rm.request("svc", 1, &c).is_err(), "pod 1 exhausted");
        assert_eq!(rm.unallocated(), 1, "pod 0 still free");
    }

    #[test]
    fn constraints_filter_by_tor() {
        let mut rm = pool(48);
        let me = NodeAddr::new(0, 1, 0);
        let c = Constraints {
            same_tor_as: Some(me),
            ..Constraints::default()
        };
        let leases = rm.request("svc", 3, &c).unwrap();
        assert!(leases.iter().all(|l| l.addr.same_tor(me)));
    }

    #[test]
    fn failure_disrupts_lease_and_removes_from_pool() {
        let mut rm = pool(4);
        let leases = rm.request("svc", 2, &Constraints::default()).unwrap();
        let victim = leases[0].addr;
        let disrupted = rm.mark_failed(victim);
        assert_eq!(disrupted, Some(leases[0].id));
        assert_eq!(rm.failed(), 1);
        // Replacement can be requested immediately.
        let replacement = rm.request("svc", 1, &Constraints::default()).unwrap();
        assert_ne!(replacement[0].addr, victim);
        // 4 nodes: 2 leased, 1 failed, 1 spare. The failed node is not
        // allocatable until repaired.
        assert_eq!(rm.unallocated(), 1);
        rm.repair(victim);
        assert_eq!(rm.unallocated(), 2);
    }

    #[test]
    fn failing_unallocated_node_disrupts_nothing() {
        let mut rm = pool(2);
        assert_eq!(rm.mark_failed(NodeAddr::new(0, 0, 1)), None);
        assert_eq!(rm.failed(), 1);
    }

    #[test]
    fn release_unknown_lease_errors() {
        let mut rm = pool(1);
        assert_eq!(
            rm.release(LeaseId(99)).unwrap_err(),
            AllocError::UnknownLease
        );
    }

    #[test]
    fn deterministic_allocation_order() {
        let mut a = pool(10);
        let mut b = pool(10);
        let la = a.request("s", 3, &Constraints::default()).unwrap();
        let lb = b.request("s", 3, &Constraints::default()).unwrap();
        assert_eq!(
            la.iter().map(|l| l.addr).collect::<Vec<_>>(),
            lb.iter().map(|l| l.addr).collect::<Vec<_>>()
        );
    }
}
