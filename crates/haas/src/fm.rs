//! The per-node FPGA Manager: "An FPGA Manager (FM) runs on each node to
//! provide configuration and status monitoring for the system."

use dcnet::NodeAddr;
use fpga::{ConfigController, Flash, Image};

/// Health of a node as reported by its FM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Configured and forwarding; reachable over the network.
    Healthy,
    /// Mid-reconfiguration.
    Configuring,
    /// Bridge down (bad image); needs a management-port power cycle.
    Unreachable,
}

/// Per-node configuration and status agent.
#[derive(Debug)]
pub struct FpgaManager {
    addr: NodeAddr,
    config: ConfigController,
    reconfigs: u64,
}

impl FpgaManager {
    /// Creates the manager for a freshly powered node (golden image).
    pub fn new(addr: NodeAddr) -> FpgaManager {
        FpgaManager {
            addr,
            config: ConfigController::power_on(Flash::new()),
            reconfigs: 0,
        }
    }

    /// The node this FM manages.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Current status.
    pub fn status(&self) -> NodeStatus {
        match self.config.state() {
            fpga::ConfigState::Reconfiguring { .. } => NodeStatus::Configuring,
            fpga::ConfigState::Running(_) if self.config.bridge_up() => NodeStatus::Healthy,
            fpga::ConfigState::Running(_) => NodeStatus::Unreachable,
        }
    }

    /// The running (or loading) image name.
    pub fn image_name(&self) -> &str {
        &self.config.image().name
    }

    /// The role compiled into the running (or loading) image.
    pub fn role_name(&self) -> &str {
        &self.config.image().role
    }

    /// Loads a service image by full reconfiguration; the caller (Service
    /// Manager) waits out the returned load time before routing traffic.
    pub fn configure(&mut self, image: Image) -> dcsim::SimDuration {
        self.reconfigs += 1;
        self.config.start_full_reconfig(image)
    }

    /// Swaps just the role via partial reconfiguration (bridge stays up).
    pub fn configure_role(&mut self, role: &str) -> dcsim::SimDuration {
        self.reconfigs += 1;
        self.config.start_partial_reconfig(role)
    }

    /// Completes an in-flight (re)configuration.
    pub fn configuration_done(&mut self) {
        self.config.finish_reconfig();
    }

    /// Management-port power cycle: always recovers to the golden image.
    pub fn power_cycle(&mut self) {
        self.config.power_cycle();
    }

    /// Reconfigurations performed.
    pub fn reconfigs(&self) -> u64 {
        self.reconfigs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_healthy_on_golden() {
        let fm = FpgaManager::new(NodeAddr::new(0, 0, 0));
        assert_eq!(fm.status(), NodeStatus::Healthy);
        assert_eq!(fm.image_name(), "golden");
    }

    #[test]
    fn configure_cycle() {
        let mut fm = FpgaManager::new(NodeAddr::new(0, 0, 0));
        let t = fm.configure(Image::application("rank-v3", "ffu+dpf"));
        assert!(t > dcsim::SimDuration::ZERO);
        assert_eq!(fm.status(), NodeStatus::Configuring);
        fm.configuration_done();
        assert_eq!(fm.status(), NodeStatus::Healthy);
        assert_eq!(fm.image_name(), "rank-v3");
        assert_eq!(fm.reconfigs(), 1);
    }

    #[test]
    fn role_swap_keeps_node_reachable() {
        let mut fm = FpgaManager::new(NodeAddr::new(0, 0, 0));
        fm.configure(Image::application("multi", "ranking"));
        fm.configuration_done();
        fm.configure_role("crypto");
        // Partial reconfig: still "configuring" but the node never drops
        // off the network, which FM reports as Configuring with bridge up.
        assert_eq!(fm.status(), NodeStatus::Configuring);
        fm.configuration_done();
        assert_eq!(fm.status(), NodeStatus::Healthy);
    }

    #[test]
    fn bad_image_then_power_cycle_recovers() {
        let mut fm = FpgaManager::new(NodeAddr::new(0, 0, 0));
        let mut bad = Image::application("buggy", "oops");
        bad.features.bridge = false;
        fm.configure(bad);
        fm.configuration_done();
        assert_eq!(fm.status(), NodeStatus::Unreachable);
        fm.power_cycle();
        assert_eq!(fm.status(), NodeStatus::Healthy);
        assert_eq!(fm.image_name(), "golden");
    }
}
