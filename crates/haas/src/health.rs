//! The Failure Monitor: the health loop closing the paper's reliability
//! story (Section VII). Clients and peer shells that observe a dead LTL
//! connection report the node here; the monitor drains it from the
//! [`ResourceManager`] pool, asks the owning [`ServiceManager`] for a
//! replacement, power-cycles nodes whose [`FpgaManager`] shows a bad
//! image (golden-image rollback), and optionally returns repaired nodes
//! to the pool after a fixed repair time.
//!
//! The monitor is a simulation component so detection latency, remap
//! time and repair time are measurable on the same clock as the faults
//! themselves.

use std::collections::BTreeMap;

use dcnet::{Msg, NodeAddr};
use dcsim::{Component, Context, SimDuration, SimTime};
use fpga::Image;

use crate::fm::{FpgaManager, NodeStatus};
use crate::rm::ResourceManager;
use crate::sm::ServiceManager;

/// "Node `addr` stopped answering" — sent to the monitor (wrapped in
/// [`Msg::custom`]) by whoever observed the failure, typically a client
/// whose LTL connection to the node was declared dead.
#[derive(Debug, Clone, Copy)]
pub struct NodeDownReport {
    /// The unresponsive node.
    pub addr: NodeAddr,
}

/// "A new application image was pushed to node `addr`" — bookkeeping for
/// deployments, so the monitor's [`FpgaManager`] view matches the fabric.
/// A bad image (bridge disabled) leaves the node [`NodeStatus::Unreachable`]
/// until a down-report triggers the golden-image power cycle.
#[derive(Debug, Clone)]
pub struct DeployImage {
    /// Target node.
    pub addr: NodeAddr,
    /// The image that was loaded.
    pub image: Image,
}

/// One handled failure: what was detected when, and how it was resolved.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// The failed node.
    pub addr: NodeAddr,
    /// When the report reached the monitor.
    pub detected_at: SimTime,
    /// Service whose lease was disrupted (`None` for unleased nodes).
    pub service: Option<String>,
    /// Replacement endpoint granted to that service, if the pool had one.
    pub replacement: Option<NodeAddr>,
    /// Whether the node needed a management-port power cycle back to the
    /// golden image.
    pub power_cycled: bool,
}

/// The health loop: RM + SMs + per-node FMs behind a single component.
pub struct FailureMonitor {
    rm: ResourceManager,
    services: Vec<ServiceManager>,
    fms: BTreeMap<NodeAddr, FpgaManager>,
    repair_after: Option<SimDuration>,
    repair_queue: Vec<NodeAddr>,
    records: Vec<RecoveryRecord>,
    duplicate_reports: u64,
    power_cycles: u64,
    repairs: u64,
}

impl FailureMonitor {
    /// Creates a monitor. With `repair_after` set, failed nodes return to
    /// the pool that long after detection; with `None` they stay out for
    /// the rest of the run.
    pub fn new(rm: ResourceManager, repair_after: Option<SimDuration>) -> FailureMonitor {
        FailureMonitor {
            rm,
            services: Vec::new(),
            fms: BTreeMap::new(),
            repair_after,
            repair_queue: Vec::new(),
            records: Vec::new(),
            duplicate_reports: 0,
            power_cycles: 0,
            repairs: 0,
        }
    }

    /// Adds a service whose leases this monitor repairs on failure.
    pub fn add_service(&mut self, sm: ServiceManager) {
        self.services.push(sm);
    }

    /// Tracks a per-node FPGA Manager (for image/power-cycle bookkeeping).
    pub fn add_fm(&mut self, fm: FpgaManager) {
        self.fms.insert(fm.addr(), fm);
    }

    /// The resource pool.
    pub fn rm(&self) -> &ResourceManager {
        &self.rm
    }

    /// Mutable pool access (setup before a run).
    pub fn rm_mut(&mut self) -> &mut ResourceManager {
        &mut self.rm
    }

    /// The managed services.
    pub fn services(&self) -> &[ServiceManager] {
        &self.services
    }

    /// Mutable service access (setup before a run).
    pub fn services_mut(&mut self) -> &mut [ServiceManager] {
        &mut self.services
    }

    /// A node's FPGA Manager, if tracked.
    pub fn fm(&self, addr: NodeAddr) -> Option<&FpgaManager> {
        self.fms.get(&addr)
    }

    /// Every failure handled so far, in detection order.
    pub fn records(&self) -> &[RecoveryRecord] {
        &self.records
    }

    /// Reports for nodes already drained (deduplicated away).
    pub fn duplicate_reports(&self) -> u64 {
        self.duplicate_reports
    }

    /// Golden-image power cycles performed.
    pub fn power_cycles(&self) -> u64 {
        self.power_cycles
    }

    /// Nodes returned to the pool after their repair time.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    fn handle_down(&mut self, addr: NodeAddr, ctx: &mut Context<'_, Msg>) {
        if matches!(self.rm.state(addr), Some(crate::rm::FpgaState::Failed)) {
            // Several observers race to report the same dead node; the
            // first one already drained it.
            self.duplicate_reports += 1;
            return;
        }
        let power_cycled = match self.fms.get_mut(&addr) {
            Some(fm) if fm.status() == NodeStatus::Unreachable => {
                // Bad image took the bridge down: roll back to golden via
                // the management port, like the paper's FM does.
                fm.power_cycle();
                self.power_cycles += 1;
                true
            }
            _ => false,
        };
        let lease = self.rm.mark_failed(addr);
        let mut service = None;
        let mut replacement = None;
        if let Some(lease) = lease {
            for sm in &mut self.services {
                match sm.handle_failure(&mut self.rm, lease) {
                    Ok(Some(new_addr)) => {
                        service = Some(sm.name().to_string());
                        replacement = Some(new_addr);
                        break;
                    }
                    Ok(None) => continue, // lease belongs to another service
                    Err(_) => {
                        // Pool exhausted: the service runs degraded.
                        service = Some(sm.name().to_string());
                        break;
                    }
                }
            }
        }
        self.records.push(RecoveryRecord {
            addr,
            detected_at: ctx.now(),
            service,
            replacement,
            power_cycled,
        });
        if let Some(repair) = self.repair_after {
            self.repair_queue.push(addr);
            ctx.timer_after(repair, self.repair_queue.len() as u64 - 1);
        }
    }

    fn handle_deploy(&mut self, addr: NodeAddr, image: Image) {
        if let Some(fm) = self.fms.get_mut(&addr) {
            // The load time is simulated by the shell's reconfiguration
            // window; here we track the resulting configuration state.
            fm.configure(image);
            fm.configuration_done();
        }
    }
}

impl Component<Msg> for FailureMonitor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Custom(any) = msg {
            match any.downcast::<NodeDownReport>() {
                Ok(report) => self.handle_down(report.addr, ctx),
                Err(any) => {
                    if let Ok(deploy) = any.downcast::<DeployImage>() {
                        self.handle_deploy(deploy.addr, deploy.image);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_, Msg>) {
        let addr = self.repair_queue[token as usize];
        self.rm.repair(addr);
        self.repairs += 1;
    }
}

impl core::fmt::Debug for FailureMonitor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FailureMonitor")
            .field("services", &self.services.len())
            .field("records", &self.records.len())
            .field("power_cycles", &self.power_cycles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::Constraints;
    use dcsim::{Engine, SimTime};

    fn monitor_with_service(nodes: u16, grown: usize) -> FailureMonitor {
        let mut rm = ResourceManager::new();
        for h in 0..nodes {
            rm.register(NodeAddr::new(0, 0, h));
        }
        let mut sm = ServiceManager::new("svc");
        sm.grow(&mut rm, grown, &Constraints::default()).unwrap();
        let mut mon = FailureMonitor::new(rm, None);
        mon.add_service(sm);
        mon
    }

    #[test]
    fn down_report_drains_and_remaps() {
        let mut e: Engine<Msg> = Engine::new(1);
        let mut mon = monitor_with_service(4, 2);
        let victim = mon.services()[0].endpoints()[0];
        for h in 0..4 {
            mon.add_fm(FpgaManager::new(NodeAddr::new(0, 0, h)));
        }
        let mon_id = e.add_component(mon);
        e.schedule(
            SimTime::from_micros(5),
            mon_id,
            Msg::custom(NodeDownReport { addr: victim }),
        );
        e.run_to_idle();
        let mon = e.component::<FailureMonitor>(mon_id).unwrap();
        assert_eq!(mon.records().len(), 1);
        let rec = &mon.records()[0];
        assert_eq!(rec.addr, victim);
        assert_eq!(rec.detected_at, SimTime::from_micros(5));
        assert_eq!(rec.service.as_deref(), Some("svc"));
        assert!(rec.replacement.is_some());
        assert!(!rec.power_cycled);
        assert_eq!(mon.rm().failed(), 1);
        assert!(!mon.services()[0].endpoints().contains(&victim));
    }

    #[test]
    fn duplicate_reports_are_deduplicated() {
        let mut e: Engine<Msg> = Engine::new(1);
        let mon = monitor_with_service(4, 2);
        let victim = mon.services()[0].endpoints()[0];
        let mon_id = e.add_component(mon);
        for i in 0..3u64 {
            e.schedule(
                SimTime::from_micros(i),
                mon_id,
                Msg::custom(NodeDownReport { addr: victim }),
            );
        }
        e.run_to_idle();
        let mon = e.component::<FailureMonitor>(mon_id).unwrap();
        assert_eq!(mon.records().len(), 1);
        assert_eq!(mon.duplicate_reports(), 2);
        assert_eq!(mon.services()[0].replacements(), 1);
    }

    #[test]
    fn bad_image_triggers_golden_rollback() {
        let mut e: Engine<Msg> = Engine::new(1);
        let mut mon = monitor_with_service(4, 2);
        let victim = mon.services()[0].endpoints()[0];
        mon.add_fm(FpgaManager::new(victim));
        let mon_id = e.add_component(mon);
        let mut bad = Image::application("buggy-v2", "rank");
        bad.features.bridge = false;
        e.schedule(
            SimTime::from_micros(1),
            mon_id,
            Msg::custom(DeployImage {
                addr: victim,
                image: bad,
            }),
        );
        e.schedule(
            SimTime::from_micros(10),
            mon_id,
            Msg::custom(NodeDownReport { addr: victim }),
        );
        e.run_to_idle();
        let mon = e.component::<FailureMonitor>(mon_id).unwrap();
        assert_eq!(mon.power_cycles(), 1);
        assert!(mon.records()[0].power_cycled);
        let fm = mon.fm(victim).unwrap();
        assert_eq!(fm.status(), NodeStatus::Healthy);
        assert_eq!(fm.image_name(), "golden");
    }

    #[test]
    fn repair_returns_node_to_pool() {
        let mut e: Engine<Msg> = Engine::new(1);
        let mut rm = ResourceManager::new();
        for h in 0..3 {
            rm.register(NodeAddr::new(0, 0, h));
        }
        let mut sm = ServiceManager::new("svc");
        sm.grow(&mut rm, 2, &Constraints::default()).unwrap();
        let mut mon = FailureMonitor::new(rm, Some(SimDuration::from_millis(5)));
        let victim = sm.endpoints()[0];
        mon.add_service(sm);
        let mon_id = e.add_component(mon);
        e.schedule(
            SimTime::ZERO,
            mon_id,
            Msg::custom(NodeDownReport { addr: victim }),
        );
        e.run_until(SimTime::from_millis(1));
        assert_eq!(
            e.component::<FailureMonitor>(mon_id).unwrap().rm().failed(),
            1
        );
        e.run_to_idle();
        let mon = e.component::<FailureMonitor>(mon_id).unwrap();
        assert_eq!(mon.rm().failed(), 0);
        assert_eq!(mon.repairs(), 1);
        assert_eq!(mon.rm().unallocated(), 1, "victim is allocatable again");
    }

    #[test]
    fn unleased_node_failure_records_no_service() {
        let mut e: Engine<Msg> = Engine::new(1);
        let mon = monitor_with_service(4, 2);
        let spare = NodeAddr::new(0, 0, 3);
        let mon_id = e.add_component(mon);
        e.schedule(
            SimTime::ZERO,
            mon_id,
            Msg::custom(NodeDownReport { addr: spare }),
        );
        e.run_to_idle();
        let mon = e.component::<FailureMonitor>(mon_id).unwrap();
        assert_eq!(mon.records().len(), 1);
        assert!(mon.records()[0].service.is_none());
        assert!(mon.records()[0].replacement.is_none());
    }
}
