//! Negative-path tests for the elastic multi-tenant API: every bogus
//! operation returns a typed [`ElasticError`], never a panic, and the
//! scheduler's books stay consistent afterwards.

use dcnet::NodeAddr;
use dcsim::SimTime;
use haas::{ElasticConfig, ElasticError, ElasticScheduler, TenantClass};
use shell::tenant::{TenantCaps, TenantId};

fn caps() -> TenantCaps {
    TenantCaps {
        er_mbps: 1_000,
        ltl_credits: 16,
    }
}

fn sched() -> ElasticScheduler {
    let mut s = ElasticScheduler::new(ElasticConfig::default());
    s.add_board(NodeAddr::new(0, 0, 1), &[10_000, 20_000])
        .unwrap();
    s
}

#[test]
fn oversized_request_is_a_typed_reject() {
    let mut s = sched();
    let err = s
        .request(
            SimTime::ZERO,
            0,
            TenantId(1),
            TenantClass::Guaranteed,
            25_000,
            false,
            caps(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        ElasticError::RequestTooLarge {
            alms: 25_000,
            largest: 20_000
        }
    );
    assert_eq!(s.leases().count(), 0);
    assert!(s.queued_reqs().is_empty(), "rejected, not queued");
}

#[test]
fn oversized_request_against_empty_pool_reports_zero() {
    let mut s = ElasticScheduler::new(ElasticConfig::default());
    let err = s
        .request(
            SimTime::ZERO,
            0,
            TenantId(1),
            TenantClass::Spot,
            1,
            true,
            caps(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        ElasticError::RequestTooLarge {
            alms: 1,
            largest: 0
        }
    );
}

#[test]
fn preempting_a_non_preemptible_lease_errors() {
    let mut s = sched();
    s.request(
        SimTime::ZERO,
        0,
        TenantId(1),
        TenantClass::Guaranteed,
        9_000,
        false,
        caps(),
    )
    .unwrap();
    let lease = s.leases().next().unwrap().id;
    assert_eq!(
        s.preempt(SimTime::from_micros(1), lease).unwrap_err(),
        ElasticError::NotPreemptible(lease)
    );
    assert_eq!(s.leases().count(), 1, "lease untouched");
    // A standard lease that did not opt in is equally protected.
    s.request(
        SimTime::from_micros(2),
        1,
        TenantId(2),
        TenantClass::Standard,
        9_000,
        false,
        caps(),
    )
    .unwrap();
    let std_lease = s.leases().map(|l| l.id).max().unwrap();
    assert_eq!(
        s.preempt(SimTime::from_micros(3), std_lease).unwrap_err(),
        ElasticError::NotPreemptible(std_lease)
    );
}

#[test]
fn preempting_unknown_lease_errors() {
    let mut s = sched();
    assert_eq!(
        s.preempt(SimTime::ZERO, 42).unwrap_err(),
        ElasticError::UnknownLease(42)
    );
}

#[test]
fn double_release_is_rejected_not_double_freed() {
    let mut s = sched();
    s.request(
        SimTime::ZERO,
        0,
        TenantId(1),
        TenantClass::Standard,
        9_000,
        false,
        caps(),
    )
    .unwrap();
    s.release(SimTime::from_micros(1), 0).unwrap();
    assert_eq!(s.leases().count(), 0);
    // Second release of the same request: accepted as a no-op decision
    // (the trace path), lease count unchanged, no panic.
    s.release(SimTime::from_micros(2), 0).unwrap();
    assert_eq!(s.leases().count(), 0);
    // A request id that never existed is a typed error.
    assert_eq!(
        s.release(SimTime::from_micros(3), 99).unwrap_err(),
        ElasticError::UnknownLease(99)
    );
}

#[test]
fn reclaiming_from_an_empty_spot_pool_errors() {
    let mut s = sched();
    // Only non-spot leases live.
    s.request(
        SimTime::ZERO,
        0,
        TenantId(1),
        TenantClass::Guaranteed,
        9_000,
        false,
        caps(),
    )
    .unwrap();
    assert_eq!(
        s.reclaim_spot(SimTime::from_micros(1)).unwrap_err(),
        ElasticError::SpotPoolEmpty
    );
    assert_eq!(s.leases().count(), 1, "guaranteed lease never reclaimed");
}

#[test]
fn board_ops_on_unknown_boards_error() {
    let mut s = sched();
    let ghost = NodeAddr::new(3, 3, 3);
    assert_eq!(
        s.board_down(SimTime::ZERO, ghost).unwrap_err(),
        ElasticError::UnknownBoard(ghost)
    );
    assert_eq!(
        s.board_up(SimTime::ZERO, ghost).unwrap_err(),
        ElasticError::UnknownBoard(ghost)
    );
    assert_eq!(
        s.add_board(NodeAddr::new(0, 0, 1), &[1]).unwrap_err(),
        ElasticError::DuplicateBoard(NodeAddr::new(0, 0, 1))
    );
}

#[test]
fn errors_display_without_panicking() {
    let errs: Vec<ElasticError> = vec![
        ElasticError::RequestTooLarge {
            alms: 7,
            largest: 3,
        },
        ElasticError::NotPreemptible(1),
        ElasticError::UnknownLease(2),
        ElasticError::SpotPoolEmpty,
        ElasticError::UnknownBoard(NodeAddr::new(1, 2, 3)),
        ElasticError::DuplicateBoard(NodeAddr::new(1, 2, 3)),
    ];
    for e in errs {
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn spot_reclaim_respects_eviction_window() {
    let mut s = sched();
    s.request(
        SimTime::ZERO,
        0,
        TenantId(9),
        TenantClass::Spot,
        9_000,
        true,
        caps(),
    )
    .unwrap();
    let victim = s.reclaim_spot(SimTime::from_micros(1)).unwrap();
    // Victim still live inside the window...
    assert!(s.leases().any(|l| l.id == victim));
    // ...and gone after it.
    s.advance_to(SimTime::from_micros(1) + ElasticConfig::default().eviction_window);
    assert!(!s.leases().any(|l| l.id == victim));
    // Immediately after, the pool is empty again.
    assert_eq!(
        s.reclaim_spot(SimTime::from_secs(2)).unwrap_err(),
        ElasticError::SpotPoolEmpty
    );
}
