//! Negative-path coverage for the HaaS control plane: every "can't
//! happen in the happy path" input must be absorbed without a panic and
//! must leave the pool's books consistent.

use dcnet::{Msg, NodeAddr};
use dcsim::{Engine, SimTime};
use haas::{
    AllocError, Constraints, FailureMonitor, FpgaState, LeaseId, NodeDownReport, ResourceManager,
    ServiceManager,
};

fn pool(n: u16) -> ResourceManager {
    let mut rm = ResourceManager::new();
    for h in 0..n {
        rm.register(NodeAddr::new(0, 0, h));
    }
    rm
}

/// Sums the per-state counts and checks them against the pool total —
/// the books balance no matter what was thrown at the allocator.
fn assert_books_balance(rm: &ResourceManager, addrs: &[NodeAddr]) {
    let leased = addrs
        .iter()
        .filter(|a| matches!(rm.state(**a), Some(FpgaState::Leased { .. })))
        .count();
    assert_eq!(rm.unallocated() + rm.failed() + leased, rm.total());
}

#[test]
fn request_from_empty_pool_fails_cleanly() {
    let mut rm = ResourceManager::new();
    let err = rm.request("svc", 1, &Constraints::default()).unwrap_err();
    assert_eq!(err, AllocError::InsufficientCapacity);
    assert_eq!(rm.total(), 0);
    assert_eq!(rm.unallocated(), 0);
}

#[test]
fn oversized_request_grants_nothing() {
    let mut rm = pool(3);
    // Atomicity: a request for more than the pool holds must not leak
    // partial leases.
    let err = rm.request("svc", 4, &Constraints::default()).unwrap_err();
    assert_eq!(err, AllocError::InsufficientCapacity);
    assert_eq!(rm.unallocated(), 3, "partial grant leaked leases");
    // The same request sized to the pool still succeeds afterwards.
    assert_eq!(
        rm.request("svc", 3, &Constraints::default()).unwrap().len(),
        3
    );
}

#[test]
fn unsatisfiable_constraints_leave_pool_untouched() {
    let mut rm = pool(4);
    let constraints = Constraints {
        pod: Some(7), // every registered node is in pod 0
        ..Constraints::default()
    };
    assert_eq!(
        rm.request("svc", 1, &constraints).unwrap_err(),
        AllocError::InsufficientCapacity
    );
    assert_eq!(rm.unallocated(), 4);
}

#[test]
fn bogus_lease_release_is_rejected() {
    let mut rm = pool(2);
    let lease = &rm.request("svc", 1, &Constraints::default()).unwrap()[0];
    let bogus = LeaseId(lease.id.0 + 1000);
    assert_eq!(rm.release(bogus).unwrap_err(), AllocError::UnknownLease);
    // Double release of a real lease: first succeeds, second is unknown.
    let id = lease.id;
    rm.release(id).unwrap();
    assert_eq!(rm.release(id).unwrap_err(), AllocError::UnknownLease);
    assert_eq!(rm.unallocated(), 2);
}

#[test]
fn failure_ops_on_unknown_nodes_are_noops() {
    let mut rm = pool(2);
    let stranger = NodeAddr::new(9, 9, 9);
    // `mark_failed` on an unregistered node disrupts no lease, but does
    // record the node as failed (a node can die before anyone registered
    // it); a later repair returns it to the pool.
    assert_eq!(rm.mark_failed(stranger), None);
    assert_eq!(rm.state(stranger), Some(&FpgaState::Failed));
    rm.repair(stranger);
    assert_eq!(rm.state(stranger), Some(&FpgaState::Unallocated));
    rm.repair(NodeAddr::new(0, 0, 0)); // repair of a healthy node: no-op
    assert_eq!(
        rm.state(NodeAddr::new(0, 0, 0)),
        Some(&FpgaState::Unallocated)
    );
}

#[test]
fn sm_failure_with_empty_spare_pool_degrades_without_panic() {
    let mut rm = pool(2);
    let mut sm = ServiceManager::new("svc");
    // Lease the whole pool: no spares remain.
    sm.grow(&mut rm, 2, &Constraints::default()).unwrap();
    let victim = sm.endpoints()[0];
    let lease = rm.mark_failed(victim).expect("victim was leased");
    let err = sm.handle_failure(&mut rm, lease).unwrap_err();
    assert_eq!(err, AllocError::InsufficientCapacity);
    // Degraded but consistent: the dead endpoint is gone, the survivor
    // keeps serving, and no replacement was charged.
    assert!(!sm.endpoints().contains(&victim));
    assert_eq!(sm.endpoints().len(), 1);
    assert_eq!(sm.replacements(), 0);
    let addrs: Vec<NodeAddr> = (0..2).map(|h| NodeAddr::new(0, 0, h)).collect();
    assert_books_balance(&rm, &addrs);
    // A repair makes the node allocatable again and the service can
    // re-grow to strength.
    rm.repair(victim);
    sm.grow(&mut rm, 1, &Constraints::default()).unwrap();
    assert_eq!(sm.endpoints().len(), 2);
    assert_books_balance(&rm, &addrs);
}

#[test]
fn handle_failure_for_foreign_lease_changes_nothing() {
    let mut rm = pool(4);
    let mut sm = ServiceManager::new("svc");
    sm.grow(&mut rm, 1, &Constraints::default()).unwrap();
    // A lease the SM never held (another service's, already torn down).
    let foreign = LeaseId(10_000);
    assert_eq!(sm.handle_failure(&mut rm, foreign).unwrap(), None);
    assert_eq!(sm.endpoints().len(), 1);
    assert_eq!(sm.replacements(), 0);
}

#[test]
fn monitor_absorbs_reports_for_already_drained_nodes() {
    let mut e: Engine<Msg> = Engine::new(1);
    let mut rm = pool(3);
    let mut sm = ServiceManager::new("svc");
    sm.grow(&mut rm, 2, &Constraints::default()).unwrap();
    let victim = sm.endpoints()[0];
    let mut mon = FailureMonitor::new(rm, None);
    mon.add_service(sm);
    let mon_id = e.add_component(mon);
    // First report drains the node; stragglers keep reporting the same
    // dead node long after.
    for t in [1u64, 50, 51, 900] {
        e.schedule(
            SimTime::from_micros(t),
            mon_id,
            Msg::custom(NodeDownReport { addr: victim }),
        );
    }
    e.run_to_idle();
    let mon = e.component::<FailureMonitor>(mon_id).unwrap();
    assert_eq!(mon.records().len(), 1, "one recovery for one failure");
    assert_eq!(mon.duplicate_reports(), 3);
    assert_eq!(mon.rm().failed(), 1);
    assert_eq!(mon.services()[0].replacements(), 1);
    let addrs: Vec<NodeAddr> = (0..3).map(|h| NodeAddr::new(0, 0, h)).collect();
    assert_books_balance(mon.rm(), &addrs);
}

#[test]
fn monitor_with_no_services_still_drains_reported_nodes() {
    let mut e: Engine<Msg> = Engine::new(1);
    let rm = pool(2);
    let mon = FailureMonitor::new(rm, None);
    let mon_id = e.add_component(mon);
    e.schedule(
        SimTime::ZERO,
        mon_id,
        Msg::custom(NodeDownReport {
            addr: NodeAddr::new(0, 0, 1),
        }),
    );
    e.run_to_idle();
    let mon = e.component::<FailureMonitor>(mon_id).unwrap();
    assert_eq!(mon.records().len(), 1);
    assert!(mon.records()[0].service.is_none());
    assert_eq!(mon.rm().failed(), 1);
    assert_eq!(mon.rm().unallocated(), 1);
}
