//! Microbenchmarks of the building blocks: crypto primitives, feature
//! extraction, DNN inference, the Elastic Router and the LTL engine.

use apps::crypto::{cbc_sha1_seal, Aes, AesGcm, Sha1};
use apps::dnn::Mlp;
use apps::ranking::{alignment_score, AlignParams, CorpusGen, FfuBank};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcnet::NodeAddr;
use dcsim::{SimRng, SimTime};
use shell::ltl::{LtlConfig, LtlEngine, Poll};
use shell::{CreditPolicy, ElasticRouter, ErConfig, Flit};

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let aes = Aes::new_128(b"0123456789abcdef");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_block", |b| {
        let mut block = [7u8; 16];
        b.iter(|| aes.encrypt_block(&mut block));
    });
    let gcm = AesGcm::new_128(b"0123456789abcdef");
    let iv = [1u8; 12];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("gcm_seal_1500B", |b| {
        let mut data = vec![0u8; 1500];
        b.iter(|| gcm.seal(&iv, &[], &mut data));
    });
    g.bench_function("sha1_1500B", |b| {
        let data = vec![0u8; 1500];
        b.iter(|| Sha1::digest(&data));
    });
    g.bench_function("cbc_sha1_record_1460B", |b| {
        let data = vec![0u8; 1460];
        let iv16 = [2u8; 16];
        b.iter(|| cbc_sha1_seal(&aes, b"mac", &iv16, &data));
    });
    g.finish();
}

fn ranking_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking");
    let gen = CorpusGen::new(50_000, 1.0);
    let mut rng = SimRng::seed_from(1);
    let query = gen.query(&mut rng, 3);
    let doc = gen.document(&mut rng, &query, 1_000, 0.8);
    g.throughput(Throughput::Elements(doc.tokens.len() as u64));
    g.bench_function("ffu_1000_tokens", |b| {
        let mut bank = FfuBank::for_query(&query);
        b.iter(|| bank.compute(&doc));
    });
    g.bench_function("dpf_alignment_1000_tokens", |b| {
        b.iter(|| alignment_score(&query, &doc, AlignParams::default()));
    });
    g.finish();
}

fn dnn_benches(c: &mut Criterion) {
    let mlp = Mlp::new(&[64, 128, 64, 10], 3);
    let input: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
    c.benchmark_group("dnn")
        .throughput(Throughput::Elements(mlp.macs()))
        .bench_function("mlp_infer_17k_macs", |b| {
            b.iter(|| mlp.infer(&input));
        });
}

fn er_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("elastic_router");
    g.bench_function("inject_route_4port_2vc", |b| {
        let mut er = ElasticRouter::new(ErConfig {
            policy: CreditPolicy::Elastic,
            ..ErConfig::default()
        });
        let mut i = 0u64;
        b.iter(|| {
            let flit = Flit {
                out_port: (i % 4) as usize,
                vc: (i % 2) as usize,
                tail: true,
                msg_id: i,
                flit_seq: 0,
            };
            let _ = er.inject((i % 4) as usize, flit);
            let out = er.step(|_, _| true);
            i += 1;
            out
        });
    });
    g.finish();
}

fn ltl_benches(c: &mut Criterion) {
    let a = NodeAddr::new(0, 0, 1);
    let b_addr = NodeAddr::new(0, 0, 2);
    c.benchmark_group("ltl")
        .bench_function("send_poll_ack_1460B", |bch| {
            let cfg = LtlConfig {
                dcqcn: None,
                ..LtlConfig::default()
            };
            let mut tx = LtlEngine::new(a, cfg.clone());
            let mut rx = LtlEngine::new(b_addr, cfg);
            let recv = rx.add_recv(a);
            let conn = tx.add_send(b_addr, recv);
            let payload = Bytes::from(vec![0u8; 1_438]);
            let mut now = SimTime::ZERO;
            bch.iter(|| {
                tx.send_message(conn, 0, payload.clone()).unwrap();
                while let Poll::Ready(pkt) = tx.poll(now) {
                    rx.on_packet(&pkt, now);
                }
                while let Poll::Ready(ack) = rx.poll(now) {
                    tx.on_packet(&ack, now);
                }
                now += dcsim::SimDuration::from_micros(1);
            });
        });
}

criterion_group!(
    benches,
    crypto_benches,
    ranking_benches,
    dnn_benches,
    er_benches,
    ltl_benches
);
criterion_main!(benches);
