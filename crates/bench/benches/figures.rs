//! One Criterion benchmark per paper table/figure, at smoke scale, so
//! `cargo bench` regenerates every result. The binaries in `src/bin/`
//! produce the full-scale numbers; these keep the pipeline exercised and
//! timed.

use catapult::experiments::{
    crypto_table, deployment_table, fig05_summary, fig06, fig10, fig11, fig12, power_table,
    production, RankingSweepParams,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn figure_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig05_area_table", |b| {
        b.iter(|| {
            let s = fig05_summary();
            assert_eq!(s.used_alms, 131_350);
            s
        });
    });

    g.bench_function("fig06_ranking_one_point", |b| {
        let params = RankingSweepParams {
            queries_per_point: 5_000,
            loads: vec![1.0, 2.25],
            ..RankingSweepParams::default()
        };
        b.iter(|| fig06(&params));
    });

    g.bench_function("fig07_fig08_production_short", |b| {
        let params = production::ProductionParams {
            days: 1,
            day_length: dcsim::SimDuration::from_secs(4),
            buckets_per_day: 8,
            ..production::ProductionParams::default()
        };
        b.iter(|| production::run(&params));
    });

    g.bench_function("fig10_ltl_latency_small_fabric", |b| {
        let params = fig10::Fig10Params {
            pods: 2,
            pairs_per_tier: 1,
            probes_per_pair: 50,
            ..fig10::Fig10Params::default()
        };
        b.iter(|| {
            let r = fig10::run(&params);
            assert!((r.tiers[0].avg_us - 2.88).abs() < 0.2);
            r
        });
    });

    g.bench_function("fig11_remote_one_point", |b| {
        let params = RankingSweepParams {
            queries_per_point: 3_000,
            loads: vec![1.5],
            ..RankingSweepParams::default()
        };
        b.iter(|| fig11(&params));
    });

    g.bench_function("fig12_oversub_one_ratio", |b| {
        let params = fig12::Fig12Params {
            accelerators: 2,
            ratios: vec![1.0],
            requests_per_client: 500,
            ..fig12::Fig12Params::default()
        };
        b.iter(|| fig12::run(&params));
    });

    g.bench_function("tab_crypto", |b| b.iter(crypto_table));
    g.bench_function("tab_deployment_soak", |b| {
        b.iter(|| deployment_table(5_760, 30.0, 7))
    });
    g.bench_function("tab_power", |b| b.iter(power_table));
    g.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
