//! Criterion benchmarks of the `dcsim` event engine and the wire codecs
//! on the packet hot path: scheduler throughput under the workloads the
//! simulation substrate actually generates, plus `Packet` and `LtlFrame`
//! encode/decode (whose copy-free decode contract the LTL datapath leans
//! on once per received frame). The `perf` binary gives the same chain
//! workloads as an absolute events/sec comparison against the
//! pre-calendar-queue binary heap.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcnet::{NodeAddr, Packet, TrafficClass};
use dcsim::{Component, Context, Engine, SimDuration, SimTime};
use shell::ltl::{FrameKind, LtlFrame};

const CHAINS: u64 = 256;
const EVENTS_PER_CHAIN: u64 = 200;

#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Self-rescheduling chain; the message counts remaining events and the
/// delay function sets the workload profile.
struct Chain {
    rng: u64,
    delay: fn(u64) -> u64,
}

impl Component<u64> for Chain {
    fn on_message(&mut self, left: u64, ctx: &mut Context<'_, u64>) {
        if left > 0 {
            let delay = (self.delay)(splitmix(&mut self.rng));
            ctx.send_to_self_after(SimDuration::from_nanos(delay), left - 1);
        }
    }
}

fn run_chains(delay: fn(u64) -> u64) -> u64 {
    let mut e: Engine<u64> = Engine::new(7);
    for i in 0..CHAINS {
        let id = e.add_component(Chain {
            rng: 0xC0FFEE ^ i,
            delay,
        });
        e.schedule(SimTime::from_nanos(i), id, EVENTS_PER_CHAIN);
    }
    e.run_to_idle();
    e.events_processed()
}

fn short_delay(r: u64) -> u64 {
    100 + r % 1_000
}

fn mixed_delay(r: u64) -> u64 {
    match r % 100 {
        0 => 1_000_000 + (r >> 8) % 9_000_000, // 1–10 ms
        1..=9 => 10_000 + (r >> 8) % 90_000,   // 10–100 µs
        _ => 100 + (r >> 8) % 1_000,           // 0.1–1.1 µs
    }
}

fn engine_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let events = CHAINS * (EVENTS_PER_CHAIN + 1);
    g.throughput(Throughput::Elements(events));
    g.bench_function("short_delay", |b| {
        b.iter(|| black_box(run_chains(short_delay)))
    });
    g.bench_function("mixed_delay", |b| {
        b.iter(|| black_box(run_chains(mixed_delay)))
    });
    g.finish();
}

/// An MTU-sized LTL data frame payload (the segmenter's steady state).
const FRAME_PAYLOAD: usize = 1458;

fn codec_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(1));

    let pkt = Packet::new(
        NodeAddr::new(0, 1, 2),
        NodeAddr::new(1, 3, 0),
        4791,
        4791,
        TrafficClass::LTL,
        Bytes::from(vec![0xA5u8; FRAME_PAYLOAD]),
    );
    let pkt_wire = pkt.encode_wire();
    g.bench_function("packet_encode", |b| {
        b.iter(|| black_box(black_box(&pkt).encode_wire()))
    });
    g.bench_function("packet_decode", |b| {
        b.iter(|| black_box(Packet::decode_wire(black_box(&pkt_wire)).expect("valid frame")))
    });

    let frame = LtlFrame {
        kind: FrameKind::Data,
        src_conn: 3,
        dst_conn: 7,
        seq: 0x1234_5678,
        msg_id: 42,
        last_frag: false,
        vc: 1,
        payload: Bytes::from(vec![0x5Au8; FRAME_PAYLOAD]),
    };
    let frame_wire = frame.encode();
    g.bench_function("ltl_frame_encode", |b| {
        b.iter(|| black_box(black_box(&frame).encode()))
    });
    g.bench_function("ltl_frame_decode", |b| {
        b.iter(|| black_box(LtlFrame::decode(black_box(&frame_wire)).expect("valid frame")))
    });
    g.bench_function("ltl_frame_roundtrip", |b| {
        b.iter(|| {
            let wire = black_box(&frame).encode();
            black_box(LtlFrame::decode(&wire).expect("valid frame"))
        })
    });
    g.finish();
}

criterion_group!(benches, engine_benches, codec_benches);
criterion_main!(benches);
