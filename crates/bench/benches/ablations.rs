//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. Elastic vs static ER credit pools — throughput under skewed VC load
//!    with equal total buffering.
//! 2. NACK fast retransmit vs timeout-only — recovery time after reorder.
//! 3. Lossless (PFC) vs lossy network classes for LTL — completion time
//!    under incast.
//! 4. LTL vs torus — reach/latency computation cost (the scalability
//!    argument).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use dcnet::NodeAddr;
use dcsim::{SimDuration, SimTime};
use shell::ltl::{LtlConfig, LtlEngine, Poll};
use shell::{CreditPolicy, ElasticRouter, ErConfig, Flit};

/// Pushes a skewed workload (90% of traffic on one VC) through a router
/// and returns the cycles needed to deliver all flits.
fn skewed_vc_cycles(policy: CreditPolicy) -> u64 {
    // Same total buffering: static 6+6 per VC vs elastic 2+2 plus 8 shared.
    let cfg = match policy {
        CreditPolicy::Static => ErConfig {
            ports: 4,
            vcs: 2,
            credits_per_vc: 6,
            shared_credits: 0,
            policy,
            flit_bytes: 32,
        },
        CreditPolicy::Elastic => ErConfig {
            ports: 4,
            vcs: 2,
            credits_per_vc: 2,
            shared_credits: 8,
            policy,
            flit_bytes: 32,
        },
    };
    let mut er = ElasticRouter::new(cfg);
    let mut pending: Vec<Flit> = (0..400u64)
        .map(|i| Flit {
            out_port: (i % 3) as usize + 1,
            vc: if i % 10 == 0 { 1 } else { 0 }, // 90% on VC 0
            tail: true,
            msg_id: i,
            flit_seq: 0,
        })
        .collect();
    pending.reverse();
    let mut cycles = 0u64;
    let mut delivered = 0usize;
    let total = pending.len();
    while delivered < total {
        // Offer as many pending flits as credits allow, all at port 0.
        while let Some(f) = pending.pop() {
            if er.inject(0, f.clone()).is_err() {
                pending.push(f);
                break;
            }
        }
        delivered += er.step(|_, _| true).len();
        cycles += 1;
        assert!(cycles < 100_000, "router wedged");
    }
    cycles
}

fn ablation_er_credits(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_er_credits");
    g.bench_function("elastic_pool", |b| {
        b.iter(|| skewed_vc_cycles(CreditPolicy::Elastic))
    });
    g.bench_function("static_per_vc", |b| {
        b.iter(|| skewed_vc_cycles(CreditPolicy::Static))
    });
    g.finish();
    // Report the headline numbers once.
    let e = skewed_vc_cycles(CreditPolicy::Elastic);
    let s = skewed_vc_cycles(CreditPolicy::Static);
    println!("** skewed-VC delivery: elastic {e} cycles vs static {s} cycles (same total buffers)");
}

/// Time to recover from a reordered frame, with and without NACKs.
fn reorder_recovery_ns(nack: bool) -> u64 {
    let cfg = LtlConfig {
        nack_enabled: nack,
        dcqcn: None,
        ..LtlConfig::default()
    };
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 0, 2);
    let mut tx = LtlEngine::new(a, cfg.clone());
    let mut rx = LtlEngine::new(b, cfg);
    let recv = rx.add_recv(a);
    let conn = tx.add_send(b, recv);
    tx.send_message(conn, 0, Bytes::from_static(b"one"))
        .unwrap();
    tx.send_message(conn, 0, Bytes::from_static(b"two"))
        .unwrap();
    let mut now = SimTime::ZERO;
    let Poll::Ready(first) = tx.poll(now) else {
        panic!()
    };
    let Poll::Ready(second) = tx.poll(now) else {
        panic!()
    };
    // Deliver out of order; frame one is "delayed in the network".
    now += SimDuration::from_micros(2);
    rx.on_packet(&second, now);
    // Drive both sides until the first message finally delivers.
    loop {
        now += SimDuration::from_micros(1);
        let mut progressed = false;
        while let Poll::Ready(pkt) = rx.poll(now) {
            tx.on_packet(&pkt, now);
            progressed = true;
        }
        tx.on_tick(now);
        while let Poll::Ready(pkt) = tx.poll(now) {
            let events = rx.on_packet(&pkt, now);
            if !events.is_empty() {
                return now.as_nanos();
            }
            progressed = true;
        }
        if !progressed && now > SimTime::from_millis(1) {
            // Late arrival of the original frame (worst case path).
            let events = rx.on_packet(&first, now);
            if !events.is_empty() {
                return now.as_nanos();
            }
        }
        assert!(now < SimTime::from_millis(10), "no recovery");
    }
}

fn ablation_nack(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_nack");
    g.bench_function("nack_fast_retransmit", |b| {
        b.iter(|| reorder_recovery_ns(true))
    });
    g.bench_function("timeout_only", |b| b.iter(|| reorder_recovery_ns(false)));
    g.finish();
    let with_nack = reorder_recovery_ns(true);
    let without = reorder_recovery_ns(false);
    println!(
        "** reorder recovery: NACK {:.1}us vs timeout-only {:.1}us",
        with_nack as f64 / 1e3,
        without as f64 / 1e3
    );
    assert!(with_nack < without, "NACK should recover faster");
}

/// Incast completion time with LTL on a lossless class vs a lossy class.
fn incast_completion_us(lossless: bool) -> f64 {
    use catapult::{Cluster, ClusterBuilder};
    use dcnet::Msg;
    use shell::ShellCmd;

    let shape = catapult::calib::paper_shape(1);
    let mut fabric_cfg = catapult::calib::fabric_config(shape);
    if !lossless {
        fabric_cfg.tor.lossless_mask = 0;
        fabric_cfg.tor.queue_capacity_bytes = 40_000; // shallow lossy buffers
        fabric_cfg.agg.lossless_mask = 0;
        fabric_cfg.spine.lossless_mask = 0;
    }
    let mut cluster = ClusterBuilder::new(3)
        .fabric_config(&fabric_cfg)
        .shell_config(catapult::calib::shell_config())
        .build();
    let dst = NodeAddr::new(0, 0, 0);
    cluster.add_shell(dst);
    let senders: Vec<NodeAddr> = (1..9).map(|h| NodeAddr::new(0, 0, h)).collect();
    for &s in &senders {
        cluster.add_shell(s);
    }
    for &s in &senders {
        let (send, _, _, _) = cluster.connect_pair(s, dst);
        let sid = cluster.shell_id(s).expect("sender exists");
        for k in 0..10u64 {
            cluster.engine_mut().schedule(
                SimTime::from_nanos(k * 120),
                sid,
                Msg::custom(ShellCmd::LtlSend {
                    conn: send,
                    vc: 0,
                    payload: Bytes::from(vec![0u8; 1_300]),
                }),
            );
        }
    }
    cluster.run_to_idle();
    cluster.now().as_micros_f64()
}

fn ablation_lossless(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lossless");
    g.sample_size(10);
    g.bench_function("pfc_lossless_class", |b| {
        b.iter(|| incast_completion_us(true))
    });
    g.bench_function("lossy_class", |b| b.iter(|| incast_completion_us(false)));
    g.finish();
    let pfc = incast_completion_us(true);
    let lossy = incast_completion_us(false);
    println!("** 8-way incast completion: lossless {pfc:.1}us vs lossy {lossy:.1}us (retransmit timeouts)");
}

fn ablation_torus(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scale");
    g.bench_function("torus_all_pairs_rtt", |b| {
        let t = torus::Torus::new(torus::TorusConfig::catapult_v1());
        b.iter(|| t.rtt_statistics())
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_er_credits,
    ablation_nack,
    ablation_lossless,
    ablation_torus
);
criterion_main!(benches);
