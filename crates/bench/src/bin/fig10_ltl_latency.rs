//! Figure 10: LTL round-trip latency by tier vs the 6x8 torus.
//!
//! Paper: L0 avg 2.88 µs (p99.9 2.9), L1 avg 7.72 µs (p99.9 8.24),
//! L2 avg 18.71 µs (p99.9 22.38, never above 23.5); torus 1 µs 1-hop,
//! 7 µs worst case, capped at 48 FPGAs.
//!
//! Pass `--trace` to also record each tier's flight-recorder timeline and
//! write it as Chrome trace-event JSON (`results/fig10_trace_<tier>.json`,
//! loadable in Perfetto / `chrome://tracing`).
//!
//! Pass `--full-scale` for the fleet-scale run instead: a 260-pod lazy
//! hybrid fabric (249,600 reachable hosts) where only a small packet
//! island is simulated at packet fidelity and the rest of the fleet
//! presses on the spine through the flow-level aggregate model. Combine
//! with `--quick` for a reduced smoke-scale fleet, and with
//! `--rss-limit-mb N` to fail the run if the allocator high-water mark
//! exceeds N MiB (the lazy-topology memory gate).

use catapult::prelude::*;
use catapult::telemetry::json::validate_chrome_trace;
use experiments::fig10;
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: bench::mem::TrackingAlloc = bench::mem::TrackingAlloc;

/// Ring-buffer capacity for `--trace` runs: enough for every probe event
/// at quick scale without letting full scale allocate without bound.
const TRACE_EVENTS: usize = 262_144;

/// Wall-clock row for `results/BENCH_fleet.json`. Timing fields live here
/// and not in `fig10_fleet.json`, which must stay byte-identical across
/// same-seed runs for the CI fingerprint diff.
#[derive(Debug, Serialize)]
struct FleetBenchRow {
    commit: String,
    hosts_reachable: usize,
    materialized_pods: usize,
    switch_count: usize,
    events: u64,
    events_per_sec: f64,
    wall_secs: f64,
    peak_rss_mb: f64,
}

fn run_fleet_mode() {
    bench::header(
        "Figure 10 (fleet)",
        "LTL latency inside a packet island of a quarter-million-host fabric",
    );
    let params = if bench::quick_mode() {
        let mut workload = experiments::fig10::FleetParams::default().workload;
        workload.users = 100_000;
        fig10::FleetParams {
            pods: 12,
            pairs_per_tier: 2,
            probes_per_pair: 100,
            workload,
            ..fig10::FleetParams::default()
        }
    } else {
        fig10::FleetParams::default()
    };
    println!(
        "fabric: {} pods ({} hosts), island {} pods at packet fidelity, {} users",
        params.pods,
        calib::paper_shape(params.pods).total_hosts(),
        params.island_pods,
        params.workload.users,
    );
    let wall = Instant::now();
    let result = fig10::run_fleet(&params);
    let wall_secs = wall.elapsed().as_secs_f64();
    let peak_rss_mb = bench::mem::peak_bytes() as f64 / (1024.0 * 1024.0);
    println!("{}", result.table());
    println!(
        "wall {:.1}s | {:.0} events/s | peak heap {:.0} MiB",
        wall_secs,
        result.events as f64 / wall_secs,
        peak_rss_mb
    );
    bench::write_json("fig10_fleet", &result);
    bench::write_json(
        "BENCH_fleet",
        &FleetBenchRow {
            commit: bench::current_commit(),
            hosts_reachable: result.hosts_reachable,
            materialized_pods: result.materialized_pods,
            switch_count: result.switch_count,
            events: result.events,
            events_per_sec: result.events as f64 / wall_secs,
            wall_secs,
            peak_rss_mb,
        },
    );
    if let Some(limit) = bench::arg_value("--rss-limit-mb") {
        let limit: f64 = limit.parse().expect("--rss-limit-mb takes a number");
        if peak_rss_mb > limit {
            eprintln!("FAIL: peak heap {peak_rss_mb:.0} MiB exceeds --rss-limit-mb {limit}");
            std::process::exit(1);
        }
        println!("memory gate: peak heap {peak_rss_mb:.0} MiB <= {limit} MiB");
    }
}

fn main() {
    if std::env::args().any(|a| a == "--full-scale") {
        run_fleet_mode();
        return;
    }
    bench::header("Figure 10", "LTL round-trip latency vs reachable hosts");
    let params = if bench::quick_mode() {
        fig10::Fig10Params {
            pods: 4,
            pairs_per_tier: 2,
            probes_per_pair: 100,
            ..fig10::Fig10Params::default()
        }
    } else {
        fig10::Fig10Params::default()
    };
    let tracing = std::env::args().any(|a| a == "--trace");
    println!(
        "fabric: {} pods ({} hosts), {} pairs/tier x {} probes",
        params.pods,
        calib::paper_shape(params.pods).total_hosts(),
        params.pairs_per_tier,
        params.probes_per_pair
    );
    let (result, traces) = fig10::run_traced(&params, if tracing { TRACE_EVENTS } else { 0 });
    println!("{}", result.table());
    println!("paper:   L0 2.88/2.90  L1 7.72/8.24  L2 18.71/22.38 (max 23.5) us; torus 1-7us @48");
    bench::write_json("fig10_ltl_latency", &result);
    for (tier, trace) in ["l0", "l1", "l2"].iter().zip(&traces) {
        validate_chrome_trace(trace)
            .expect("flight-recorder export must be valid Chrome trace JSON");
        bench::write_raw(&format!("fig10_trace_{tier}.json"), trace);
    }

    // The paper's idle-rate numbers were taken on a shared network; show
    // the same probes with 20 Gb/s of best-effort cross-traffic through
    // every probe TOR (strict priority keeps LTL nearly unaffected).
    println!("\nwith 20 Gb/s best-effort background through each probe TOR:");
    let loaded = fig10::run(&fig10::Fig10Params {
        background_gbps: 20.0,
        ..params
    });
    println!("{}", loaded.table());
    bench::write_json("fig10_ltl_latency_loaded", &loaded);
}
