//! Figure 10: LTL round-trip latency by tier vs the 6x8 torus.
//!
//! Paper: L0 avg 2.88 µs (p99.9 2.9), L1 avg 7.72 µs (p99.9 8.24),
//! L2 avg 18.71 µs (p99.9 22.38, never above 23.5); torus 1 µs 1-hop,
//! 7 µs worst case, capped at 48 FPGAs.
//!
//! Pass `--trace` to also record each tier's flight-recorder timeline and
//! write it as Chrome trace-event JSON (`results/fig10_trace_<tier>.json`,
//! loadable in Perfetto / `chrome://tracing`).

use catapult::prelude::*;
use catapult::telemetry::json::validate_chrome_trace;
use experiments::fig10;

/// Ring-buffer capacity for `--trace` runs: enough for every probe event
/// at quick scale without letting full scale allocate without bound.
const TRACE_EVENTS: usize = 262_144;

fn main() {
    bench::header("Figure 10", "LTL round-trip latency vs reachable hosts");
    let params = if bench::quick_mode() {
        fig10::Fig10Params {
            pods: 4,
            pairs_per_tier: 2,
            probes_per_pair: 100,
            ..fig10::Fig10Params::default()
        }
    } else {
        fig10::Fig10Params::default()
    };
    let tracing = std::env::args().any(|a| a == "--trace");
    println!(
        "fabric: {} pods ({} hosts), {} pairs/tier x {} probes",
        params.pods,
        calib::paper_shape(params.pods).total_hosts(),
        params.pairs_per_tier,
        params.probes_per_pair
    );
    let (result, traces) = fig10::run_traced(&params, if tracing { TRACE_EVENTS } else { 0 });
    println!("{}", result.table());
    println!("paper:   L0 2.88/2.90  L1 7.72/8.24  L2 18.71/22.38 (max 23.5) us; torus 1-7us @48");
    bench::write_json("fig10_ltl_latency", &result);
    for (tier, trace) in ["l0", "l1", "l2"].iter().zip(&traces) {
        validate_chrome_trace(trace)
            .expect("flight-recorder export must be valid Chrome trace JSON");
        bench::write_raw(&format!("fig10_trace_{tier}.json"), trace);
    }

    // The paper's idle-rate numbers were taken on a shared network; show
    // the same probes with 20 Gb/s of best-effort cross-traffic through
    // every probe TOR (strict priority keeps LTL nearly unaffected).
    println!("\nwith 20 Gb/s best-effort background through each probe TOR:");
    let loaded = fig10::run(&fig10::Fig10Params {
        background_gbps: 20.0,
        ..params
    });
    println!("{}", loaded.table());
    bench::write_json("fig10_ltl_latency_loaded", &loaded);
}
