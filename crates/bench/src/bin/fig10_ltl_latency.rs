//! Figure 10: LTL round-trip latency by tier vs the 6x8 torus.
//!
//! Paper: L0 avg 2.88 µs (p99.9 2.9), L1 avg 7.72 µs (p99.9 8.24),
//! L2 avg 18.71 µs (p99.9 22.38, never above 23.5); torus 1 µs 1-hop,
//! 7 µs worst case, capped at 48 FPGAs.

use catapult::experiments::fig10;

fn main() {
    bench::header("Figure 10", "LTL round-trip latency vs reachable hosts");
    let params = if bench::quick_mode() {
        fig10::Fig10Params {
            pods: 4,
            pairs_per_tier: 2,
            probes_per_pair: 100,
            ..fig10::Fig10Params::default()
        }
    } else {
        fig10::Fig10Params::default()
    };
    println!(
        "fabric: {} pods ({} hosts), {} pairs/tier x {} probes",
        params.pods,
        catapult::calib::paper_shape(params.pods).total_hosts(),
        params.pairs_per_tier,
        params.probes_per_pair
    );
    let result = fig10::run(&params);
    println!("{}", result.table());
    println!("paper:   L0 2.88/2.90  L1 7.72/8.24  L2 18.71/22.38 (max 23.5) us; torus 1-7us @48");
    bench::write_json("fig10_ltl_latency", &result);

    // The paper's idle-rate numbers were taken on a shared network; show
    // the same probes with 20 Gb/s of best-effort cross-traffic through
    // every probe TOR (strict priority keeps LTL nearly unaffected).
    println!("\nwith 20 Gb/s best-effort background through each probe TOR:");
    let loaded = fig10::run(&fig10::Fig10Params {
        background_gbps: 20.0,
        ..params
    });
    println!("{}", loaded.table());
    bench::write_json("fig10_ltl_latency_loaded", &loaded);
}
