//! Figure 11: software vs local-FPGA vs remote-FPGA ranking. The remote
//! curve runs feature extraction on another machine's FPGA over LTL
//! through the simulated network; the paper finds the latency overhead of
//! remote access minimal across the throughput range.

use catapult::prelude::*;
use experiments::{fig11, RankingSweepParams};

fn main() {
    bench::header("Figure 11", "Remote acceleration of ranking over LTL");
    let params = if bench::quick_mode() {
        RankingSweepParams {
            queries_per_point: 10_000,
            loads: vec![0.5, 1.0, 1.5, 2.0, 2.25],
            seed: 0x0F16_0011,
            ..RankingSweepParams::default()
        }
    } else {
        RankingSweepParams {
            queries_per_point: 100_000,
            seed: 0x0F16_0011,
            ..RankingSweepParams::default()
        }
    };
    let curves = fig11(&params);
    println!("{}", curves.table());
    // Quantify the remote overhead at matched load points.
    let mut overheads = Vec::new();
    for r in &curves.remote_fpga {
        if let Some(l) = curves
            .local_fpga
            .iter()
            .find(|l| (l.offered - r.offered).abs() < 1e-9)
        {
            if l.p999 > 0.0 {
                overheads.push((r.offered, (r.p999 / l.p999 - 1.0) * 100.0));
            }
        }
    }
    for (load, pct) in &overheads {
        println!("remote p99.9 overhead at load {load:.2}: {pct:+.1}%");
    }
    println!("paper: the latency overhead of remote accesses is minimal");
    bench::write_json("fig11_remote_ranking", &curves);
}
