//! Figure 5: area and frequency breakdown of the production-deployed
//! shell image with remote acceleration support.

use catapult::prelude::*;
use experiments::{fig05_summary, fig05_table};

fn main() {
    bench::header("Figure 5", "Shell area/frequency breakdown");
    println!("{}", fig05_table());
    let s = fig05_summary();
    println!(
        "\nshell+other: {:.0}%  role: {:.0}%  total used: {:.0}%",
        s.shell_fraction * 100.0,
        s.role_fraction * 100.0,
        s.used_fraction * 100.0
    );
    println!("paper: shell 44%, role 32%, total 76% of 172,600 ALMs");
    bench::write_json("fig05_area", &s);
}
