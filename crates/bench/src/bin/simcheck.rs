//! Simulation-testing lane: seed sweeps over the protocol oracles,
//! conservation fuzzers and whole-cluster invariant scenarios, with
//! automatic shrinking of failures to a minimal, byte-identically
//! replayable reproduction in `results/simcheck_repro.json`.
//!
//! ```text
//! simcheck [--quick] [--seeds N] [--seed-base B] [--inject-bug]
//!          [--validate-oracle] [--replay FILE]
//! ```
//!
//! * default: sweep `N` seeds (64) across every oracle, running each LTL
//!   session seed in *both* transport modes (go-back-N and selective
//!   repeat); exit 1 and write the shrunk repro on the first failure.
//! * `--inject-bug`: plant a known protocol bug per mode (go-back-N: the
//!   engine silently loses one retransmission; selective repeat: the
//!   receiver truncates SACK bitmaps) — the sweep must fail.
//! * `--validate-oracle`: end-to-end self-test of the harness: inject
//!   each planted bug, verify the matching oracle catches it, shrink the
//!   fault plan, verify the repro is minimal (≤ 3 events) and replays
//!   byte-identically twice. CI runs this so a silently-blind oracle
//!   fails the lane.
//! * `--replay FILE`: re-run a written repro; exits 0 when the recorded
//!   violation reproduces (prints the identical report every time).
//!   Elastic-scheduler repros (`"kind": "elastic"`) are detected and
//!   dispatched automatically.
//! * `--elastic-only`: run only the elastic HaaS scheduler differential
//!   (real [`haas`] scheduler vs. the pure `simcheck` reference) — the
//!   CI `haas-elastic-smoke` lane. `--validate-oracle` additionally
//!   plants a defrag bug that drops tenant caps and requires the
//!   scheduler oracle to catch it and shrink the trace to ≤ 5 events.

use shell::ltl::LtlMode;
use simcheck::elastic::{run_elastic, run_elastic_events, ElasticRepro, ElasticSpec};
use simcheck::repro::{ReproMode, ReproSpec};
use simcheck::scenario::{run_scenario, ScenarioSpec};
use simcheck::session::{run_session, SessionSpec};
use simcheck::shrink::ddmin;
use simcheck::{dcqcn_ref, er_check, Violation};

/// Parses `--flag value` from the command line.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Canonical, deterministic failure report — replays diff this text.
fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out.push_str(&format!("total: {} violation(s)\n", violations.len()));
    out
}

/// Shrinks a failing session and writes the repro artifact.
fn shrink_session(spec: &SessionSpec, violations: &[Violation]) -> ReproSpec {
    let minimal = ddmin(&spec.plan.events, |events| {
        let mut probe = spec.clone();
        probe.plan.events = events.to_vec();
        !run_session(&probe).violations.is_empty()
    });
    let mut shrunk = spec.clone();
    shrunk.plan.events = minimal;
    let final_violations = run_session(&shrunk).violations;
    let caught = if final_violations.is_empty() {
        violations
    } else {
        &final_violations
    };
    ReproSpec::from_session(&shrunk, caught)
}

/// Shrinks a failing cluster scenario and writes the repro artifact.
fn shrink_scenario(spec: &ScenarioSpec, violations: &[Violation]) -> ReproSpec {
    let minimal = ddmin(&spec.plan.events, |events| {
        let mut probe = spec.clone();
        probe.plan.events = events.to_vec();
        !run_scenario(&probe).violations.is_empty()
    });
    let mut shrunk = spec.clone();
    shrunk.plan.events = minimal;
    let final_violations = run_scenario(&shrunk).violations;
    let caught = if final_violations.is_empty() {
        violations
    } else {
        &final_violations
    };
    ReproSpec::from_scenario(&shrunk, caught)
}

fn fail_with_repro(repro: ReproSpec, original_events: usize) -> ! {
    println!(
        "shrunk fault plan: {} -> {} event(s)",
        original_events,
        repro.events.len()
    );
    println!("first violation: {}", repro.first_violation);
    bench::write_raw("simcheck_repro.json", &repro.to_json());
    println!(
        "replay: cargo run -p bench --release --bin simcheck -- \
         --replay results/simcheck_repro.json"
    );
    std::process::exit(1);
}

fn replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    if text.contains("\"kind\": \"elastic\"") || text.contains("\"kind\":\"elastic\"") {
        let repro = ElasticRepro::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "replaying elastic case: seed {} boards {} events {}",
            repro.seed,
            repro.boards,
            repro.events.len()
        );
        let violations = repro.replay();
        print!("{}", render(&violations));
        if violations.is_empty() {
            println!("repro did NOT reproduce (fixed, or stale artifact)");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    let spec = ReproSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    println!(
        "replaying {} case: seed {} salt {} events {}",
        match spec.mode {
            ReproMode::Session => "session",
            ReproMode::Cluster => "cluster",
        },
        spec.seed,
        spec.salt,
        spec.events.len()
    );
    let violations = spec.replay();
    print!("{}", render(&violations));
    if violations.is_empty() {
        println!("repro did NOT reproduce (fixed, or stale artifact)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Shrinks a failing elastic lease trace and captures the repro.
fn shrink_elastic(spec: &ElasticSpec) -> ElasticRepro {
    let minimal = ddmin(&spec.events, |events| {
        !run_elastic_events(spec, events).violations.is_empty()
    });
    let violations = run_elastic_events(spec, &minimal).violations;
    ElasticRepro::capture(spec, &minimal, &violations)
}

fn fail_with_elastic_repro(spec: &ElasticSpec) -> ! {
    let repro = shrink_elastic(spec);
    println!(
        "shrunk lease trace: {} -> {} event(s)",
        spec.events.len(),
        repro.events.len()
    );
    println!("first violation: {}", repro.first_violation);
    bench::write_raw("simcheck_elastic_repro.json", &repro.to_json());
    println!(
        "replay: cargo run -p bench --release --bin simcheck -- \
         --replay results/simcheck_elastic_repro.json"
    );
    std::process::exit(1);
}

/// Validates the planted elastic-scheduler bug (a defrag move that drops
/// the migrated tenant's ER/LTL caps): the scheduler oracle must catch
/// it on some seed, shrink the lease trace to ≤ 5 events, and replay
/// byte-identically twice from its own artifact.
fn validate_elastic_bug(seeds: u64) -> bool {
    println!("validating oracle sensitivity: elastic defrag cap drop");
    for seed in 0..seeds {
        let mut spec = ElasticSpec::generate(seed);
        spec.plant_defrag_bug = true;
        let out = run_elastic(&spec);
        if out.violations.is_empty() {
            continue; // this seed's trace never triggered a defrag move
        }
        println!("caught on seed {seed}: {}", out.violations[0]);
        let repro = shrink_elastic(&spec);
        println!(
            "shrunk lease trace: {} -> {} event(s)",
            spec.events.len(),
            repro.events.len()
        );
        if repro.events.len() > 5 {
            println!(
                "FAIL: minimal repro has {} events (> 5)",
                repro.events.len()
            );
            return false;
        }
        let json = repro.to_json();
        bench::write_raw("simcheck_elastic_repro.json", &json);
        let parsed = ElasticRepro::parse(&json).expect("own artifact parses");
        let first = render(&parsed.replay());
        let second = render(&parsed.replay());
        if first != second || first.contains("total: 0") {
            println!("FAIL: replay is not byte-identical or lost the violation");
            print!("--- first ---\n{first}--- second ---\n{second}");
            return false;
        }
        println!("replay is byte-identical across two runs:");
        print!("{first}");
        return true;
    }
    println!("FAIL: elastic defrag cap drop evaded the oracle on {seeds} seeds");
    false
}

/// Validates one planted bug: it must be caught on some seed, shrink
/// small, and replay byte-identically twice from its own artifact.
fn validate_planted_bug(name: &str, seeds: u64, plant: &dyn Fn(&mut SessionSpec)) -> bool {
    println!("validating oracle sensitivity: {name}");
    for seed in 0..seeds {
        let mut spec = SessionSpec::generate(seed);
        plant(&mut spec);
        let out = run_session(&spec);
        if out.violations.is_empty() {
            continue; // this seed's plan never provoked the bug
        }
        println!("caught on seed {seed}: {}", out.violations[0]);
        let repro = shrink_session(&spec, &out.violations);
        println!(
            "shrunk fault plan: {} -> {} event(s)",
            spec.plan.events.len(),
            repro.events.len()
        );
        if repro.events.len() > 3 {
            println!(
                "FAIL: minimal repro has {} events (> 3)",
                repro.events.len()
            );
            return false;
        }
        let json = repro.to_json();
        bench::write_raw("simcheck_repro.json", &json);
        // The repro must replay byte-identically, twice, from its own
        // serialized form.
        let parsed = ReproSpec::parse(&json).expect("own artifact parses");
        let first = render(&parsed.replay());
        let second = render(&parsed.replay());
        if first != second || first.contains("total: 0") {
            println!("FAIL: replay is not byte-identical or lost the violation");
            print!("--- first ---\n{first}--- second ---\n{second}");
            return false;
        }
        println!("replay is byte-identical across two runs:");
        print!("{first}");
        return true;
    }
    println!("FAIL: {name} evaded the oracle on {seeds} seeds");
    false
}

/// Harness self-test over every planted bug, one per transport mode. A
/// blind oracle — one that would also wave through a buggy engine —
/// fails here, not in production.
fn validate_oracle(seeds: u64, elastic_only: bool) -> ! {
    let elastic_ok = validate_elastic_bug(seeds);
    if elastic_only {
        if elastic_ok {
            println!("oracle validation passed");
            std::process::exit(0);
        }
        std::process::exit(1);
    }
    let gbn_ok = validate_planted_bug("go-back-n retransmit loss", seeds, &|spec| {
        spec.lose_retransmits = 1;
    });
    let sr_ok = validate_planted_bug("selective-repeat sack omission", seeds, &|spec| {
        spec.mode = LtlMode::SelectiveRepeat;
        spec.omit_sacks = 4;
    });
    if gbn_ok && sr_ok && elastic_ok {
        println!("oracle validation passed");
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn main() {
    bench::header(
        "simcheck",
        "protocol oracles, invariant checkers and shrinking fuzzer",
    );

    if let Some(path) = arg_value("--replay") {
        replay(&path);
    }

    let quick = bench::quick_mode();
    let seeds: u64 = arg_value("--seeds")
        .map(|v| v.parse().expect("--seeds takes an integer"))
        .unwrap_or(64);
    let seed_base: u64 = arg_value("--seed-base")
        .map(|v| v.parse().expect("--seed-base takes an integer"))
        .unwrap_or(0);
    let inject_bug = flag("--inject-bug");
    let elastic_only = flag("--elastic-only");
    let (dcqcn_steps, er_ops) = if quick { (150, 150) } else { (500, 400) };
    let scenario_every = if quick { 8 } else { 4 };

    if flag("--validate-oracle") {
        validate_oracle(seeds.max(16), elastic_only);
    }

    let mut totals = (0u64, 0u64, 0u64); // events, checks, delivered
    let mut elastic_decisions = 0u64;
    for i in 0..seeds {
        let seed = seed_base + i;

        {
            let mut spec = ElasticSpec::generate(seed);
            if inject_bug {
                spec.plant_defrag_bug = true;
            }
            let out = run_elastic(&spec);
            totals.0 += spec.events.len() as u64;
            elastic_decisions += out.decisions;
            if !out.violations.is_empty() {
                println!("seed {seed}: elastic scheduler oracle fired");
                print!("{}", render(&out.violations));
                fail_with_elastic_repro(&spec);
            }
        }
        if elastic_only {
            continue;
        }

        let v = dcqcn_ref::check_dcqcn(seed, dcqcn_steps);
        if !v.is_empty() {
            println!("seed {seed}: DC-QCN differential oracle fired");
            print!("{}", render(&v));
            println!("replay: rerun with --seeds 1 --seed-base {seed}");
            std::process::exit(1);
        }

        let v = er_check::check_er(seed, er_ops);
        if !v.is_empty() {
            println!("seed {seed}: Elastic Router conservation oracle fired");
            print!("{}", render(&v));
            println!("replay: rerun with --seeds 1 --seed-base {seed}");
            std::process::exit(1);
        }

        for mode in [LtlMode::GoBackN, LtlMode::SelectiveRepeat] {
            let mut spec = SessionSpec::generate(seed).with_mode(mode);
            if inject_bug {
                match mode {
                    LtlMode::GoBackN => spec.lose_retransmits = 1,
                    LtlMode::SelectiveRepeat => spec.omit_sacks = 4,
                }
            }
            let out = run_session(&spec);
            totals.0 += out.events;
            totals.1 += out.checks;
            totals.2 += out.delivered;
            if !out.violations.is_empty() {
                println!("seed {seed} ({mode}): LTL differential oracle fired");
                print!("{}", render(&out.violations));
                let events = spec.plan.events.len();
                fail_with_repro(shrink_session(&spec, &out.violations), events);
            }
        }

        if i % scenario_every == 0 {
            let spec = ScenarioSpec::generate(seed);
            let out = run_scenario(&spec);
            totals.0 += out.events;
            totals.1 += out.checks;
            totals.2 += out.delivered;
            if !out.violations.is_empty() {
                println!("seed {seed}: cluster invariant oracle fired");
                print!("{}", render(&out.violations));
                let events = spec.plan.events.len();
                fail_with_repro(shrink_scenario(&spec, &out.violations), events);
            }
        }
    }

    if inject_bug {
        println!("FAIL: --inject-bug sweep finished clean; the oracle is blind");
        std::process::exit(1);
    }
    println!(
        "{seeds} seed(s) clean: {} events, {} oracle checks, {} deliveries, \
         {elastic_decisions} scheduler decisions",
        totals.0, totals.1, totals.2
    );
}
