//! Figure 6: 99th-percentile latency versus throughput of ranking on a
//! single server, software vs local FPGA. Paper: at the target 99th
//! percentile latency, the FPGA sustains 2.25x the software throughput.

use catapult::prelude::*;
use experiments::{fig06, RankingSweepParams};

fn main() {
    bench::header("Figure 6", "Ranking latency vs throughput (single box)");
    let params = if bench::quick_mode() {
        RankingSweepParams {
            queries_per_point: 20_000,
            loads: vec![0.5, 1.0, 1.5, 2.0, 2.25, 2.5, 3.0],
            ..RankingSweepParams::default()
        }
    } else {
        RankingSweepParams::default()
    };
    let curves = fig06(&params);
    println!("{}", curves.table());
    println!("paper: FPGA throughput gain at the p99 latency target = 2.25x");
    bench::write_json("fig06_ranking_single", &curves);
}
