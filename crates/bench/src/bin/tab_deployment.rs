//! Section II-B: the 5,760-server one-month deployment soak, reproduced by
//! failure injection at the paper's measured rates.

use catapult::prelude::*;
use experiments::deployment_table;

fn main() {
    bench::header("Section II-B", "Deployment soak failure statistics");
    let quick = bench::quick_mode();
    let seed = 0x000D_EB10_u64;
    let _ = quick;
    let t = deployment_table(5_760, 30.0, seed);
    println!("{}", t.table());
    println!(
        "loss fraction acceptable for production: {}",
        t.simulated.fpga_hard <= 8
    );
    bench::write_json("tab_deployment", &t);
}
