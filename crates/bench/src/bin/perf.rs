//! Engine-throughput microbenchmark: events/second through the `dcsim`
//! scheduler, against the binary-heap scheduler it replaced.
//!
//! Two workloads drive a fleet of self-rescheduling event chains:
//!
//! * `short_delay` — every event reschedules 0.1–1.1 µs out, the
//!   steady-state profile of the network substrate (NIC hops, switch
//!   traversals, LTL probes);
//! * `mixed_delay` — 90% short, 9% 10–100 µs, 1% 1–10 ms, the profile of
//!   a full ranking experiment (service times and open-loop arrivals on
//!   top of network events).
//!
//! The baseline is a verbatim replica of the `BinaryHeap` engine this
//! repository used before the calendar queue landed: same component
//! dispatch, same outbox, only the pending-event set differs. Results are
//! printed and written to `results/BENCH_dcsim.json`.

use catapult::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// Pending event chains (the steady-state queue depth).
const CHAINS: u64 = 1024;

#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Short,
    Mixed,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Short => "short_delay",
            Workload::Mixed => "mixed_delay",
        }
    }

    /// The next reschedule delay in nanoseconds.
    #[inline]
    fn delay_ns(self, r: u64) -> u64 {
        match self {
            Workload::Short => 100 + r % 1_000,
            Workload::Mixed => match r % 100 {
                0 => 1_000_000 + (r >> 8) % 9_000_000, // 1–10 ms
                1..=9 => 10_000 + (r >> 8) % 90_000,   // 10–100 µs
                _ => 100 + (r >> 8) % 1_000,           // 0.1–1.1 µs
            },
        }
    }
}

/// A self-rescheduling chain on the real `dcsim` engine. The message is
/// the number of events left in the chain.
struct Chain {
    rng: u64,
    workload: Workload,
}

impl Component<u64> for Chain {
    fn on_message(&mut self, left: u64, ctx: &mut Context<'_, u64>) {
        if left > 0 {
            let delay = self.workload.delay_ns(splitmix(&mut self.rng));
            ctx.send_to_self_after(SimDuration::from_nanos(delay), left - 1);
        }
    }
}

/// Events/second through the calendar-queue engine.
fn run_engine(workload: Workload, events_per_chain: u64) -> f64 {
    let mut e: Engine<u64> = Engine::new(7);
    for i in 0..CHAINS {
        let id = e.add_component(Chain {
            rng: 0xC0FFEE ^ i,
            workload,
        });
        e.schedule(SimTime::from_nanos(i), id, events_per_chain);
    }
    let start = Instant::now();
    e.run_to_idle();
    let elapsed = start.elapsed().as_secs_f64();
    e.events_processed() as f64 / elapsed
}

/// The binary-heap engine this repository used before the calendar
/// queue: kept verbatim (component slots, outbox, peek-then-pop loop) so
/// the comparison isolates the pending-event set.
mod heap_baseline {
    use super::{splitmix, Workload};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Scheduled {
        at: u64,
        seq: u64,
        dest: usize,
        msg: u64,
    }

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Scheduled {}
    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap and we want the earliest.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    struct Chain {
        rng: u64,
        workload: Workload,
    }

    pub struct HeapEngine {
        now: u64,
        seq: u64,
        queue: BinaryHeap<Scheduled>,
        components: Vec<Option<Box<Chain>>>,
        events_processed: u64,
    }

    impl HeapEngine {
        pub fn new(workload: Workload, chains: u64, events_per_chain: u64) -> Self {
            let mut e = HeapEngine {
                now: 0,
                seq: 0,
                queue: BinaryHeap::new(),
                components: Vec::new(),
                events_processed: 0,
            };
            for i in 0..chains {
                e.components.push(Some(Box::new(Chain {
                    rng: 0xC0FFEE ^ i,
                    workload,
                })));
                e.push(i, e.components.len() - 1, events_per_chain);
            }
            e
        }

        fn push(&mut self, at: u64, dest: usize, msg: u64) {
            self.queue.push(Scheduled {
                at,
                seq: self.seq,
                dest,
                msg,
            });
            self.seq += 1;
        }

        pub fn run_to_idle(&mut self) -> u64 {
            let mut outbox: Vec<(u64, usize, u64)> = Vec::new();
            while let Some(ev) = self.queue.pop() {
                self.now = ev.at;
                let mut component = self.components[ev.dest]
                    .take()
                    .expect("component is always returned after dispatch");
                if ev.msg > 0 {
                    let delay = component.workload.delay_ns(splitmix(&mut component.rng));
                    outbox.push((self.now + delay, ev.dest, ev.msg - 1));
                }
                self.components[ev.dest] = Some(component);
                for (at, dest, msg) in outbox.drain(..) {
                    self.push(at, dest, msg);
                }
                self.events_processed += 1;
            }
            self.events_processed
        }
    }
}

/// Events/second through the binary-heap baseline.
fn run_heap(workload: Workload, events_per_chain: u64) -> f64 {
    let mut e = heap_baseline::HeapEngine::new(workload, CHAINS, events_per_chain);
    let start = Instant::now();
    let events = e.run_to_idle();
    let elapsed = start.elapsed().as_secs_f64();
    events as f64 / elapsed
}

#[derive(Debug, Serialize)]
struct WorkloadResult {
    workload: String,
    heap_events_per_sec: f64,
    calendar_events_per_sec: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct PerfResult {
    chains: u64,
    events_per_workload: u64,
    workloads: Vec<WorkloadResult>,
}

fn main() {
    bench::header(
        "perf",
        "dcsim engine throughput: calendar queue vs binary heap",
    );
    let events_per_chain: u64 = if bench::quick_mode() { 400 } else { 4_000 };
    let total = CHAINS * (events_per_chain + 1);

    let mut results = Vec::new();
    for workload in [Workload::Short, Workload::Mixed] {
        // Warm-up pass at a tenth of the size, then the measured pass.
        run_heap(workload, events_per_chain / 10);
        run_engine(workload, events_per_chain / 10);
        let heap = run_heap(workload, events_per_chain);
        let calendar = run_engine(workload, events_per_chain);
        let speedup = calendar / heap;
        println!(
            "{:<12}  heap {:>12.0} ev/s   calendar {:>12.0} ev/s   speedup {:.2}x",
            workload.name(),
            heap,
            calendar,
            speedup
        );
        results.push(WorkloadResult {
            workload: workload.name().to_string(),
            heap_events_per_sec: heap,
            calendar_events_per_sec: calendar,
            speedup,
        });
    }

    let result = PerfResult {
        chains: CHAINS,
        events_per_workload: total,
        workloads: results,
    };
    bench::write_json("BENCH_dcsim", &result);
}
