//! Engine-throughput microbenchmark: events/second through the `dcsim`
//! scheduler, plus the full-stack cluster hot path.
//!
//! Three workloads:
//!
//! * `short_delay` — every event reschedules 0.1–1.1 µs out, the
//!   steady-state profile of the network substrate (NIC hops, switch
//!   traversals, LTL probes);
//! * `mixed_delay` — 90% short, 9% 10–100 µs, 1% 1–10 ms, the profile of
//!   a full ranking experiment (service times and open-loop arrivals on
//!   top of network events);
//! * `cluster` — a real fabric: LTL ping-pong sessions whose frames cross
//!   TOR→L1 (agg) and TOR→L1→L2 (spine) paths, exercising the switch,
//!   shell and LTL codec hot paths end to end.
//!
//! The chain workloads are compared against a verbatim replica of the
//! `BinaryHeap` engine this repository used before the calendar queue
//! landed. The cluster workload is compared against the pre-PR baseline
//! recorded in `crates/bench/data/cluster_baseline.json` (measured on the
//! commit before the zero-allocation hot-path rework).
//!
//! The binary runs under a counting global allocator, so every workload
//! also reports steady-state heap allocations per event (counted after a
//! warm-up phase). Results are printed and written to both
//! `results/BENCH_dcsim.json` and a root-level `BENCH_dcsim.json` with a
//! stable `{commit, events_per_sec, allocs_per_event, workloads[]}`
//! schema for per-PR perf tracking.

use bytes::Bytes;
use catapult::prelude::*;
use serde::Serialize;
use shell::ltl::SendConnId;
use shell::{LtlDeliver, ShellCmd};
use std::time::Instant;

/// Pending event chains (the steady-state queue depth).
const CHAINS: u64 = 1024;

/// A counting wrapper around the system allocator: measures how many
/// times the simulator round-trips the heap per event.
mod counted {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counts heap acquisitions (`alloc` and `realloc`); frees are not
    /// interesting for the steady-state-zero contract.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Heap acquisitions since process start.
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: counted::CountingAlloc = counted::CountingAlloc;

#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Short,
    Mixed,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Short => "short_delay",
            Workload::Mixed => "mixed_delay",
        }
    }

    /// The next reschedule delay in nanoseconds.
    #[inline]
    fn delay_ns(self, r: u64) -> u64 {
        match self {
            Workload::Short => 100 + r % 1_000,
            Workload::Mixed => match r % 100 {
                0 => 1_000_000 + (r >> 8) % 9_000_000, // 1–10 ms
                1..=9 => 10_000 + (r >> 8) % 90_000,   // 10–100 µs
                _ => 100 + (r >> 8) % 1_000,           // 0.1–1.1 µs
            },
        }
    }

    /// A horizon by which roughly the first twentieth of the chain run has
    /// executed: the warm-up slice excluded from allocation counting.
    fn warm_horizon(self, events_per_chain: u64) -> SimTime {
        let avg_delay_ns = match self {
            Workload::Short => 600,
            Workload::Mixed => 65_000,
        };
        SimTime::from_nanos(events_per_chain * avg_delay_ns / 20)
    }
}

/// A self-rescheduling chain on the real `dcsim` engine. The message is
/// the number of events left in the chain.
struct Chain {
    rng: u64,
    workload: Workload,
}

impl Component<u64> for Chain {
    fn on_message(&mut self, left: u64, ctx: &mut Context<'_, u64>) {
        if left > 0 {
            let delay = self.workload.delay_ns(splitmix(&mut self.rng));
            ctx.send_to_self_after(SimDuration::from_nanos(delay), left - 1);
        }
    }
}

fn chain_engine(workload: Workload, events_per_chain: u64) -> Engine<u64> {
    let mut e: Engine<u64> = Engine::new(7);
    for i in 0..CHAINS {
        let id = e.add_component(Chain {
            rng: 0xC0FFEE ^ i,
            workload,
        });
        e.schedule(SimTime::from_nanos(i), id, events_per_chain);
    }
    e
}

/// Events/second through the calendar-queue engine (whole run, matching
/// how the heap baseline is timed).
fn run_engine(workload: Workload, events_per_chain: u64) -> f64 {
    let mut e = chain_engine(workload, events_per_chain);
    let start = Instant::now();
    e.run_to_idle();
    let elapsed = start.elapsed().as_secs_f64();
    e.events_processed() as f64 / elapsed
}

/// Steady-state allocations/event through the calendar-queue engine: the
/// first twentieth of the run warms pools and bucket vectors, then the
/// remainder is counted.
fn run_engine_allocs(workload: Workload, events_per_chain: u64) -> f64 {
    let mut e = chain_engine(workload, events_per_chain);
    e.run_until(workload.warm_horizon(events_per_chain));
    let ev0 = e.events_processed();
    let a0 = counted::allocs();
    e.run_to_idle();
    let events = (e.events_processed() - ev0).max(1);
    (counted::allocs() - a0) as f64 / events as f64
}

/// The binary-heap engine this repository used before the calendar
/// queue: kept verbatim (component slots, outbox, peek-then-pop loop) so
/// the comparison isolates the pending-event set.
mod heap_baseline {
    use super::{splitmix, Workload};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Scheduled {
        at: u64,
        seq: u64,
        dest: usize,
        msg: u64,
    }

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Scheduled {}
    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap and we want the earliest.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    struct Chain {
        rng: u64,
        workload: Workload,
    }

    pub struct HeapEngine {
        now: u64,
        seq: u64,
        queue: BinaryHeap<Scheduled>,
        components: Vec<Option<Box<Chain>>>,
        events_processed: u64,
    }

    impl HeapEngine {
        pub fn new(workload: Workload, chains: u64, events_per_chain: u64) -> Self {
            let mut e = HeapEngine {
                now: 0,
                seq: 0,
                queue: BinaryHeap::new(),
                components: Vec::new(),
                events_processed: 0,
            };
            for i in 0..chains {
                e.components.push(Some(Box::new(Chain {
                    rng: 0xC0FFEE ^ i,
                    workload,
                })));
                e.push(i, e.components.len() - 1, events_per_chain);
            }
            e
        }

        fn push(&mut self, at: u64, dest: usize, msg: u64) {
            self.queue.push(Scheduled {
                at,
                seq: self.seq,
                dest,
                msg,
            });
            self.seq += 1;
        }

        pub fn run_to_idle(&mut self) -> u64 {
            let mut outbox: Vec<(u64, usize, u64)> = Vec::new();
            while let Some(ev) = self.queue.pop() {
                self.now = ev.at;
                let mut component = self.components[ev.dest]
                    .take()
                    .expect("component is always returned after dispatch");
                if ev.msg > 0 {
                    let delay = component.workload.delay_ns(splitmix(&mut component.rng));
                    outbox.push((self.now + delay, ev.dest, ev.msg - 1));
                }
                self.components[ev.dest] = Some(component);
                for (at, dest, msg) in outbox.drain(..) {
                    self.push(at, dest, msg);
                }
                self.events_processed += 1;
            }
            self.events_processed
        }
    }
}

/// Events/second through the binary-heap baseline.
fn run_heap(workload: Workload, events_per_chain: u64) -> f64 {
    let mut e = heap_baseline::HeapEngine::new(workload, CHAINS, events_per_chain);
    let start = Instant::now();
    let events = e.run_to_idle();
    let elapsed = start.elapsed().as_secs_f64();
    events as f64 / elapsed
}

/// One side of an LTL ping-pong pair: consumes deliveries at its shell
/// and answers with the next message until its budget is spent. Shared
/// by the single-engine and sharded cluster workloads.
struct Pinger {
    shell: ComponentId,
    conn: SendConnId,
    payload: Bytes,
    remaining: u64,
}

impl Component<Msg> for Pinger {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if msg.downcast::<LtlDeliver>().is_ok() && self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(
                self.shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: self.conn,
                    vc: 0,
                    payload: self.payload.clone(),
                }),
            );
        }
    }
}

/// One stage of a modelled RPC service pipeline.
struct ServiceTick;

/// An RPC handler model: each delivery starts a pipeline of service
/// ticks (self-events, `tick_gap` apart), and the reply leaves `delay`
/// after the pipeline drains — the component's declared pacing floor.
/// The tick chain is what adaptive windows feast on: ticks carry the
/// pacing excess, so a whole service pipeline merges into one window,
/// while fixed windows pay a barrier round per lookahead-sized slice.
struct PacedWorker {
    shell: ComponentId,
    conn: SendConnId,
    payload: Bytes,
    remaining: u64,
    delay: SimDuration,
    steps: u32,
    tick_gap: SimDuration,
    left: u32,
}

impl Component<Msg> for PacedWorker {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let msg = match msg.downcast::<LtlDeliver>() {
            Ok(_) => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    self.left = self.steps;
                    ctx.send_to_self_after(self.tick_gap, Msg::custom(ServiceTick));
                }
                return;
            }
            Err(other) => other,
        };
        if msg.downcast::<ServiceTick>().is_ok() {
            if self.left > 0 {
                self.left -= 1;
                ctx.send_to_self_after(self.tick_gap, Msg::custom(ServiceTick));
            } else {
                ctx.send_after(
                    self.delay,
                    self.shell,
                    Msg::custom(ShellCmd::LtlSend {
                        conn: self.conn,
                        vc: 0,
                        payload: self.payload.clone(),
                    }),
                );
            }
        }
    }
}

/// The full-stack cluster workload: LTL ping-pong sessions over a real
/// fabric, crossing the L1 (agg) and L2 (spine) tiers.
mod cluster_workload {
    use super::*;

    pub struct ClusterRun {
        pub events: u64,
        pub events_per_sec: f64,
        pub allocs_per_event: f64,
        /// Serialized metrics snapshot: the determinism fingerprint.
        pub fingerprint: String,
    }

    /// Runs the cluster workload once and measures its steady state (the
    /// first 200 µs of simulated time warm the pools and queues).
    pub fn run(seed: u64, msgs_per_pair: u64) -> ClusterRun {
        let shape = FabricShape {
            hosts_per_tor: 4,
            tors_per_pod: 4,
            pods: 2,
            spines: 2,
        };
        let mut cluster = ClusterBuilder::new(seed)
            .fabric_config(&calib::fabric_config(shape))
            .shell_config(calib::shell_config())
            .build();
        // Two rack-crossing pairs (TOR→agg→TOR) and two pod-crossing
        // pairs (TOR→agg→spine→agg→TOR).
        let pairs = [
            (NodeAddr::new(0, 0, 0), NodeAddr::new(0, 1, 0)),
            (NodeAddr::new(0, 2, 0), NodeAddr::new(0, 3, 0)),
            (NodeAddr::new(0, 0, 1), NodeAddr::new(1, 0, 0)),
            (NodeAddr::new(0, 1, 1), NodeAddr::new(1, 2, 0)),
        ];
        // 4 KiB messages segment into multiple MTU-sized LTL frames.
        let payload = Bytes::from(vec![0xA5u8; 4 * 1024]);
        for &(a, b) in &pairs {
            let a_shell = cluster.add_shell(a);
            let b_shell = cluster.add_shell(b);
            let (a_send, b_send, _, _) = cluster.connect_pair(a, b);
            let a_pinger = cluster.engine_mut().add_component(Pinger {
                shell: a_shell,
                conn: a_send,
                payload: payload.clone(),
                remaining: msgs_per_pair,
            });
            let b_pinger = cluster.engine_mut().add_component(Pinger {
                shell: b_shell,
                conn: b_send,
                payload: payload.clone(),
                remaining: msgs_per_pair,
            });
            cluster.set_consumer(a, a_pinger);
            cluster.set_consumer(b, b_pinger);
            cluster.engine_mut().schedule(
                SimTime::ZERO,
                a_shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: a_send,
                    vc: 0,
                    payload: payload.clone(),
                }),
            );
        }
        cluster.run_for(SimDuration::from_micros(200));
        let ev0 = cluster.engine().events_processed();
        let a0 = counted::allocs();
        let start = Instant::now();
        cluster.run_to_idle();
        let elapsed = start.elapsed().as_secs_f64();
        let events = cluster.engine().events_processed() - ev0;
        ClusterRun {
            events,
            events_per_sec: events as f64 / elapsed,
            allocs_per_event: (counted::allocs() - a0) as f64 / events.max(1) as f64,
            fingerprint: cluster.metrics_snapshot().to_json_pretty(),
        }
    }
}

/// The sharded cluster workload: a denser multi-pod fabric, LTL pairs
/// volleying inside racks, across racks, and across pods, executed on
/// the conservative time-window sharded engine. The same build run at
/// 1 shard is the baseline: the shard count must change throughput only,
/// never the fingerprint.
mod parallel_cluster_workload {
    use super::*;

    pub struct ParallelRun {
        pub shards: u32,
        /// Worker threads the run actually used: `min(shards, cores)`.
        pub workers: u32,
        /// Barrier rounds (= synchronization windows) the run executed.
        pub rounds: u64,
        /// Per-shard window counters, summed.
        pub sync: ShardSyncStats,
        pub events: u64,
        pub events_per_sec: f64,
        pub allocs_per_event: f64,
        pub fingerprint: String,
    }

    /// Folds the per-shard sync counters into one row-friendly total.
    pub fn sum_sync(stats: &[ShardSyncStats]) -> ShardSyncStats {
        let mut total = ShardSyncStats::default();
        for s in stats {
            total.windows_run += s.windows_run;
            total.windows_fast_forwarded += s.windows_fast_forwarded;
            total.window_extensions += s.window_extensions;
            total.cut_events += s.cut_events;
        }
        total
    }

    /// Builds and runs the workload on `shards` shards.
    pub fn run(seed: u64, msgs_per_pair: u64, shards: u32) -> ParallelRun {
        let shape = FabricShape {
            hosts_per_tor: 6,
            tors_per_pod: 4,
            pods: 4,
            spines: 2,
        };
        let mut cluster = ClusterBuilder::new(seed)
            .fabric_config(&calib::fabric_config(shape))
            .shell_config(calib::shell_config())
            .build();
        // Eight rack-crossing pairs per pod plus two pod-crossing pairs
        // per pod: every shard has plenty of local work per time window
        // and every partition cut carries traffic.
        let mut pairs = Vec::new();
        for pod in 0..4 {
            for host in 0..4 {
                pairs.push((
                    NodeAddr::new(pod, host % 2, host),
                    NodeAddr::new(pod, 2 + host % 2, host),
                ));
                pairs.push((
                    NodeAddr::new(pod, (host + 1) % 2, host),
                    NodeAddr::new(pod, 2 + (host + 1) % 2, host),
                ));
            }
            pairs.push((NodeAddr::new(pod, 0, 4), NodeAddr::new((pod + 1) % 4, 1, 4)));
            pairs.push((NodeAddr::new(pod, 2, 4), NodeAddr::new((pod + 2) % 4, 3, 4)));
        }
        let payload = Bytes::from(vec![0xA5u8; 4 * 1024]);
        for &(a, b) in &pairs {
            let a_shell = cluster.add_shell(a);
            let b_shell = cluster.add_shell(b);
            let (a_send, b_send, _, _) = cluster.connect_pair(a, b);
            let a_pinger = cluster.add_component_at(
                a,
                Pinger {
                    shell: a_shell,
                    conn: a_send,
                    payload: payload.clone(),
                    remaining: msgs_per_pair,
                },
            );
            let b_pinger = cluster.add_component_at(
                b,
                Pinger {
                    shell: b_shell,
                    conn: b_send,
                    payload: payload.clone(),
                    remaining: msgs_per_pair,
                },
            );
            cluster.set_consumer(a, a_pinger);
            cluster.set_consumer(b, b_pinger);
            cluster.engine_mut().schedule(
                SimTime::ZERO,
                a_shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: a_send,
                    vc: 0,
                    payload: payload.clone(),
                }),
            );
        }
        let got = cluster.shard(shards);
        assert_eq!(got, shards, "16 racks should accommodate {shards} shards");
        cluster.run_for(SimDuration::from_micros(200));
        let a0 = counted::allocs();
        let start = Instant::now();
        let events = cluster.run_to_idle();
        let elapsed = start.elapsed().as_secs_f64();
        ParallelRun {
            shards: got,
            workers: cluster.effective_workers() as u32,
            rounds: cluster.sync_rounds(),
            sync: sum_sync(&cluster.sync_stats()),
            events,
            events_per_sec: events as f64 / elapsed,
            allocs_per_event: (counted::allocs() - a0) as f64 / events.max(1) as f64,
            fingerprint: cluster.metrics_snapshot().to_json_pretty(),
        }
    }
}

/// The bursty sharded workload: paced RPC pairs (a declared 2 µs reply
/// floor) whose traffic arrives in short bursts separated by idle gaps.
/// Fixed lookahead-sized windows burn a barrier round every ~100 ns of
/// burst; adaptive windows stretch across each burst and fast-forward
/// over the gaps, so the same event stream takes a fraction of the
/// rounds. Fixed vs adaptive at the same seed is the headline adaptive-
/// window speedup, and their fingerprints must match byte for byte.
mod bursty_cluster_workload {
    use super::*;
    pub use parallel_cluster_workload::{sum_sync, ParallelRun};

    /// Runs the bursty workload on `shards` shards under `policy`.
    pub fn run(seed: u64, msgs_per_pair: u64, shards: u32, policy: WindowPolicy) -> ParallelRun {
        let mut cluster = ClusterBuilder::paper(seed, 2).build();
        let delay = SimDuration::from_micros(2);
        // Rack-crossing and pod-crossing paced pairs: every shard owns
        // traffic, every cut carries frames, and the declared reply floor
        // keeps the event stream bursty.
        let pairs = [
            (NodeAddr::new(0, 0, 1), NodeAddr::new(0, 6, 2)),
            (NodeAddr::new(0, 3, 3), NodeAddr::new(1, 4, 4)),
            (NodeAddr::new(1, 1, 5), NodeAddr::new(1, 9, 6)),
            (NodeAddr::new(1, 7, 7), NodeAddr::new(0, 9, 8)),
        ];
        // Single-frame messages: the network burst stays short, so the
        // run alternates between in-flight frames and in-service tick
        // pipelines — the profile adaptive windows are built for.
        let payload = Bytes::from(vec![0x5Au8; 512]);
        let steps = 32;
        let tick_gap = SimDuration::from_nanos(100);
        let mut kicked = 0u32;
        for &(a, b) in &pairs {
            let a_shell = cluster.add_shell(a);
            let b_shell = cluster.add_shell(b);
            let (a_send, b_send, _, _) = cluster.connect_pair(a, b);
            let a_pinger = cluster.add_paced_component_at(
                a,
                PacedWorker {
                    shell: a_shell,
                    conn: a_send,
                    payload: payload.clone(),
                    remaining: msgs_per_pair,
                    delay,
                    steps,
                    tick_gap,
                    left: 0,
                },
                delay,
            );
            let b_pinger = cluster.add_paced_component_at(
                b,
                PacedWorker {
                    shell: b_shell,
                    conn: b_send,
                    payload: payload.clone(),
                    remaining: msgs_per_pair,
                    delay,
                    steps,
                    tick_gap,
                    left: 0,
                },
                delay,
            );
            cluster.set_consumer(a, a_pinger);
            cluster.set_consumer(b, b_pinger);
            // Staggered kickoffs desynchronize the pairs: their tick
            // pipelines interleave instead of sharing window slices.
            cluster.engine_mut().schedule(
                SimTime::from_nanos(137 * (1 + kicked as u64)),
                a_shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: a_send,
                    vc: 0,
                    payload: payload.clone(),
                }),
            );
            kicked += 1;
        }
        let got = cluster.shard(shards);
        assert_eq!(got, shards, "20 racks should accommodate {shards} shards");
        cluster.set_window_policy(policy);
        cluster.run_for(SimDuration::from_micros(200));
        let a0 = counted::allocs();
        let start = Instant::now();
        let events = cluster.run_to_idle();
        let elapsed = start.elapsed().as_secs_f64();
        ParallelRun {
            shards: got,
            workers: cluster.effective_workers() as u32,
            rounds: cluster.sync_rounds(),
            sync: sum_sync(&cluster.sync_stats()),
            events,
            events_per_sec: events as f64 / elapsed,
            allocs_per_event: (counted::allocs() - a0) as f64 / events.max(1) as f64,
            fingerprint: cluster.metrics_snapshot().to_json_pretty(),
        }
    }
}

/// Extracts a top-level numeric field from a small JSON document without
/// a deserializer (the vendored serde stub only serializes).
fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let idx = text.find(&pat)?;
    let rest = text[idx + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The pre-PR cluster baseline, recorded in-repo when the workload was
/// introduced (before the zero-allocation hot-path rework).
fn cluster_baseline(quick: bool) -> Option<(f64, f64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/cluster_baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    let suffix = if quick { "quick" } else { "full" };
    Some((
        json_f64_field(&text, &format!("events_per_sec_{suffix}"))?,
        json_f64_field(&text, &format!("allocs_per_event_{suffix}"))?,
    ))
}

fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

#[derive(Debug, Serialize)]
struct WorkloadResult {
    workload: String,
    /// Shards the measured run executed on (1 = single-threaded engine).
    shards: u32,
    /// Worker threads actually used: `min(shards, cores)`. A speedup
    /// column is only a parallelism claim when this matches `shards`;
    /// on fewer cores the sharded run measures window overhead instead.
    shards_effective: u32,
    /// Barrier rounds (synchronization windows) the measured run took.
    sync_rounds: u64,
    /// Summed per-shard window counters for the measured run (all zero
    /// for single-threaded workloads).
    windows_run: u64,
    windows_fast_forwarded: u64,
    window_extensions: u64,
    cut_events: u64,
    baseline_events_per_sec: f64,
    events_per_sec: f64,
    speedup: f64,
    allocs_per_event: f64,
}

impl WorkloadResult {
    /// A row for a single-threaded workload: no shards, no windows.
    fn single(workload: &str, baseline: f64, current: f64, speedup: f64, allocs: f64) -> Self {
        WorkloadResult {
            workload: workload.to_string(),
            shards: 1,
            shards_effective: 1,
            sync_rounds: 0,
            windows_run: 0,
            windows_fast_forwarded: 0,
            window_extensions: 0,
            cut_events: 0,
            baseline_events_per_sec: baseline,
            events_per_sec: current,
            speedup,
            allocs_per_event: allocs,
        }
    }

    /// A row for a sharded workload, carrying its sync accounting.
    fn sharded(
        workload: &str,
        run: &parallel_cluster_workload::ParallelRun,
        baseline: f64,
        speedup: f64,
    ) -> Self {
        WorkloadResult {
            workload: workload.to_string(),
            shards: run.shards,
            shards_effective: run.workers,
            sync_rounds: run.rounds,
            windows_run: run.sync.windows_run,
            windows_fast_forwarded: run.sync.windows_fast_forwarded,
            window_extensions: run.sync.window_extensions,
            cut_events: run.sync.cut_events,
            baseline_events_per_sec: baseline,
            events_per_sec: run.events_per_sec,
            speedup,
            allocs_per_event: run.allocs_per_event,
        }
    }
}

#[derive(Debug, Serialize)]
struct PerfResult {
    commit: String,
    /// Headline number: events/sec on the cluster workload.
    events_per_sec: f64,
    /// Headline number: steady-state allocations/event on the cluster
    /// workload.
    allocs_per_event: f64,
    chains: u64,
    events_per_workload: u64,
    workloads: Vec<WorkloadResult>,
}

fn main() {
    bench::header(
        "perf",
        "dcsim engine + cluster hot-path throughput and allocation profile",
    );
    let quick = bench::quick_mode();
    let events_per_chain: u64 = if quick { 400 } else { 4_000 };
    let msgs_per_pair: u64 = if quick { 300 } else { 3_000 };
    let total = CHAINS * (events_per_chain + 1);

    let mut results = Vec::new();
    for workload in [Workload::Short, Workload::Mixed] {
        // Warm-up pass at a tenth of the size, then the measured pass.
        run_heap(workload, events_per_chain / 10);
        run_engine(workload, events_per_chain / 10);
        let heap = run_heap(workload, events_per_chain);
        let calendar = run_engine(workload, events_per_chain);
        let allocs_per_event = run_engine_allocs(workload, events_per_chain);
        let speedup = calendar / heap;
        println!(
            "{:<12}  heap {:>12.0} ev/s   calendar {:>12.0} ev/s   speedup {:.2}x   allocs/ev {:.4}",
            workload.name(),
            heap,
            calendar,
            speedup,
            allocs_per_event,
        );
        results.push(WorkloadResult::single(
            workload.name(),
            heap,
            calendar,
            speedup,
            allocs_per_event,
        ));
    }

    // Cluster workload: warm-up pass, then best-of-3 measured runs. The
    // workload is deterministic (identical fingerprints are asserted), so
    // the repeats time the exact same computation and the best one is the
    // least scheduler-contended measurement.
    cluster_workload::run(3, msgs_per_pair / 10);
    let mut cluster = cluster_workload::run(3, msgs_per_pair);
    for _ in 0..2 {
        let rerun = cluster_workload::run(3, msgs_per_pair);
        assert_eq!(
            rerun.fingerprint, cluster.fingerprint,
            "same-seed cluster runs diverged"
        );
        if rerun.events_per_sec > cluster.events_per_sec {
            cluster = rerun;
        }
    }
    let (base_eps, base_ape) = cluster_baseline(quick).unwrap_or((0.0, 0.0));
    let cluster_speedup = if base_eps > 0.0 {
        cluster.events_per_sec / base_eps
    } else {
        0.0
    };
    println!(
        "{:<12}  base {:>12.0} ev/s   current  {:>12.0} ev/s   speedup {:.2}x   allocs/ev {:.4}  ({} events)",
        "cluster", base_eps, cluster.events_per_sec, cluster_speedup, cluster.allocs_per_event, cluster.events,
    );
    if base_ape > 0.0 {
        println!(
            "{:<12}  baseline allocs/ev {:.4} -> current {:.4}",
            "", base_ape, cluster.allocs_per_event
        );
    }

    // Determinism proof: the same seed must yield a byte-identical
    // metrics dump from an independent run.
    let d1 = cluster_workload::run(11, msgs_per_pair / 10);
    let d2 = cluster_workload::run(11, msgs_per_pair / 10);
    if d1.fingerprint == d2.fingerprint && d1.events == d2.events {
        println!("determinism   same-seed metrics dumps byte-identical ok");
    } else {
        eprintln!("FAIL: same-seed cluster runs diverged");
        std::process::exit(1);
    }

    results.push(WorkloadResult::single(
        "cluster",
        base_eps,
        cluster.events_per_sec,
        cluster_speedup,
        cluster.allocs_per_event,
    ));

    // Sharded cluster workload: the same build on the conservative
    // parallel engine, 1-shard run as the baseline. `CATAPULT_SHARDS`
    // overrides the shard count (default 4). The shard count must not
    // change results: the fingerprints are asserted byte-identical, so
    // the speedup column measures pure execution-mode throughput. The
    // workers are capped at the machine's cores — on a single-core host
    // the sharded run degenerates to a barrier-overhead measurement.
    let shards = catapult::env_shards().unwrap_or(4);
    parallel_cluster_workload::run(5, msgs_per_pair / 10, shards); // warm-up
                                                                   // Both sides are best-of-3 — an asymmetric estimator would let one
                                                                   // interference spike on either side swing the reported ratio.
    let mut single = parallel_cluster_workload::run(5, msgs_per_pair, 1);
    let mut multi = parallel_cluster_workload::run(5, msgs_per_pair, shards);
    for _ in 0..2 {
        let rerun = parallel_cluster_workload::run(5, msgs_per_pair, 1);
        if rerun.events_per_sec > single.events_per_sec {
            single = rerun;
        }
        let rerun = parallel_cluster_workload::run(5, msgs_per_pair, shards);
        if rerun.events_per_sec > multi.events_per_sec {
            multi = rerun;
        }
    }
    if single.fingerprint != multi.fingerprint || single.events != multi.events {
        eprintln!(
            "FAIL: {}-shard run diverged from the 1-shard baseline",
            multi.shards
        );
        std::process::exit(1);
    }
    let parallel_speedup = multi.events_per_sec / single.events_per_sec.max(1.0);
    println!(
        "{:<12}  1-shard {:>11.0} ev/s   {}-shard  {:>11.0} ev/s   speedup {:.2}x   allocs/ev {:.4}  ({} events, {} workers on {} cores, {} rounds)",
        "parallel",
        single.events_per_sec,
        multi.shards,
        multi.events_per_sec,
        parallel_speedup,
        multi.allocs_per_event,
        multi.events,
        multi.workers,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        multi.rounds,
    );
    println!(
        "determinism   1-shard and {}-shard fingerprints byte-identical ok",
        multi.shards
    );
    results.push(WorkloadResult::sharded(
        "parallel_cluster",
        &multi,
        single.events_per_sec,
        parallel_speedup,
    ));

    // Bursty sharded workload: fixed vs adaptive windows at the same
    // seed and shard count. The policy must not change a byte of the
    // fingerprint (also cross-checked against a 1-shard run); the
    // speedup column isolates what adaptive window sizing buys on an
    // idle-heavy event stream. Best-of-3 on both sides.
    let bursty_msgs = msgs_per_pair / 2;
    bursty_cluster_workload::run(9, bursty_msgs / 10, shards, WindowPolicy::adaptive()); // warm-up
    let baseline1 = bursty_cluster_workload::run(9, bursty_msgs, 1, WindowPolicy::fixed());
    let mut fixed = bursty_cluster_workload::run(9, bursty_msgs, shards, WindowPolicy::fixed());
    let mut adaptive =
        bursty_cluster_workload::run(9, bursty_msgs, shards, WindowPolicy::adaptive());
    for _ in 0..2 {
        let rerun = bursty_cluster_workload::run(9, bursty_msgs, shards, WindowPolicy::fixed());
        if rerun.events_per_sec > fixed.events_per_sec {
            fixed = rerun;
        }
        let rerun = bursty_cluster_workload::run(9, bursty_msgs, shards, WindowPolicy::adaptive());
        if rerun.events_per_sec > adaptive.events_per_sec {
            adaptive = rerun;
        }
    }
    if fixed.fingerprint != adaptive.fingerprint
        || baseline1.fingerprint != adaptive.fingerprint
        || fixed.events != adaptive.events
    {
        eprintln!("FAIL: bursty fingerprints diverged across window policies or shard counts");
        std::process::exit(1);
    }
    let bursty_speedup = adaptive.events_per_sec / fixed.events_per_sec.max(1.0);
    println!(
        "{:<12}  fixed {:>13.0} ev/s   adaptive {:>12.0} ev/s   speedup {:.2}x   allocs/ev {:.4}  ({} events)",
        "bursty",
        fixed.events_per_sec,
        adaptive.events_per_sec,
        bursty_speedup,
        adaptive.allocs_per_event,
        adaptive.events,
    );
    println!(
        "{:<12}  rounds fixed {} -> adaptive {}   extensions {}   fast-forwards {}   cut events {}",
        "",
        fixed.rounds,
        adaptive.rounds,
        adaptive.sync.window_extensions,
        adaptive.sync.windows_fast_forwarded,
        adaptive.sync.cut_events,
    );
    println!(
        "determinism   bursty fixed/adaptive/{}-shard/1-shard fingerprints byte-identical ok",
        adaptive.shards
    );
    results.push(WorkloadResult::sharded(
        "parallel_cluster_bursty",
        &adaptive,
        fixed.events_per_sec,
        bursty_speedup,
    ));
    if std::env::args().any(|a| a == "--check-win") && bursty_speedup < 1.5 {
        eprintln!(
            "FAIL: adaptive windows won only {bursty_speedup:.2}x over fixed on the bursty \
             workload (gate: 1.5x)"
        );
        std::process::exit(1);
    }

    let result = PerfResult {
        commit: current_commit(),
        events_per_sec: cluster.events_per_sec,
        allocs_per_event: cluster.allocs_per_event,
        chains: CHAINS,
        events_per_workload: total,
        workloads: results,
    };
    bench::write_json("BENCH_dcsim", &result);
    // Root-level copy with the same stable schema, so per-PR perf
    // tracking can read it straight from the work tree.
    match serde_json::to_string_pretty(&result) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_dcsim.json", json) {
                eprintln!("warning: cannot write BENCH_dcsim.json: {e}");
            } else {
                eprintln!("wrote BENCH_dcsim.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise BENCH_dcsim.json: {e}"),
    }
}
