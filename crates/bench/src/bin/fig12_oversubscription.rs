//! Figure 12: average/p95/p99 latency to a remote DNN accelerator pool as
//! the client-to-FPGA oversubscription ratio grows, normalised to
//! locally-attached performance. Paper at 1:1: +1% average, +4.7% p95,
//! +32% p99; saturation at ~22.5 clients per FPGA.

use catapult::prelude::*;
use experiments::{fig12, Fig12Params};

fn main() {
    bench::header("Figure 12", "Remote DNN pool oversubscription");
    let params = if bench::quick_mode() {
        Fig12Params {
            accelerators: 4,
            requests_per_client: 1_500,
            ..Fig12Params::default()
        }
    } else {
        Fig12Params::default()
    };
    let result = fig12::run(&params);
    println!("{}", result.table());

    // Saturation probe with a small pool so the client count stays sane.
    println!("saturation probe (2 accelerators):");
    let sat = fig12::run(&Fig12Params {
        accelerators: 2,
        ratios: vec![8.0, 14.0, 18.0, 20.0, 22.0, 24.0],
        requests_per_client: if bench::quick_mode() { 800 } else { 2_000 },
        seed: 0xF161_25A0,
        ..params.clone()
    });
    println!("{}", sat.table());
    println!("paper: +1%/+4.7%/+32% at 1:1; latencies spike near 22.5 clients/FPGA");
    bench::write_json("fig12_oversubscription", &result);
    bench::write_json("fig12_saturation", &sat);
}
