//! Transport A/B lane: the same workload driven through both LTL
//! retransmission modes — paper go-back-N with its fixed 50 µs timeout,
//! and selective repeat with the adaptive RFC 6298 RTO — over a shared
//! bottleneck link, and compared head to head.
//!
//! ```text
//! ltl_ab [--quick] [--seed N] [--check-win]
//! ```
//!
//! Three scenarios, each run in both modes from the same seed:
//!
//! * `incast`: eight senders burst into one receiver behind a 5 Gbit/s
//!   bottleneck. Queueing delay alone exceeds the fixed go-back-N
//!   timeout, so GBN re-injects its whole window every round; selective
//!   repeat pays the same price once, then its RTO adapts to the
//!   measured queueing RTT.
//! * `lossy`: a 3 % i.i.d. lossy link. A single drop costs GBN its
//!   entire outstanding window; selective repeat retransmits exactly the
//!   missing frame and delivers the buffered remainder on arrival.
//! * `cross-dc`: 300 µs one-way latency with light loss. The 50 µs
//!   fixed timeout sits far below the 600 µs RTT, so GBN retransmits
//!   every frame several times before its first ack can possibly
//!   arrive; the adaptive RTO converges on the real RTT after one
//!   exchange.
//!
//! Everything is seeded and event-driven, so a repeated run with the
//! same seed produces a byte-identical `results/ltl_ab.json` — CI diffs
//! two runs to pin determinism, and `--check-win` fails the lane unless
//! selective repeat beats go-back-N on goodput or p99 latency in at
//! least one scenario.

use bytes::Bytes;
use dcnet::{Msg, NetEvent, NodeAddr, PortId};
use dcsim::{Component, ComponentId, Context, Engine, SimDuration, SimRng, SimTime};
use serde::Serialize;
use shell::ltl::{LtlConfig, LtlEngine, LtlEvent, LtlMode, Poll};

const TIMER_TICK: u64 = 1;
const TIMER_POLL: u64 = 2;

/// Retransmission-timer granularity of every endpoint.
const TICK: SimDuration = SimDuration::from_micros(10);
/// Ethernet/IP/UDP framing bytes added to each LTL frame on the wire.
const WIRE_OVERHEAD: usize = 42;

/// Command scheduled at a sender: submit one message.
struct SendCmd {
    counter: u64,
}

/// One sending endpoint: a real LTL engine pumped the way the shell
/// pumps it (poll loop plus retransmission tick).
struct Sender {
    ltl: LtlEngine,
    link: ComponentId,
    msg_len: usize,
    tick_armed: bool,
    poll_armed: bool,
}

impl Sender {
    fn pump(&mut self, ctx: &mut Context<'_, Msg>) {
        loop {
            match self.ltl.poll(ctx.now()) {
                Poll::Ready(pkt) => ctx.send(self.link, Msg::packet(pkt, PortId(0))),
                Poll::Later(t) => {
                    if !self.poll_armed {
                        self.poll_armed = true;
                        ctx.timer_after(t.saturating_since(ctx.now()), TIMER_POLL);
                    }
                    break;
                }
                Poll::Empty => break,
            }
        }
    }

    fn ensure_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.tick_armed && self.ltl.in_flight() > 0 {
            self.tick_armed = true;
            ctx.timer_after(TICK, TIMER_TICK);
        }
    }
}

impl Component<Msg> for Sender {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Net(NetEvent::Packet { pkt, .. }) => {
                self.ltl.on_packet(&pkt, ctx.now());
            }
            Msg::Custom(any) => {
                if let Ok(cmd) = any.downcast::<SendCmd>() {
                    // Head of the payload carries the message counter and
                    // its submit time, so the receiver measures latency
                    // without any state shared outside the wire.
                    let mut payload = vec![0u8; self.msg_len];
                    payload[..8].copy_from_slice(&cmd.counter.to_be_bytes());
                    payload[8..16].copy_from_slice(&ctx.now().as_nanos().to_be_bytes());
                    let _ = self.ltl.send_message(0, 0, Bytes::from(payload));
                }
            }
            _ => {}
        }
        self.pump(ctx);
        self.ensure_tick(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Msg>) {
        match token {
            TIMER_TICK => {
                self.tick_armed = false;
                self.ltl.on_tick(ctx.now());
            }
            TIMER_POLL => self.poll_armed = false,
            _ => {}
        }
        self.pump(ctx);
        self.ensure_tick(ctx);
    }
}

/// The receiving endpoint: reassembles messages and records per-message
/// latency from the submit timestamp embedded in each payload.
struct Receiver {
    ltl: LtlEngine,
    link: ComponentId,
    poll_armed: bool,
    latencies_ns: Vec<u64>,
    delivered_bytes: u64,
    last_delivery: SimTime,
}

impl Receiver {
    fn pump(&mut self, ctx: &mut Context<'_, Msg>) {
        loop {
            match self.ltl.poll(ctx.now()) {
                Poll::Ready(pkt) => ctx.send(self.link, Msg::packet(pkt, PortId(0))),
                Poll::Later(t) => {
                    if !self.poll_armed {
                        self.poll_armed = true;
                        ctx.timer_after(t.saturating_since(ctx.now()), TIMER_POLL);
                    }
                    break;
                }
                Poll::Empty => break,
            }
        }
    }
}

impl Component<Msg> for Receiver {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, .. }) = msg {
            for ev in self.ltl.on_packet(&pkt, ctx.now()) {
                if let LtlEvent::Deliver { payload, .. } = ev {
                    if payload.len() >= 16 {
                        let mut ts = [0u8; 8];
                        ts.copy_from_slice(&payload[8..16]);
                        let submitted = u64::from_be_bytes(ts);
                        self.latencies_ns
                            .push(ctx.now().as_nanos().saturating_sub(submitted));
                    }
                    self.delivered_bytes += payload.len() as u64;
                    self.last_delivery = ctx.now();
                }
            }
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, Msg>) {
        if token == TIMER_POLL {
            self.poll_armed = false;
        }
        self.pump(ctx);
    }
}

/// The network between the senders and the receiver: fixed one-way
/// latency each direction, seeded i.i.d. loss, and FIFO serialisation at
/// a bottleneck in front of the receiver so incast builds a real queue.
struct Link {
    receiver: ComponentId,
    recv_addr: NodeAddr,
    senders: Vec<(NodeAddr, ComponentId)>,
    one_way: SimDuration,
    loss_ppm: u32,
    bandwidth_bps: f64,
    free_at: SimTime,
    rng: SimRng,
    drops: u64,
}

impl Component<Msg> for Link {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Msg::Net(NetEvent::Packet { pkt, .. }) = msg else {
            return;
        };
        if self.loss_ppm > 0 && self.rng.chance(self.loss_ppm as f64 / 1e6) {
            self.drops += 1;
            return;
        }
        let now = ctx.now();
        if pkt.dst == self.recv_addr {
            // Propagation, then the shared bottleneck: a frame starts
            // serialising when it arrives and the line is free.
            let bits = ((pkt.payload.len() + WIRE_OVERHEAD) * 8) as f64;
            let ser = SimDuration::from_secs_f64(bits / self.bandwidth_bps);
            let earliest = now + self.one_way;
            let start = if self.free_at > earliest {
                self.free_at
            } else {
                earliest
            };
            let arrival = start + ser;
            self.free_at = arrival;
            ctx.send_after(
                arrival.saturating_since(now),
                self.receiver,
                Msg::packet(pkt, PortId(0)),
            );
        } else if let Some(&(_, id)) = self.senders.iter().find(|(a, _)| *a == pkt.dst) {
            // Ack path: plain propagation, no bottleneck.
            ctx.send_after(self.one_way, id, Msg::packet(pkt, PortId(0)));
        }
    }
}

/// One A/B scenario: a workload plus the link it runs over.
struct Scenario {
    name: &'static str,
    senders: usize,
    one_way: SimDuration,
    loss_ppm: u32,
    bandwidth_bps: f64,
    msgs_per_sender: usize,
    msg_len: usize,
    /// `true`: all senders submit together in periodic rounds (incast
    /// bursts); `false`: submissions spread uniformly over a window.
    burst: bool,
}

impl Scenario {
    fn all(quick: bool) -> Vec<Scenario> {
        let scale = |n: usize| if quick { n / 5 + 2 } else { n };
        vec![
            Scenario {
                name: "incast",
                senders: 8,
                one_way: SimDuration::from_nanos(1_200),
                loss_ppm: 0,
                bandwidth_bps: 5e9,
                msgs_per_sender: scale(40),
                msg_len: 8 * 1024,
                burst: true,
            },
            Scenario {
                name: "lossy",
                senders: 2,
                one_way: SimDuration::from_micros(5),
                loss_ppm: 30_000,
                bandwidth_bps: 10e9,
                msgs_per_sender: scale(150),
                msg_len: 8 * 1024,
                burst: false,
            },
            Scenario {
                name: "cross-dc",
                senders: 2,
                one_way: SimDuration::from_micros(300),
                loss_ppm: 5_000,
                bandwidth_bps: 10e9,
                msgs_per_sender: scale(80),
                msg_len: 8 * 1024,
                burst: false,
            },
        ]
    }

    /// Interval between incast rounds / mean gap between spread sends.
    fn submit_interval(&self) -> SimDuration {
        if self.burst {
            SimDuration::from_micros(150)
        } else {
            SimDuration::from_micros(50)
        }
    }
}

/// Raw outcome of one (scenario, mode) run.
struct ModeRun {
    delivered: u64,
    delivered_bytes: u64,
    latencies_ns: Vec<u64>,
    makespan_ns: u64,
    link_drops: u64,
    data_sent: u64,
    retransmits: u64,
    timeouts: u64,
    sacks_tx: u64,
    sacks_rx: u64,
    duplicates: u64,
    conn_failures: u64,
    loss_estimate: f64,
    events: u64,
}

fn run_mode(sc: &Scenario, mode: LtlMode, seed: u64) -> ModeRun {
    let mut engine: Engine<Msg> = Engine::new(seed);

    let cfg = LtlConfig::default().without_dcqcn().with_mode(mode);
    let msg_len = sc.msg_len.max(16);

    let recv_addr = NodeAddr::new(0, 0, 0);
    let sender_addrs: Vec<NodeAddr> = (0..sc.senders)
        .map(|i| NodeAddr::new(0, 1, i as u16))
        .collect();

    let mut recv_ltl = LtlEngine::new(recv_addr, cfg.clone());
    let link_id = engine.next_component_id();
    let recv_id = ComponentId::from_raw(link_id.as_raw() + 1);
    let sender_ids: Vec<ComponentId> = (0..sc.senders)
        .map(|i| ComponentId::from_raw(link_id.as_raw() + 2 + i))
        .collect();

    let mut senders = Vec::new();
    for &addr in &sender_addrs {
        let rid = recv_ltl.add_recv(addr);
        let mut ltl = LtlEngine::new(addr, cfg.clone());
        ltl.add_send(recv_addr, rid);
        senders.push(Sender {
            ltl,
            link: link_id,
            msg_len,
            tick_armed: false,
            poll_armed: false,
        });
    }

    let link = Link {
        receiver: recv_id,
        recv_addr,
        senders: sender_addrs
            .iter()
            .copied()
            .zip(sender_ids.iter().copied())
            .collect(),
        one_way: sc.one_way,
        loss_ppm: sc.loss_ppm,
        bandwidth_bps: sc.bandwidth_bps,
        free_at: SimTime::ZERO,
        rng: SimRng::seed_from(seed ^ 0xAB_1117),
        drops: 0,
    };
    assert_eq!(engine.add_component(link), link_id);
    assert_eq!(
        engine.add_component(Receiver {
            ltl: recv_ltl,
            link: link_id,
            poll_armed: false,
            latencies_ns: Vec::new(),
            delivered_bytes: 0,
            last_delivery: SimTime::ZERO,
        }),
        recv_id
    );
    for (sender, &id) in senders.into_iter().zip(&sender_ids) {
        assert_eq!(engine.add_component(sender), id);
    }

    // Submission schedule, from a dedicated stream so the workload is
    // identical in both modes.
    let mut rng = SimRng::seed_from(seed ^ 0x5CED_0717);
    let interval = sc.submit_interval();
    for (s, &id) in sender_ids.iter().enumerate() {
        for counter in 0..sc.msgs_per_sender {
            let at = if sc.burst {
                // Every sender fires in the same round, microseconds
                // apart: the classic synchronized incast pattern.
                SimTime::from_nanos(counter as u64 * interval.as_nanos() + s as u64 * 50)
            } else {
                SimTime::from_nanos(
                    (rng.uniform() * (sc.msgs_per_sender as f64) * interval.as_nanos() as f64)
                        as u64,
                )
            };
            engine.schedule(
                at,
                id,
                Msg::custom(SendCmd {
                    counter: counter as u64,
                }),
            );
        }
    }

    let events = engine.run_to_idle();

    let mut run = ModeRun {
        delivered: 0,
        delivered_bytes: 0,
        latencies_ns: Vec::new(),
        makespan_ns: 0,
        link_drops: engine
            .component::<Link>(link_id)
            .map(|l| l.drops)
            .unwrap_or(0),
        data_sent: 0,
        retransmits: 0,
        timeouts: 0,
        sacks_tx: 0,
        sacks_rx: 0,
        duplicates: 0,
        conn_failures: 0,
        loss_estimate: 0.0,
        events,
    };
    {
        let recv = engine
            .component::<Receiver>(recv_id)
            .expect("receiver attached above");
        run.delivered = recv.latencies_ns.len() as u64;
        run.delivered_bytes = recv.delivered_bytes;
        run.latencies_ns = recv.latencies_ns.clone();
        run.makespan_ns = recv.last_delivery.as_nanos();
        let stats = recv.ltl.stats_view();
        run.sacks_tx = stats.sacks_tx;
        run.duplicates = stats.duplicates;
    }
    for &id in &sender_ids {
        let sender = engine
            .component::<Sender>(id)
            .expect("sender attached above");
        let stats = sender.ltl.stats_view();
        run.data_sent += stats.data_sent;
        run.retransmits += stats.retransmits;
        run.timeouts += stats.timeouts;
        run.sacks_rx += stats.sacks_rx;
        run.conn_failures += stats.conn_failures;
        run.loss_estimate += sender.ltl.loss_estimate();
    }
    run.loss_estimate /= sc.senders as f64;
    run.latencies_ns.sort_unstable();
    run
}

/// FNV-1a over the canonical integer metrics: the determinism
/// fingerprint CI compares across same-seed runs.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

#[derive(Serialize)]
struct ModeResult {
    mode: String,
    delivered_msgs: u64,
    delivered_bytes: u64,
    goodput_gbps: f64,
    p50_us: f64,
    p99_us: f64,
    makespan_us: f64,
    data_sent: u64,
    retransmits: u64,
    timeouts: u64,
    sacks_tx: u64,
    sacks_rx: u64,
    duplicates: u64,
    conn_failures: u64,
    link_drops: u64,
    loss_estimate: f64,
    sim_events: u64,
    fingerprint: String,
}

impl ModeResult {
    fn from_run(sc: &Scenario, mode: LtlMode, run: &ModeRun) -> ModeResult {
        let p50_ns = percentile(&run.latencies_ns, 0.50);
        let p99_ns = percentile(&run.latencies_ns, 0.99);
        let goodput_gbps = if run.makespan_ns > 0 {
            run.delivered_bytes as f64 * 8.0 / run.makespan_ns as f64
        } else {
            0.0
        };
        // Integer-only canonical line: float formatting never feeds the
        // fingerprint.
        let canonical = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            sc.name,
            mode.name(),
            run.delivered,
            run.delivered_bytes,
            run.makespan_ns,
            p50_ns,
            p99_ns,
            run.data_sent,
            run.retransmits,
            run.timeouts,
            run.sacks_tx,
            run.sacks_rx,
            run.duplicates,
            run.link_drops,
        );
        ModeResult {
            mode: mode.name().to_string(),
            delivered_msgs: run.delivered,
            delivered_bytes: run.delivered_bytes,
            goodput_gbps,
            p50_us: p50_ns as f64 / 1_000.0,
            p99_us: p99_ns as f64 / 1_000.0,
            makespan_us: run.makespan_ns as f64 / 1_000.0,
            data_sent: run.data_sent,
            retransmits: run.retransmits,
            timeouts: run.timeouts,
            sacks_tx: run.sacks_tx,
            sacks_rx: run.sacks_rx,
            duplicates: run.duplicates,
            conn_failures: run.conn_failures,
            link_drops: run.link_drops,
            loss_estimate: run.loss_estimate,
            sim_events: run.events,
            fingerprint: format!("{:016x}", fnv1a(&canonical)),
        }
    }
}

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    expected_msgs: u64,
    gbn: ModeResult,
    sr: ModeResult,
    /// Positive when selective repeat moves more bytes per unit time.
    sr_goodput_gain_pct: f64,
    /// Positive when selective repeat has the lower tail latency.
    sr_p99_gain_pct: f64,
    sr_wins: bool,
}

#[derive(Serialize)]
struct Report {
    experiment: String,
    seed: u64,
    quick: bool,
    scenarios: Vec<ScenarioResult>,
    sr_win_count: usize,
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    bench::header("ltl_ab", "transport A/B: go-back-N vs selective repeat");
    let quick = bench::quick_mode();
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(7);
    let check_win = std::env::args().any(|a| a == "--check-win");

    println!(
        "{:<10} {:<4} {:>9} {:>9} {:>9} {:>9} {:>7} {:>8} {:>7}",
        "scenario",
        "mode",
        "delivered",
        "gput_gbps",
        "p50_us",
        "p99_us",
        "retx",
        "timeouts",
        "drops"
    );

    let mut scenarios = Vec::new();
    let mut wins = 0usize;
    for sc in Scenario::all(quick) {
        let gbn_run = run_mode(&sc, LtlMode::GoBackN, seed);
        let gbn = ModeResult::from_run(&sc, LtlMode::GoBackN, &gbn_run);
        let sr_run = run_mode(&sc, LtlMode::SelectiveRepeat, seed);
        let sr = ModeResult::from_run(&sc, LtlMode::SelectiveRepeat, &sr_run);
        for r in [&gbn, &sr] {
            println!(
                "{:<10} {:<4} {:>9} {:>9.3} {:>9.1} {:>9.1} {:>7} {:>8} {:>7}",
                sc.name,
                r.mode,
                r.delivered_msgs,
                r.goodput_gbps,
                r.p50_us,
                r.p99_us,
                r.retransmits,
                r.timeouts,
                r.link_drops,
            );
        }
        let goodput_gain = if gbn.goodput_gbps > 0.0 {
            (sr.goodput_gbps - gbn.goodput_gbps) / gbn.goodput_gbps * 100.0
        } else {
            0.0
        };
        let p99_gain = if gbn.p99_us > 0.0 {
            (gbn.p99_us - sr.p99_us) / gbn.p99_us * 100.0
        } else {
            0.0
        };
        let sr_wins = sr.goodput_gbps > gbn.goodput_gbps || sr.p99_us < gbn.p99_us;
        if sr_wins {
            wins += 1;
        }
        println!(
            "  -> sr goodput {goodput_gain:+.1}%, p99 {p99_gain:+.1}% ({})",
            if sr_wins { "sr wins" } else { "gbn holds" }
        );
        scenarios.push(ScenarioResult {
            scenario: sc.name.to_string(),
            expected_msgs: (sc.senders * sc.msgs_per_sender) as u64,
            gbn,
            sr,
            sr_goodput_gain_pct: goodput_gain,
            sr_p99_gain_pct: p99_gain,
            sr_wins,
        });
    }

    let report = Report {
        experiment: "ltl_ab".to_string(),
        seed,
        quick,
        scenarios,
        sr_win_count: wins,
    };
    bench::write_json("ltl_ab", &report);

    println!(
        "selective repeat wins {wins}/{} scenario(s)",
        report.scenarios.len()
    );
    if check_win && wins == 0 {
        println!("FAIL: selective repeat beat go-back-N nowhere");
        std::process::exit(1);
    }
}
