//! Figure 8: 99.9th-percentile latency versus offered load, scatter over
//! the same five-day production run as Figure 7. The software datacenter
//! is capped by the load balancer; the FPGA datacenter absorbs more than
//! twice the load while never exceeding the software latency.

use catapult::prelude::*;
use experiments::{production, ProductionParams};

fn main() {
    bench::header("Figure 8", "Query p99.9 latency vs offered load");
    let params = if bench::quick_mode() {
        ProductionParams {
            days: 2,
            day_length: dcsim::SimDuration::from_secs(10),
            ..ProductionParams::default()
        }
    } else {
        ProductionParams::default()
    };
    let result = production::run(&params);
    let (sw, fpga) = result.scatter();
    println!("{:<10} {:>9} {:>9}", "dc", "load", "p99.9");
    for (l, p) in &sw {
        println!("{:<10} {:>9.2} {:>9.2}", "software", l, p);
    }
    for (l, p) in &fpga {
        println!("{:<10} {:>9.2} {:>9.2}", "fpga", l, p);
    }
    let sw_max = sw.iter().map(|&(l, _)| l).fold(0.0f64, f64::max);
    let fpga_max = fpga.iter().map(|&(l, _)| l).fold(0.0f64, f64::max);
    println!(
        "\nmax observed load: software {:.2} (balancer-capped), fpga {:.2} ({:.1}x)",
        sw_max,
        fpga_max,
        fpga_max / sw_max
    );
    println!("paper: FPGA DC absorbs >2x offered load at latency never exceeding software");
    bench::write_json("fig08_load_latency", &result);
}
