//! Section II: the power-virus measurement — 29.2 W worst case against the
//! 32 W TDP and 35 W electrical limit.

use catapult::prelude::*;
use experiments::power_table;

fn main() {
    bench::header("Section II", "Board power: virus vs TDP");
    let t = power_table();
    println!("{}", t.table());
    println!("paper: 29.2 W worst case, within 32 W TDP and 35 W limit");
    bench::write_json("tab_power", &t);
}
