//! Section IV: crypto offload cost comparison — CPU cores at 40 Gb/s and
//! per-packet latency, software vs FPGA, plus a real-throughput check of
//! this crate's AES implementations.

use apps::crypto::{Aes, AesGcm};
use catapult::prelude::*;
use experiments::crypto_table;
use std::time::Instant;

fn measure_impl_throughput() {
    // Real software throughput of our pure-Rust AES (not the paper's
    // AES-NI numbers; this documents what the simulator actually computes).
    let gcm = AesGcm::new_128(b"0123456789abcdef");
    let mut buf = vec![0u8; 1 << 20];
    let iv = [0u8; 12];
    let start = Instant::now();
    let tag = gcm.seal(&iv, &[], &mut buf);
    let mbps = buf.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
    println!(
        "pure-Rust AES-GCM-128 seal: {mbps:.1} MB/s (tag {:02x}{:02x}..)",
        tag[0], tag[1]
    );

    let aes = Aes::new_128(b"0123456789abcdef");
    let mut block = [0u8; 16];
    let start = Instant::now();
    let blocks = 200_000;
    for _ in 0..blocks {
        aes.encrypt_block(&mut block);
    }
    let mbps = (blocks * 16) as f64 / start.elapsed().as_secs_f64() / 1e6;
    println!("pure-Rust AES-128 block encrypt: {mbps:.1} MB/s");
}

fn main() {
    bench::header("Section IV", "Line-rate crypto: CPU cores vs FPGA offload");
    let table = crypto_table();
    println!("{}", table.table());
    println!("paper: GCM ~5 cores, CBC-SHA1 >=15 cores at 40 Gb/s full duplex;");
    println!("       FPGA 0 cores; CBC-SHA1 packet latency 11us (FPGA) vs ~4us (SW)");
    println!();
    measure_impl_throughput();
    bench::write_json("tab_crypto", &table);
}
