//! Elastic multi-tenant HaaS oversubscription sweep (the Figure-12
//! companion for the scheduler): drives the same seeded tenant-mix
//! traces through two placement policies — PR-region elastic scheduling
//! (the 25/25/50 carve of the Figure-5 role area) and the paper's
//! whole-board allocation — across tenant mixes and offered loads, and
//! reports time-averaged pool utilization, per-class p99 grant waits and
//! preemption/reclaim counts.
//!
//! ```text
//! haas_elastic [--quick] [--check-win]
//! ```
//!
//! `results/haas_elastic.json` is byte-identical across same-seed runs
//! (no wall-clock fields); timing goes to `results/BENCH_haas_elastic.json`.
//! `--check-win` gates CI: at least one mix×load point must show elastic
//! beating whole-board on utilization with equal-or-better p99 wait for
//! every class the whole-board run served.

use std::time::Instant;

use catapult::elastic::{
    generate_trace, run_trace, standard_region_alms, whole_board_alms, ElasticTraceConfig,
    MixWeights,
};
use dcsim::SimDuration;
use haas::ElasticConfig;
use serde::Serialize;

/// One policy run at one sweep point.
#[derive(Debug, Clone, Serialize)]
struct Row {
    mix: String,
    load: f64,
    policy: String,
    utilization_permille: u64,
    /// p99 grant wait per class in microseconds; -1 when the class saw
    /// no grant.
    p99_wait_us_guaranteed: i64,
    p99_wait_us_standard: i64,
    p99_wait_us_spot: i64,
    grants: u64,
    preemptions: u64,
    reclamations: u64,
    migrations: u64,
    rejects: u64,
    lost_leases: u64,
    queued_at_end: u64,
    fingerprint: u64,
}

/// The deterministic sweep dataset.
#[derive(Debug, Clone, Serialize)]
struct Sweep {
    seed: u64,
    boards: u16,
    horizon_secs: u64,
    region_alms_elastic: Vec<u32>,
    region_alms_whole: Vec<u32>,
    rows: Vec<Row>,
}

/// Wall-clock row for `results/BENCH_haas_elastic.json`; kept out of the
/// sweep JSON so that file stays fingerprint-diffable.
#[derive(Debug, Serialize)]
struct BenchRow {
    commit: String,
    points: usize,
    trace_events: u64,
    decisions: u64,
    wall_secs: f64,
}

fn us(p99_ns: Option<u64>) -> i64 {
    p99_ns.map(|ns| (ns / 1_000) as i64).unwrap_or(-1)
}

fn main() {
    bench::header(
        "haas-elastic",
        "multi-tenant PR-region scheduling vs whole-board allocation",
    );
    let quick = bench::quick_mode();
    let seed = 42u64;
    let boards = 6u16;
    let horizon = SimDuration::from_secs(if quick { 20 } else { 60 });
    let loads: &[f64] = if quick { &[1.2] } else { &[0.8, 1.2, 1.6] };
    let sched = ElasticConfig {
        spot_reserve_permille: 100,
        ..ElasticConfig::default()
    };
    let elastic_regions = standard_region_alms();
    let whole_regions = whole_board_alms();

    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut trace_events = 0u64;
    let mut decisions = 0u64;
    for (mix_name, mix) in MixWeights::PRESETS {
        for &load in loads {
            let trace = generate_trace(&ElasticTraceConfig {
                seed,
                boards,
                horizon,
                load,
                mix,
                ..ElasticTraceConfig::default()
            });
            trace_events += trace.len() as u64;
            for (policy, regions) in [("elastic", &elastic_regions), ("whole", &whole_regions)] {
                let (_, report) = run_trace(boards, regions, sched, &trace, horizon);
                decisions += report.decisions;
                rows.push(Row {
                    mix: mix_name.to_string(),
                    load,
                    policy: policy.to_string(),
                    utilization_permille: report.utilization_permille,
                    p99_wait_us_guaranteed: us(report.p99_wait_ns[0]),
                    p99_wait_us_standard: us(report.p99_wait_ns[1]),
                    p99_wait_us_spot: us(report.p99_wait_ns[2]),
                    grants: report.grants,
                    preemptions: report.preemptions,
                    reclamations: report.reclamations,
                    migrations: report.migrations,
                    rejects: report.rejects,
                    lost_leases: report.lost_leases,
                    queued_at_end: report.queued_at_end,
                    fingerprint: report.fingerprint,
                });
            }
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();

    println!(
        "{:>17} {:>5} {:>8} {:>7} {:>10} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7}",
        "mix",
        "load",
        "policy",
        "util‰",
        "p99 g(us)",
        "p99 s(us)",
        "p99 sp(us)",
        "grants",
        "preempt",
        "reclaim",
        "queued"
    );
    for r in &rows {
        println!(
            "{:>17} {:>5.1} {:>8} {:>7} {:>10} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7}",
            r.mix,
            r.load,
            r.policy,
            r.utilization_permille,
            r.p99_wait_us_guaranteed,
            r.p99_wait_us_standard,
            r.p99_wait_us_spot,
            r.grants,
            r.preemptions,
            r.reclamations,
            r.queued_at_end
        );
    }

    // The win condition the CI lane gates on: some sweep point where the
    // elastic carve beats whole-board utilization without serving any
    // class a worse p99 wait than whole-board did.
    let wins: Vec<String> = rows
        .chunks(2)
        .filter_map(|pair| {
            let [e, w] = pair else { return None };
            let wait_ok = [
                (e.p99_wait_us_guaranteed, w.p99_wait_us_guaranteed),
                (e.p99_wait_us_standard, w.p99_wait_us_standard),
                (e.p99_wait_us_spot, w.p99_wait_us_spot),
            ]
            .iter()
            .all(|&(ep, wp)| wp < 0 || (ep >= 0 && ep <= wp));
            (e.utilization_permille > w.utilization_permille && wait_ok)
                .then(|| format!("{} @ load {:.1}", e.mix, e.load))
        })
        .collect();
    println!(
        "elastic wins (higher utilization, equal-or-better p99 waits): {}",
        if wins.is_empty() {
            "none".to_string()
        } else {
            wins.join(", ")
        }
    );

    bench::write_json(
        "haas_elastic",
        &Sweep {
            seed,
            boards,
            horizon_secs: horizon.as_nanos() / 1_000_000_000,
            region_alms_elastic: elastic_regions.clone(),
            region_alms_whole: whole_regions.clone(),
            rows: rows.clone(),
        },
    );
    bench::write_json(
        "BENCH_haas_elastic",
        &BenchRow {
            commit: bench::current_commit(),
            points: rows.len(),
            trace_events,
            decisions,
            wall_secs,
        },
    );

    // Sanity that the preemption machinery actually exercised: spot-heavy
    // oversubscribed mixes must preempt or reclaim somewhere.
    let churn: u64 = rows
        .iter()
        .filter(|r| r.policy == "elastic")
        .map(|r| r.preemptions + r.reclamations)
        .sum();
    if churn == 0 {
        eprintln!("FAIL: no preemption or reclamation across the whole sweep");
        std::process::exit(1);
    }
    if std::env::args().any(|a| a == "--check-win") {
        if wins.is_empty() {
            eprintln!("FAIL: --check-win found no sweep point where elastic beats whole-board");
            std::process::exit(1);
        }
        println!("--check-win passed ({} winning point(s))", wins.len());
    }
}
