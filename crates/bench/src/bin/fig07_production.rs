//! Figure 7: five-day production throughput and 99.9th-percentile latency
//! of ranking in two datacenters, with and without FPGAs. The software
//! datacenter shows latency spikes as load varies; the FPGA datacenter
//! holds lower, tighter latencies at much higher served load.

use catapult::prelude::*;
use experiments::{production, ProductionParams};

fn main() {
    bench::header(
        "Figure 7",
        "Five-day production throughput and tail latency",
    );
    let params = if bench::quick_mode() {
        ProductionParams {
            days: 2,
            day_length: dcsim::SimDuration::from_secs(10),
            ..ProductionParams::default()
        }
    } else {
        ProductionParams::default()
    };
    let result = production::run(&params);
    println!("{}", result.table());
    println!(
        "software DC: peak load {:.2}, worst p99.9 {:.1}x target",
        result.sw_peak_load, result.sw_worst_p999
    );
    println!(
        "FPGA DC:     peak load {:.2}, worst p99.9 {:.1}x target",
        result.fpga_peak_load, result.fpga_worst_p999
    );
    println!("paper: FPGA DC absorbs ~2x the load with lower, tighter-bound tail latency");
    bench::write_json("fig07_production", &result);
}
