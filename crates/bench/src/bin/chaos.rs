//! Chaos lane: a ranking + DNN-pool workload under deterministic fault
//! injection, reporting how the acceleration plane detects and recovers.
//!
//! The same `--seed` always produces a byte-identical
//! `results/chaos_report.json`, so CI runs this binary twice and diffs
//! the reports as a determinism gate.
//!
//! ```text
//! chaos [--quick] [--seed N]
//!       [--preset random|rack-isolation|golden-image|lossy-link]
//!       [--fault-rate X]
//! ```

use catapult::prelude::*;

/// Parses `--flag value` from the command line.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    bench::header(
        "chaos",
        "fault injection and recovery on the acceleration plane",
    );

    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let preset = arg_value("--preset")
        .map(|v| {
            Preset::parse(&v).expect("--preset takes random|rack-isolation|golden-image|lossy-link")
        })
        .unwrap_or(Preset::Random);
    let mut cfg = if bench::quick_mode() {
        ChaosConfig::quick(seed, preset)
    } else {
        ChaosConfig::full(seed, preset)
    };
    if let Some(rate) = arg_value("--fault-rate") {
        cfg = cfg.with_fault_rate(rate.parse().expect("--fault-rate takes a float"));
    }

    let rig = ChaosRig::build(cfg);
    println!(
        "seed {seed}  preset {}  faults {}",
        preset.name(),
        rig.plan().events.len()
    );
    let report = rig.run();

    println!(
        "requests: {} issued, {} completed, {} lost, {} degraded, {} stranded",
        report.requests.issued,
        report.requests.completed,
        report.requests.lost,
        report.requests.degraded,
        report.requests.stranded,
    );
    println!(
        "served:   {} by primaries, {} by spares",
        report.requests.served_by_primaries, report.requests.served_by_spares,
    );
    println!(
        "recovery: {} failovers, {} replacements, {} power cycles, {} repairs",
        report.recovery.failovers,
        report.recovery.replacements,
        report.recovery.power_cycles,
        report.recovery.repairs,
    );
    if let (Some(p50), Some(p99), Some(p999)) = (
        report.latency.p50_ns,
        report.latency.p99_ns,
        report.latency.p999_ns,
    ) {
        println!(
            "latency:  p50 {:.1} us  p99 {:.1} us  p99.9 {:.1} us",
            p50 as f64 / 1_000.0,
            p99 as f64 / 1_000.0,
            p999 as f64 / 1_000.0,
        );
    }
    for f in &report.timeline {
        let fmt = |s: &catapult::chaos::LatencySummary| match s.p99_ns {
            Some(p99) => format!("{} done, p99 {:.1} us", s.count, p99 as f64 / 1_000.0),
            None => format!("{} done", s.count),
        };
        println!(
            "  t={:>7} us  {:<44} during[{}] after[{}]",
            f.at_us,
            f.fault,
            fmt(&f.during),
            fmt(&f.after),
        );
    }

    bench::write_json("chaos_report", &report);
}
