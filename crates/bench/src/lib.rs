//! Shared plumbing for the experiment binaries: `--quick` scaling and
//! result output.
//!
//! Every binary regenerates one table or figure of the paper. Run with
//! `--quick` for a fast smoke-scale pass; results print as aligned tables
//! and are also written as JSON under `results/`.

use std::path::Path;

use serde::Serialize;

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Writes `value` as pretty JSON to `results/<name>.json` (best effort;
/// failures are reported but not fatal).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Writes a pre-rendered document (e.g. a Chrome trace export) verbatim
/// to `results/<name>` (best effort; failures are reported but not
/// fatal).
pub fn write_raw(name: &str, content: &str) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("=== {id}: {title} ===");
}

/// A live-bytes + high-water-mark tracking allocator for memory-bounded
/// benchmark lanes.
///
/// Install it in a binary with
/// `#[global_allocator] static A: bench::mem::TrackingAlloc = bench::mem::TrackingAlloc;`
/// and gate the run on [`mem::peak_bytes`]. The counters are process-wide
/// and monotonic (peak never decreases), so the gate captures the true
/// high-water mark even for allocations freed before the check.
pub mod mem {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    fn charge(bytes: usize) {
        let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Monotonic max; races only ever lose to a larger peak.
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    /// System allocator wrapper that tracks live bytes and their peak.
    pub struct TrackingAlloc;

    unsafe impl GlobalAlloc for TrackingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                charge(layout.size());
            }
            p
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
                charge(new_size);
            }
            p
        }
    }

    /// Bytes currently allocated.
    pub fn live_bytes() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes since process start.
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }
}

/// Parses `--flag value` from the command line.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Short git commit hash of the working tree, or "unknown".
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}
