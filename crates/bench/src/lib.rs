//! Shared plumbing for the experiment binaries: `--quick` scaling and
//! result output.
//!
//! Every binary regenerates one table or figure of the paper. Run with
//! `--quick` for a fast smoke-scale pass; results print as aligned tables
//! and are also written as JSON under `results/`.

use std::path::Path;

use serde::Serialize;

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Writes `value` as pretty JSON to `results/<name>.json` (best effort;
/// failures are reported but not fatal).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Writes a pre-rendered document (e.g. a Chrome trace export) verbatim
/// to `results/<name>` (best effort; failures are reported but not
/// fatal).
pub fn write_raw(name: &str, content: &str) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("=== {id}: {title} ===");
}
