//! Remote acceleration building blocks (Sections V-D and V-E).
//!
//! An [`AcceleratorRole`] is the FPGA-side service: it consumes LTL
//! requests delivered by its shell, runs them through a fixed number of
//! pipeline slots, and replies over LTL — the host of that FPGA sees no
//! CPU or memory load. A [`RemoteClient`] is the software side: it fires
//! requests at the pool through its local shell and records end-to-end
//! latency from enqueue to response, which is exactly what Figure 12
//! measures.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use dcnet::Msg;
use dcsim::{Component, ComponentId, Context, PercentileRecorder, SimDuration, SimRng, SimTime};
use host::CorePool;
use shell::ltl::{RecvConnId, SendConnId};
use shell::{LtlDeliver, ShellCmd};

/// Builds a request payload: an 8-byte id followed by padding to
/// `total_bytes` (the document/tensor data in the real system).
pub fn encode_request(id: u64, total_bytes: usize) -> Bytes {
    let len = total_bytes.max(8);
    let mut b = BytesMut::with_capacity(len);
    b.put_u64(id);
    b.resize(len, 0);
    b.freeze()
}

/// Extracts the request id from a request or reply payload.
pub fn decode_reply(payload: &Bytes) -> Option<u64> {
    if payload.len() < 8 {
        return None;
    }
    Some(u64::from_be_bytes(
        payload[..8].try_into().expect("length checked"),
    ))
}

/// The FPGA-side accelerator service role.
///
/// Roles compose into multi-FPGA services ("services that consume more
/// than one FPGA, e.g. more aggressive web search ranking, large-scale
/// machine learning"): a stage with a [`AcceleratorRole::set_forward`]
/// connection passes its output to the next FPGA over LTL instead of
/// replying, and the final stage replies to the client.
pub struct AcceleratorRole {
    /// This FPGA's shell.
    shell: ComponentId,
    /// Mean service time per request.
    service: SimDuration,
    /// Lognormal service variability.
    sigma: f64,
    /// Pipeline parallelism.
    slots: CorePool,
    /// Which send connection answers requests arriving on each receive
    /// connection.
    reply_routes: HashMap<RecvConnId, SendConnId>,
    /// If set, processed requests are forwarded to the next pipeline stage
    /// instead of being answered.
    forward: Option<SendConnId>,
    /// Reply payload size.
    response_bytes: usize,
    completed: u64,
    /// Time requests spend queued + in service on the accelerator.
    service_latencies: PercentileRecorder,
}

/// Internal: a reply that becomes ready once its pipeline slot finishes.
struct ReplyReady {
    conn: SendConnId,
    payload: Bytes,
}

impl AcceleratorRole {
    /// Creates a role behind `shell` with the given service time and
    /// `slots`-way pipelining.
    pub fn new(
        shell: ComponentId,
        service: SimDuration,
        sigma: f64,
        slots: usize,
        response_bytes: usize,
    ) -> AcceleratorRole {
        AcceleratorRole {
            shell,
            service,
            sigma,
            slots: CorePool::new(slots),
            reply_routes: HashMap::new(),
            forward: None,
            response_bytes,
            completed: 0,
            service_latencies: PercentileRecorder::new(),
        }
    }

    /// Registers the send connection used to answer requests arriving on
    /// `recv`.
    pub fn add_reply_route(&mut self, recv: RecvConnId, send: SendConnId) {
        self.reply_routes.insert(recv, send);
    }

    /// Turns this role into a non-terminal pipeline stage: processed
    /// requests are forwarded over `next` (same message id) rather than
    /// answered.
    pub fn set_forward(&mut self, next: SendConnId) {
        self.forward = Some(next);
    }

    /// Requests served.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Accelerator-side queue+service latencies (ns).
    pub fn service_latencies_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.service_latencies
    }

    fn sample_service(&self, rng: &mut SimRng) -> SimDuration {
        let mu = self.service.as_secs_f64().ln() - self.sigma * self.sigma / 2.0;
        SimDuration::from_secs_f64(rng.lognormal(mu, self.sigma))
    }
}

impl Component<Msg> for AcceleratorRole {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<LtlDeliver>() {
            Ok(del) => {
                let Some(id) = decode_reply(&del.payload) else {
                    return;
                };
                let reply_conn = match self.forward {
                    Some(next) => next,
                    None => match self.reply_routes.get(&del.conn) {
                        Some(&conn) => conn,
                        None => return,
                    },
                };
                let service = self.sample_service(ctx.rng());
                let now = ctx.now();
                let (_, done) = self.slots.assign(now, service);
                self.service_latencies
                    .record_duration(done.saturating_since(now));
                self.completed += 1;
                let payload = encode_request(id, self.response_bytes);
                ctx.send_to_self_after(
                    done.saturating_since(now),
                    Msg::custom(ReplyReady {
                        conn: reply_conn,
                        payload,
                    }),
                );
            }
            Err(msg) => {
                if let Ok(reply) = msg.downcast::<ReplyReady>() {
                    ctx.send(
                        self.shell,
                        Msg::custom(ShellCmd::LtlSend {
                            conn: reply.conn,
                            vc: 1,
                            payload: reply.payload,
                        }),
                    );
                }
            }
        }
    }
}

impl core::fmt::Debug for AcceleratorRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AcceleratorRole")
            .field("completed", &self.completed)
            .finish()
    }
}

/// A software client of a remote accelerator pool: requests go out through
/// the local shell; latency is measured from enqueue to response receipt.
///
/// LTL connections are statically allocated and persistent, so a client
/// that must survive accelerator failures pre-provisions a connection to a
/// spare ([`RemoteClient::add_backup`]); when the shell reports the active
/// connection failed, the client fails over and re-issues every
/// outstanding request — "failing nodes are removed from the pool with
/// replacements quickly added."
pub struct RemoteClient {
    shell: ComponentId,
    conn: SendConnId,
    backups: Vec<SendConnId>,
    request_bytes: usize,
    outstanding: HashMap<u64, SimTime>,
    latencies: PercentileRecorder,
    next_id: u64,
    /// High bits distinguishing this client's ids from other clients'.
    id_tag: u64,
    failovers: u64,
}

/// Message asking a [`RemoteClient`] to issue one request.
#[derive(Debug, Clone, Copy)]
pub struct IssueRequest;

impl RemoteClient {
    /// Creates a client sending over `conn` of `shell`. `id_tag` must be
    /// unique per client sharing an accelerator.
    pub fn new(shell: ComponentId, conn: SendConnId, request_bytes: usize, id_tag: u16) -> Self {
        RemoteClient {
            shell,
            conn,
            backups: Vec::new(),
            request_bytes,
            outstanding: HashMap::new(),
            latencies: PercentileRecorder::new(),
            next_id: 0,
            id_tag: (id_tag as u64) << 48,
            failovers: 0,
        }
    }

    /// Pre-provisions a spare connection used if the active one fails.
    pub fn add_backup(&mut self, conn: SendConnId) {
        self.backups.push(conn);
    }

    /// Failovers performed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// End-to-end request latencies (ns).
    pub fn latencies_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.latencies
    }

    /// Requests with no response yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Responses received.
    pub fn completed(&self) -> usize {
        self.latencies.count()
    }
}

impl Component<Msg> for RemoteClient {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<IssueRequest>() {
            Ok(IssueRequest) => {
                let id = self.id_tag | self.next_id;
                self.next_id += 1;
                self.outstanding.insert(id, ctx.now());
                ctx.send(
                    self.shell,
                    Msg::custom(ShellCmd::LtlSend {
                        conn: self.conn,
                        vc: 1,
                        payload: encode_request(id, self.request_bytes),
                    }),
                );
            }
            Err(msg) => match msg.downcast::<LtlDeliver>() {
                Ok(del) => {
                    if let Some(id) = decode_reply(&del.payload) {
                        if let Some(sent) = self.outstanding.remove(&id) {
                            self.latencies
                                .record_duration(ctx.now().saturating_since(sent));
                        }
                    }
                }
                Err(msg) => {
                    if let Ok(failed) = msg.downcast::<shell::LtlConnFailed>() {
                        if failed.conn != self.conn {
                            return; // some other connection of this shell
                        }
                        let Some(spare) = self.backups.pop() else {
                            return; // no spare: requests stay outstanding
                        };
                        self.conn = spare;
                        self.failovers += 1;
                        // Re-issue everything in flight on the new node.
                        // Latency keeps accruing from the original enqueue,
                        // as Figure 12's end-to-end definition demands.
                        let ids: Vec<u64> = self.outstanding.keys().copied().collect();
                        for id in ids {
                            ctx.send(
                                self.shell,
                                Msg::custom(ShellCmd::LtlSend {
                                    conn: self.conn,
                                    vc: 1,
                                    payload: encode_request(id, self.request_bytes),
                                }),
                            );
                        }
                    }
                }
            },
        }
    }
}

impl core::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("completed", &self.latencies.count())
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_encoding() {
        let req = encode_request(0xDEAD_BEEF_0000_0042, 1024);
        assert_eq!(req.len(), 1024);
        assert_eq!(decode_reply(&req), Some(0xDEAD_BEEF_0000_0042));
    }

    #[test]
    fn tiny_requests_still_carry_id() {
        let req = encode_request(7, 0);
        assert_eq!(req.len(), 8);
        assert_eq!(decode_reply(&req), Some(7));
    }

    #[test]
    fn short_payload_rejected() {
        assert_eq!(decode_reply(&Bytes::from_static(b"short")), None);
    }
}
