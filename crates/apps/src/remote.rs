//! Remote acceleration building blocks (Sections V-D and V-E).
//!
//! An [`AcceleratorRole`] is the FPGA-side service: it consumes LTL
//! requests delivered by its shell, runs them through a fixed number of
//! pipeline slots, and replies over LTL — the host of that FPGA sees no
//! CPU or memory load. A [`RemoteClient`] is the software side: it fires
//! requests at the pool through its local shell and records end-to-end
//! latency from enqueue to response, which is exactly what Figure 12
//! measures.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use dcnet::Msg;
use dcsim::{Component, ComponentId, Context, PercentileRecorder, SimDuration, SimRng, SimTime};
use host::CorePool;
use shell::ltl::{RecvConnId, SendConnId};
use shell::{LtlDeliver, ShellCmd};
use telemetry::{MetricSource, MetricVisitor, TrackTracer};

/// Builds a request payload: an 8-byte id followed by padding to
/// `total_bytes` (the document/tensor data in the real system).
pub fn encode_request(id: u64, total_bytes: usize) -> Bytes {
    let len = total_bytes.max(8);
    let mut b = BytesMut::with_capacity(len);
    b.put_u64(id);
    b.resize(len, 0);
    b.freeze()
}

/// Extracts the request id from a request or reply payload.
pub fn decode_reply(payload: &Bytes) -> Option<u64> {
    if payload.len() < 8 {
        return None;
    }
    Some(u64::from_be_bytes(
        payload[..8].try_into().expect("length checked"),
    ))
}

/// The FPGA-side accelerator service role.
///
/// Roles compose into multi-FPGA services ("services that consume more
/// than one FPGA, e.g. more aggressive web search ranking, large-scale
/// machine learning"): a stage with a [`AcceleratorRole::set_forward`]
/// connection passes its output to the next FPGA over LTL instead of
/// replying, and the final stage replies to the client.
pub struct AcceleratorRole {
    /// This FPGA's shell.
    shell: ComponentId,
    /// Mean service time per request.
    service: SimDuration,
    /// Lognormal service variability.
    sigma: f64,
    /// Pipeline parallelism.
    slots: CorePool,
    /// Which send connection answers requests arriving on each receive
    /// connection.
    reply_routes: HashMap<RecvConnId, SendConnId>,
    /// If set, processed requests are forwarded to the next pipeline stage
    /// instead of being answered.
    forward: Option<SendConnId>,
    /// Reply payload size.
    response_bytes: usize,
    completed: u64,
    /// Time requests spend queued + in service on the accelerator.
    service_latencies: PercentileRecorder,
}

/// Accelerator-role counters (the legacy struct view; [`MetricSource`]
/// is the registry view of the same numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoleStats {
    /// Requests served.
    pub completed: u64,
}

/// Internal: a reply that becomes ready once its pipeline slot finishes.
struct ReplyReady {
    conn: SendConnId,
    payload: Bytes,
}

impl AcceleratorRole {
    /// Creates a role behind `shell` with the given service time and
    /// `slots`-way pipelining.
    pub fn new(
        shell: ComponentId,
        service: SimDuration,
        sigma: f64,
        slots: usize,
        response_bytes: usize,
    ) -> AcceleratorRole {
        AcceleratorRole {
            shell,
            service,
            sigma,
            slots: CorePool::new(slots),
            reply_routes: HashMap::new(),
            forward: None,
            response_bytes,
            completed: 0,
            service_latencies: PercentileRecorder::new(),
        }
    }

    /// Registers the send connection used to answer requests arriving on
    /// `recv`.
    pub fn add_reply_route(&mut self, recv: RecvConnId, send: SendConnId) {
        self.reply_routes.insert(recv, send);
    }

    /// Turns this role into a non-terminal pipeline stage: processed
    /// requests are forwarded over `next` (same message id) rather than
    /// answered.
    pub fn set_forward(&mut self, next: SendConnId) {
        self.forward = Some(next);
    }

    /// Requests served.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Role counters as a struct, mirroring the other components' legacy
    /// `stats()` surface.
    pub fn stats(&self) -> RoleStats {
        RoleStats {
            completed: self.completed,
        }
    }

    /// Accelerator-side queue+service latencies (ns).
    pub fn service_latencies_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.service_latencies
    }

    fn sample_service(&self, rng: &mut SimRng) -> SimDuration {
        let mu = self.service.as_secs_f64().ln() - self.sigma * self.sigma / 2.0;
        SimDuration::from_secs_f64(rng.lognormal(mu, self.sigma))
    }
}

impl Component<Msg> for AcceleratorRole {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<LtlDeliver>() {
            Ok(del) => {
                let Some(id) = decode_reply(&del.payload) else {
                    return;
                };
                let reply_conn = match self.forward {
                    Some(next) => next,
                    None => match self.reply_routes.get(&del.conn) {
                        Some(&conn) => conn,
                        None => return,
                    },
                };
                let service = self.sample_service(ctx.rng());
                let now = ctx.now();
                let (_, done) = self.slots.assign(now, service);
                self.service_latencies
                    .record_duration(done.saturating_since(now));
                self.completed += 1;
                let payload = encode_request(id, self.response_bytes);
                ctx.send_to_self_after(
                    done.saturating_since(now),
                    Msg::custom(ReplyReady {
                        conn: reply_conn,
                        payload,
                    }),
                );
            }
            Err(msg) => {
                if let Ok(reply) = msg.downcast::<ReplyReady>() {
                    ctx.send(
                        self.shell,
                        Msg::custom(ShellCmd::LtlSend {
                            conn: reply.conn,
                            vc: 1,
                            payload: reply.payload,
                        }),
                    );
                }
            }
        }
    }
}

impl MetricSource for AcceleratorRole {
    fn metrics(&self, m: &mut MetricVisitor<'_>) {
        m.counter("completed", self.completed);
        m.histogram_samples("service_lat_ns", 1_000, self.service_latencies.iter());
    }
}

impl core::fmt::Debug for AcceleratorRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AcceleratorRole")
            .field("completed", &self.completed)
            .finish()
    }
}

/// A software client of a remote accelerator pool: requests go out through
/// the local shell; latency is measured from enqueue to response receipt.
///
/// LTL connections are statically allocated and persistent, so a client
/// that must survive accelerator failures pre-provisions a connection to a
/// spare ([`RemoteClient::add_backup`]); when the shell reports the active
/// connection failed, the client fails over and re-issues every
/// outstanding request — "failing nodes are removed from the pool with
/// replacements quickly added." With [`RemoteClient::set_request_timeout`]
/// the client also re-issues individual requests that have gone
/// unanswered (covering faults the transport cannot see, like a hung
/// role that still ACKs), and with [`RemoteClient::set_monitor`] it
/// reports dead nodes to a [`haas::FailureMonitor`] so the management
/// plane can drain and re-map them.
pub struct RemoteClient {
    shell: ComponentId,
    conn: SendConnId,
    backups: Vec<SendConnId>,
    request_bytes: usize,
    outstanding: HashMap<u64, Pending>,
    latencies: PercentileRecorder,
    next_id: u64,
    /// High bits distinguishing this client's ids from other clients'.
    id_tag: u64,
    failovers: u64,
    request_timeout: Option<SimDuration>,
    max_attempts: u32,
    retry_timer_armed: bool,
    stalled_until: Option<SimTime>,
    monitor: Option<ComponentId>,
    completion_log: Option<Vec<(SimTime, u64)>>,
    retries: u64,
    abandoned: u64,
    tracer: Option<TrackTracer>,
}

/// Client counters (the legacy struct view; [`MetricSource`] is the
/// registry view of the same numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Responses received.
    pub completed: u64,
    /// Requests with no response yet.
    pub outstanding: u64,
    /// Failovers performed.
    pub failovers: u64,
    /// Timeout-driven re-issues performed.
    pub retries: u64,
    /// Requests given up on after the attempt budget.
    pub abandoned: u64,
}

/// Book-keeping for one in-flight request.
struct Pending {
    /// Original enqueue time; latency accrues from here across retries
    /// and failovers, as Figure 12's end-to-end definition demands.
    sent: SimTime,
    last_attempt: SimTime,
    attempts: u32,
}

/// Message asking a [`RemoteClient`] to issue one request.
#[derive(Debug, Clone, Copy)]
pub struct IssueRequest;

/// Fault injection: the client's host stalls (GC pause, VM freeze,
/// kernel hiccup) for the given duration. Requests that would be issued
/// during the stall are deferred to its end, bunching up as real stalled
/// hosts do.
#[derive(Debug, Clone, Copy)]
pub struct StallFor(pub SimDuration);

const RETRY_TIMER: u64 = 0;

impl RemoteClient {
    /// Creates a client sending over `conn` of `shell`. `id_tag` must be
    /// unique per client sharing an accelerator.
    pub fn new(shell: ComponentId, conn: SendConnId, request_bytes: usize, id_tag: u16) -> Self {
        RemoteClient {
            shell,
            conn,
            backups: Vec::new(),
            request_bytes,
            outstanding: HashMap::new(),
            latencies: PercentileRecorder::new(),
            next_id: 0,
            id_tag: (id_tag as u64) << 48,
            failovers: 0,
            request_timeout: None,
            max_attempts: 1,
            retry_timer_armed: false,
            stalled_until: None,
            monitor: None,
            completion_log: None,
            retries: 0,
            abandoned: 0,
            tracer: None,
        }
    }

    /// Installs a flight-recorder track; the client then records one
    /// `request` complete-span per response (start = first issue, duration
    /// = end-to-end latency).
    pub fn set_tracer(&mut self, tracer: TrackTracer) {
        self.tracer = Some(tracer);
    }

    /// Client counters as a struct, mirroring the other components' legacy
    /// `stats()` surface.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            completed: self.latencies.count() as u64,
            outstanding: self.outstanding.len() as u64,
            failovers: self.failovers,
            retries: self.retries,
            abandoned: self.abandoned,
        }
    }

    /// Pre-provisions a spare connection used if the active one fails.
    pub fn add_backup(&mut self, conn: SendConnId) {
        self.backups.push(conn);
    }

    /// Enables application-level retries: a request unanswered for
    /// `timeout` is re-issued on the current connection, up to
    /// `max_attempts` total attempts, after which it counts as abandoned
    /// (a lost request in the recovery report).
    pub fn set_request_timeout(&mut self, timeout: SimDuration, max_attempts: u32) {
        self.request_timeout = Some(timeout);
        self.max_attempts = max_attempts.max(1);
    }

    /// Registers the failure monitor to notify when the active connection
    /// is declared dead.
    pub fn set_monitor(&mut self, monitor: ComponentId) {
        self.monitor = Some(monitor);
    }

    /// Starts recording `(completion time, latency ns)` for every
    /// response, so a harness can carve per-fault latency windows.
    pub fn enable_completion_log(&mut self) {
        self.completion_log = Some(Vec::new());
    }

    /// The completion log, if enabled: `(completion time, latency ns)`
    /// in completion order.
    pub fn completion_log(&self) -> Option<&[(SimTime, u64)]> {
        self.completion_log.as_deref()
    }

    /// Failovers performed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Timeout-driven re-issues performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests given up on after `max_attempts` attempts.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// End-to-end request latencies (ns).
    pub fn latencies_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.latencies
    }

    /// Requests with no response yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Responses received.
    pub fn completed(&self) -> usize {
        self.latencies.count()
    }

    fn send_request(&self, id: u64, ctx: &mut Context<'_, Msg>) {
        ctx.send(
            self.shell,
            Msg::custom(ShellCmd::LtlSend {
                conn: self.conn,
                vc: 1,
                payload: encode_request(id, self.request_bytes),
            }),
        );
    }

    fn ensure_retry_timer(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(timeout) = self.request_timeout {
            if !self.retry_timer_armed && !self.outstanding.is_empty() {
                self.retry_timer_armed = true;
                ctx.timer_after(timeout, RETRY_TIMER);
            }
        }
    }
}

impl Component<Msg> for RemoteClient {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<IssueRequest>() {
            Ok(IssueRequest) => {
                if let Some(until) = self.stalled_until {
                    if ctx.now() < until {
                        // The host is frozen: the request is issued when
                        // it thaws.
                        ctx.send_to_self_after(
                            until.saturating_since(ctx.now()),
                            Msg::custom(IssueRequest),
                        );
                        return;
                    }
                    self.stalled_until = None;
                }
                let id = self.id_tag | self.next_id;
                self.next_id += 1;
                self.outstanding.insert(
                    id,
                    Pending {
                        sent: ctx.now(),
                        last_attempt: ctx.now(),
                        attempts: 1,
                    },
                );
                self.send_request(id, ctx);
                self.ensure_retry_timer(ctx);
            }
            Err(msg) => match msg.downcast::<LtlDeliver>() {
                Ok(del) => {
                    if let Some(id) = decode_reply(&del.payload) {
                        // A retried request can be answered twice; only the
                        // first response completes it.
                        if let Some(pending) = self.outstanding.remove(&id) {
                            let latency = ctx.now().saturating_since(pending.sent);
                            self.latencies.record_duration(latency);
                            if let Some(log) = &mut self.completion_log {
                                log.push((ctx.now(), latency.as_nanos()));
                            }
                            if let Some(tracer) = &self.tracer {
                                tracer.complete(
                                    pending.sent,
                                    latency,
                                    "request",
                                    &[
                                        ("id", id & 0xFFFF_FFFF_FFFF),
                                        ("attempts", pending.attempts as u64),
                                    ],
                                );
                            }
                        }
                    }
                }
                Err(msg) => match msg.downcast::<shell::LtlConnFailed>() {
                    Ok(failed) => {
                        if failed.conn != self.conn {
                            return; // some other connection of this shell
                        }
                        if let Some(monitor) = self.monitor {
                            ctx.send(
                                monitor,
                                Msg::custom(haas::NodeDownReport {
                                    addr: failed.remote,
                                }),
                            );
                        }
                        let Some(spare) = self.backups.pop() else {
                            return; // no spare: requests stay outstanding
                        };
                        self.conn = spare;
                        self.failovers += 1;
                        // Re-issue everything in flight on the new node, in
                        // id order so the replay is deterministic.
                        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
                        ids.sort_unstable();
                        for id in ids {
                            let pending = self.outstanding.get_mut(&id).expect("key just listed");
                            pending.last_attempt = ctx.now();
                            pending.attempts += 1;
                            self.send_request(id, ctx);
                        }
                    }
                    Err(msg) => {
                        if let Ok(stall) = msg.downcast::<StallFor>() {
                            let until = ctx.now() + stall.0;
                            if self.stalled_until.is_none_or(|t| until > t) {
                                self.stalled_until = Some(until);
                            }
                        }
                    }
                },
            },
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, Msg>) {
        self.retry_timer_armed = false;
        let Some(timeout) = self.request_timeout else {
            return;
        };
        let now = ctx.now();
        let mut due: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, p)| now.saturating_since(p.last_attempt) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        due.sort_unstable();
        for id in due {
            let pending = self.outstanding.get_mut(&id).expect("key just listed");
            if pending.attempts >= self.max_attempts {
                self.outstanding.remove(&id);
                self.abandoned += 1;
            } else {
                pending.attempts += 1;
                pending.last_attempt = now;
                self.retries += 1;
                self.send_request(id, ctx);
            }
        }
        self.ensure_retry_timer(ctx);
    }
}

impl MetricSource for RemoteClient {
    fn metrics(&self, m: &mut MetricVisitor<'_>) {
        m.counter("completed", self.latencies.count() as u64);
        m.counter("failovers", self.failovers);
        m.counter("retries", self.retries);
        m.counter("abandoned", self.abandoned);
        m.gauge("outstanding", self.outstanding.len() as f64);
        m.histogram_samples("latency_ns", 1_000, self.latencies.iter());
    }
}

impl core::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("completed", &self.latencies.count())
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_encoding() {
        let req = encode_request(0xDEAD_BEEF_0000_0042, 1024);
        assert_eq!(req.len(), 1024);
        assert_eq!(decode_reply(&req), Some(0xDEAD_BEEF_0000_0042));
    }

    #[test]
    fn tiny_requests_still_carry_id() {
        let req = encode_request(7, 0);
        assert_eq!(req.len(), 8);
        assert_eq!(decode_reply(&req), Some(7));
    }

    #[test]
    fn short_payload_rejected() {
        assert_eq!(decode_reply(&Bytes::from_static(b"short")), None);
    }
}
