//! Host-to-host line-rate flow encryption — the bump-in-the-wire network
//! acceleration of Section IV.
//!
//! Software control-plane sets up per-flow keys in the FPGA's flow table;
//! thereafter every matching packet is encrypted on its way from the NIC
//! to the TOR and decrypted on the way in, with zero CPU load and
//! transparently to software, "which sees all packets as unencrypted at
//! the end points."

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use dcnet::{NodeAddr, Packet};
use dcsim::SimTime;

use super::aes::Aes;
use super::cbc::{cbc_sha1_open, cbc_sha1_seal};
use super::cost::{CipherSuite, FpgaCryptoModel};
use super::gcm::AesGcm;
use crate::TapStats;

use shell::{NetworkTap, TapAction};
use telemetry::{MetricSource, MetricVisitor};

/// Magic marker prefixed to encrypted payloads (stand-in for an ESP-style
/// header).
const ENC_MAGIC: u16 = 0xE5E5;
const ENC_HEADER: usize = 2 + 1 + 1 + 8; // magic, suite, rsvd, counter

/// A flow's 5-tuple key (protocol is always UDP in this simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source host.
    pub src: NodeAddr,
    /// Destination host.
    pub dst: NodeAddr,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Key for a packet as it appears on the wire.
    pub fn of(pkt: &Packet) -> FlowKey {
        FlowKey {
            src: pkt.src,
            dst: pkt.dst,
            src_port: pkt.src_port,
            dst_port: pkt.dst_port,
        }
    }
}

/// Where a flow's key material lives on the board: "the software-provided
/// encryption key is read from internal FPGA SRAM or the FPGA-attached
/// DRAM".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyStore {
    /// On-chip block RAM (hot flows).
    Sram,
    /// FPGA-attached DDR3 (flows that spilled past the SRAM capacity).
    Dram,
}

impl KeyStore {
    fn fetch_latency(self) -> dcsim::SimDuration {
        match self {
            KeyStore::Sram => fpga::SRAM_ACCESS_LATENCY,
            KeyStore::Dram => fpga::DRAM_ACCESS_LATENCY,
        }
    }
}

/// Per-flow cipher state.
struct FlowState {
    suite: CipherSuite,
    aes: Aes,
    gcm: Option<AesGcm>,
    mac_key: Vec<u8>,
    salt: [u8; 4],
    counter: u64,
    store: KeyStore,
}

impl FlowState {
    fn new(suite: CipherSuite, key: &[u8], salt: [u8; 4]) -> FlowState {
        let aes = match suite {
            CipherSuite::AesGcm256 => Aes::new_256(key),
            _ => Aes::new_128(key),
        };
        FlowState {
            gcm: matches!(suite, CipherSuite::AesGcm128 | CipherSuite::AesGcm256)
                .then(|| AesGcm::new(aes.clone())),
            suite,
            aes,
            mac_key: key.to_vec(),
            salt,
            counter: 0,
            store: KeyStore::Sram,
        }
    }

    fn gcm_iv(&self, counter: u64) -> [u8; 12] {
        let mut iv = [0u8; 12];
        iv[..4].copy_from_slice(&self.salt);
        iv[4..].copy_from_slice(&counter.to_be_bytes());
        iv
    }

    fn cbc_iv(&self, counter: u64) -> [u8; 16] {
        // Encrypted-counter IV: unpredictable per record.
        let mut iv = [0u8; 16];
        iv[..4].copy_from_slice(&self.salt);
        iv[8..].copy_from_slice(&counter.to_be_bytes());
        self.aes.encrypt_block(&mut iv);
        iv
    }
}

/// The flow-encryption role: a [`NetworkTap`] holding the flow table.
///
/// # Examples
///
/// ```
/// use apps::crypto::{CipherSuite, CryptoTap, FlowKey};
/// use dcnet::NodeAddr;
///
/// let mut tap = CryptoTap::new();
/// let flow = FlowKey {
///     src: NodeAddr::new(0, 0, 1),
///     dst: NodeAddr::new(0, 1, 2),
///     src_port: 7000,
///     dst_port: 8000,
/// };
/// tap.add_flow(flow, CipherSuite::AesGcm128, b"0123456789abcdef");
/// assert_eq!(tap.flow_count(), 1);
/// ```
pub struct CryptoTap {
    flows: HashMap<FlowKey, FlowState>,
    model: FpgaCryptoModel,
    stats: TapStats,
    /// Flows whose keys fit in on-chip SRAM; later flows spill to DRAM.
    sram_capacity: usize,
}

impl CryptoTap {
    /// Creates an empty flow table with the default FPGA timing model.
    pub fn new() -> CryptoTap {
        CryptoTap::with_model(FpgaCryptoModel::default())
    }

    /// Creates a tap with explicit timing.
    pub fn with_model(model: FpgaCryptoModel) -> CryptoTap {
        CryptoTap {
            flows: HashMap::new(),
            model,
            stats: TapStats::default(),
            sram_capacity: 1024,
        }
    }

    /// Sets how many flow keys fit in on-chip SRAM before spilling to the
    /// FPGA-attached DRAM.
    pub fn set_sram_capacity(&mut self, flows: usize) {
        self.sram_capacity = flows;
    }

    /// Where the key for `key` is stored, if installed.
    pub fn key_store(&self, key: &FlowKey) -> Option<KeyStore> {
        self.flows.get(key).map(|f| f.store)
    }

    fn place(&self, mut state: FlowState) -> FlowState {
        state.store = if self.flows.len() < self.sram_capacity {
            KeyStore::Sram
        } else {
            KeyStore::Dram
        };
        state
    }

    /// Installs a flow key (the software-provided key is read from FPGA
    /// SRAM/DRAM on every packet in the real system).
    pub fn add_flow(&mut self, key: FlowKey, suite: CipherSuite, aes_key: &[u8; 16]) {
        assert!(
            suite != CipherSuite::AesGcm256,
            "use add_flow_256 for 256-bit suites"
        );
        let salt = [key.src_port as u8, key.dst_port as u8, 0xC5, 0x5C];
        let state = self.place(FlowState::new(suite, aes_key, salt));
        self.flows.insert(key, state);
    }

    /// Installs an AES-GCM-256 flow with a 32-byte key.
    pub fn add_flow_256(&mut self, key: FlowKey, aes_key: &[u8; 32]) {
        let salt = [key.src_port as u8, key.dst_port as u8, 0xC5, 0x5C];
        let state = self.place(FlowState::new(CipherSuite::AesGcm256, aes_key, salt));
        self.flows.insert(key, state);
    }

    /// Number of installed flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Tap counters, by reference. The registry view via
    /// [`telemetry::MetricSource`] remains the primary read path; this
    /// accessor serves tests and oracles that read raw counters between
    /// events.
    pub fn stats_view(&self) -> &TapStats {
        &self.stats
    }

    fn encrypt(&mut self, mut pkt: Packet) -> Option<Packet> {
        let key = FlowKey::of(&pkt);
        let state = self.flows.get_mut(&key)?;
        let counter = state.counter;
        state.counter += 1;
        let mut out = BytesMut::with_capacity(ENC_HEADER + pkt.payload.len() + 36);
        out.put_u16(ENC_MAGIC);
        out.put_u8(match state.suite {
            CipherSuite::AesGcm128 => 0,
            CipherSuite::AesCbc128Sha1 => 1,
            CipherSuite::AesGcm256 => 2,
        });
        out.put_u8(0);
        out.put_u64(counter);
        match state.suite {
            CipherSuite::AesGcm128 | CipherSuite::AesGcm256 => {
                let gcm = state.gcm.as_ref().expect("gcm state for gcm suite");
                let mut data = pkt.payload.to_vec();
                let iv = state.gcm_iv(counter);
                // Authenticate the flow identity alongside the data.
                let aad = [
                    pkt.src.as_u32().to_be_bytes(),
                    pkt.dst.as_u32().to_be_bytes(),
                ]
                .concat();
                let tag = gcm.seal(&iv, &aad, &mut data);
                out.put_slice(&data);
                out.put_slice(&tag);
            }
            CipherSuite::AesCbc128Sha1 => {
                let iv = state.cbc_iv(counter);
                let record = cbc_sha1_seal(&state.aes, &state.mac_key, &iv, &pkt.payload);
                out.put_slice(&record);
            }
        }
        pkt.payload = out.freeze();
        Some(pkt)
    }

    fn decrypt(&mut self, mut pkt: Packet) -> Result<Option<Packet>, ()> {
        let key = FlowKey::of(&pkt);
        let Some(state) = self.flows.get_mut(&key) else {
            return Ok(None);
        };
        let p = &pkt.payload;
        if p.len() < ENC_HEADER || u16::from_be_bytes([p[0], p[1]]) != ENC_MAGIC {
            return Ok(None); // not one of ours; bridge it untouched
        }
        let suite = match p[2] {
            0 => CipherSuite::AesGcm128,
            1 => CipherSuite::AesCbc128Sha1,
            2 => CipherSuite::AesGcm256,
            _ => return Err(()),
        };
        if suite != state.suite {
            return Err(());
        }
        let counter = u64::from_be_bytes(p[4..12].try_into().expect("header length checked"));
        let body = &p[ENC_HEADER..];
        let plain: Vec<u8> = match suite {
            CipherSuite::AesGcm128 | CipherSuite::AesGcm256 => {
                if body.len() < 16 {
                    return Err(());
                }
                let (ct, tag) = body.split_at(body.len() - 16);
                let mut data = ct.to_vec();
                let iv = state.gcm_iv(counter);
                let aad = [
                    pkt.src.as_u32().to_be_bytes(),
                    pkt.dst.as_u32().to_be_bytes(),
                ]
                .concat();
                let gcm = state.gcm.as_ref().expect("gcm state for gcm suite");
                gcm.open(&iv, &aad, &mut data, tag.try_into().expect("16-byte tag"))
                    .map_err(|_| ())?;
                data
            }
            CipherSuite::AesCbc128Sha1 => {
                let iv = state.cbc_iv(counter);
                cbc_sha1_open(&state.aes, &state.mac_key, &iv, body).map_err(|_| ())?
            }
        };
        pkt.payload = Bytes::from(plain);
        Ok(Some(pkt))
    }
}

impl Default for CryptoTap {
    fn default() -> Self {
        CryptoTap::new()
    }
}

impl NetworkTap for CryptoTap {
    fn outbound(&mut self, pkt: Packet, _now: SimTime) -> TapAction {
        let key = FlowKey::of(&pkt);
        let suite = self.flows.get(&key).map(|f| (f.suite, f.store));
        match suite {
            Some((suite, store)) => {
                let delay =
                    self.model.packet_latency(suite, pkt.payload.len()) + store.fetch_latency();
                let pkt = self.encrypt(pkt).expect("flow checked present");
                self.stats.encrypted += 1;
                TapAction::Forward { pkt, delay }
            }
            None => {
                self.stats.passed += 1;
                TapAction::pass(pkt)
            }
        }
    }

    fn inbound(&mut self, pkt: Packet, _now: SimTime) -> TapAction {
        let key = FlowKey::of(&pkt);
        let Some((suite, store)) = self.flows.get(&key).map(|f| (f.suite, f.store)) else {
            self.stats.passed += 1;
            return TapAction::pass(pkt);
        };
        let delay = self.model.packet_latency(suite, pkt.payload.len()) + store.fetch_latency();
        match self.decrypt(pkt) {
            Ok(Some(pkt)) => {
                self.stats.decrypted += 1;
                TapAction::Forward { pkt, delay }
            }
            Ok(None) => {
                self.stats.passed += 1;
                // A flow-table hit but unencrypted payload: forward as-is
                // (flow setup race during key installation).
                TapAction::Drop
            }
            Err(()) => {
                self.stats.auth_failures += 1;
                TapAction::Drop
            }
        }
    }
}

impl MetricSource for CryptoTap {
    fn metrics(&self, m: &mut MetricVisitor<'_>) {
        m.counter("encrypted", self.stats.encrypted);
        m.counter("decrypted", self.stats.decrypted);
        m.counter("passed", self.stats.passed);
        m.counter("auth_failures", self.stats.auth_failures);
        m.gauge("flows", self.flows.len() as f64);
    }
}

impl core::fmt::Debug for CryptoTap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CryptoTap")
            .field("flows", &self.flows.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnet::TrafficClass;

    fn pkt(payload: &[u8]) -> Packet {
        Packet::new(
            NodeAddr::new(0, 0, 1),
            NodeAddr::new(0, 1, 2),
            5000,
            6000,
            TrafficClass::BEST_EFFORT,
            Bytes::copy_from_slice(payload),
        )
    }

    fn forwarded(action: TapAction) -> Packet {
        match action {
            TapAction::Forward { pkt, .. } => pkt,
            TapAction::Drop => panic!("expected forward"),
        }
    }

    fn paired_taps(suite: CipherSuite) -> (CryptoTap, CryptoTap, FlowKey) {
        let key = FlowKey::of(&pkt(b""));
        let aes_key = b"0123456789abcdef";
        let mut tx = CryptoTap::new();
        let mut rx = CryptoTap::new();
        tx.add_flow(key, suite, aes_key);
        rx.add_flow(key, suite, aes_key);
        (tx, rx, key)
    }

    #[test]
    fn gcm_flow_encrypts_and_decrypts_transparently() {
        let (mut tx, mut rx, _) = paired_taps(CipherSuite::AesGcm128);
        let original = pkt(b"credit card numbers");
        let wire = forwarded(tx.outbound(original.clone(), SimTime::ZERO));
        assert_ne!(wire.payload, original.payload, "ciphertext on the wire");
        assert!(wire.payload.len() > original.payload.len(), "header + tag");
        let back = forwarded(rx.inbound(wire, SimTime::ZERO));
        assert_eq!(back.payload, original.payload);
        assert_eq!(tx.stats_view().encrypted, 1);
        assert_eq!(rx.stats_view().decrypted, 1);
    }

    #[test]
    fn gcm256_flow_roundtrips() {
        let key = FlowKey::of(&pkt(b""));
        let aes_key = b"a-32-byte-key-for-aes-256-gcm!!!";
        let mut tx = CryptoTap::new();
        let mut rx = CryptoTap::new();
        tx.add_flow_256(key, aes_key);
        rx.add_flow_256(key, aes_key);
        let original = pkt(b"256-bit secrets");
        let wire = forwarded(tx.outbound(original.clone(), SimTime::ZERO));
        assert_ne!(wire.payload, original.payload);
        let back = forwarded(rx.inbound(wire, SimTime::ZERO));
        assert_eq!(back.payload, original.payload);
    }

    #[test]
    #[should_panic(expected = "add_flow_256")]
    fn gcm256_rejects_short_key_path() {
        let mut tap = CryptoTap::new();
        tap.add_flow(
            FlowKey::of(&pkt(b"")),
            CipherSuite::AesGcm256,
            b"0123456789abcdef",
        );
    }

    #[test]
    fn cbc_sha1_flow_roundtrips() {
        let (mut tx, mut rx, _) = paired_taps(CipherSuite::AesCbc128Sha1);
        let original = pkt(&vec![7u8; 1400]);
        let wire = forwarded(tx.outbound(original.clone(), SimTime::ZERO));
        let back = forwarded(rx.inbound(wire, SimTime::ZERO));
        assert_eq!(back.payload, original.payload);
    }

    #[test]
    fn multiple_packets_use_distinct_ivs() {
        let (mut tx, _, _) = paired_taps(CipherSuite::AesGcm128);
        let w1 = forwarded(tx.outbound(pkt(b"same"), SimTime::ZERO));
        let w2 = forwarded(tx.outbound(pkt(b"same"), SimTime::ZERO));
        assert_ne!(w1.payload, w2.payload);
    }

    #[test]
    fn out_of_order_decryption_works() {
        // The counter travels in the header, so reordered packets still
        // decrypt.
        let (mut tx, mut rx, _) = paired_taps(CipherSuite::AesGcm128);
        let w1 = forwarded(tx.outbound(pkt(b"first"), SimTime::ZERO));
        let w2 = forwarded(tx.outbound(pkt(b"second"), SimTime::ZERO));
        let b2 = forwarded(rx.inbound(w2, SimTime::ZERO));
        let b1 = forwarded(rx.inbound(w1, SimTime::ZERO));
        assert_eq!(b1.payload.as_ref(), b"first");
        assert_eq!(b2.payload.as_ref(), b"second");
    }

    #[test]
    fn non_flow_traffic_passes_untouched() {
        let (mut tx, _, _) = paired_taps(CipherSuite::AesGcm128);
        let mut other = pkt(b"other");
        other.dst_port = 9999; // different flow
        let out = forwarded(tx.outbound(other.clone(), SimTime::ZERO));
        assert_eq!(out.payload, other.payload);
        assert_eq!(tx.stats_view().passed, 1);
        assert_eq!(tx.stats_view().encrypted, 0);
    }

    #[test]
    fn tampered_packets_are_dropped() {
        let (mut tx, mut rx, _) = paired_taps(CipherSuite::AesGcm128);
        let wire = forwarded(tx.outbound(pkt(b"secret"), SimTime::ZERO));
        let mut bad = wire.clone();
        let mut tampered = bad.payload.to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        bad.payload = Bytes::from(tampered);
        match rx.inbound(bad, SimTime::ZERO) {
            TapAction::Drop => {}
            TapAction::Forward { .. } => panic!("tampered packet forwarded"),
        }
        assert_eq!(rx.stats_view().auth_failures, 1);
    }

    #[test]
    fn wrong_key_fails_auth() {
        let key = FlowKey::of(&pkt(b""));
        let mut tx = CryptoTap::new();
        let mut rx = CryptoTap::new();
        tx.add_flow(key, CipherSuite::AesGcm128, b"0123456789abcdef");
        rx.add_flow(key, CipherSuite::AesGcm128, b"fedcba9876543210");
        let wire = forwarded(tx.outbound(pkt(b"secret"), SimTime::ZERO));
        assert!(matches!(rx.inbound(wire, SimTime::ZERO), TapAction::Drop));
    }

    #[test]
    fn keys_spill_from_sram_to_dram() {
        let mut tap = CryptoTap::new();
        tap.set_sram_capacity(2);
        let mk = |port: u16| FlowKey {
            src: NodeAddr::new(0, 0, 1),
            dst: NodeAddr::new(0, 1, 2),
            src_port: port,
            dst_port: 6000,
        };
        for port in 0..4u16 {
            tap.add_flow(mk(port), CipherSuite::AesGcm128, b"0123456789abcdef");
        }
        assert_eq!(tap.key_store(&mk(0)), Some(KeyStore::Sram));
        assert_eq!(tap.key_store(&mk(1)), Some(KeyStore::Sram));
        assert_eq!(tap.key_store(&mk(2)), Some(KeyStore::Dram));
        assert_eq!(tap.key_store(&mk(3)), Some(KeyStore::Dram));
    }

    #[test]
    fn dram_keys_cost_more_latency() {
        let mut tap = CryptoTap::new();
        tap.set_sram_capacity(0); // every key spills
        let key = FlowKey::of(&pkt(b""));
        tap.add_flow(key, CipherSuite::AesGcm128, b"0123456789abcdef");
        let d_dram = match tap.outbound(pkt(b"x"), SimTime::ZERO) {
            TapAction::Forward { delay, .. } => delay,
            _ => panic!(),
        };
        let mut hot = CryptoTap::new();
        hot.add_flow(key, CipherSuite::AesGcm128, b"0123456789abcdef");
        let d_sram = match hot.outbound(pkt(b"x"), SimTime::ZERO) {
            TapAction::Forward { delay, .. } => delay,
            _ => panic!(),
        };
        assert!(d_dram > d_sram, "dram {d_dram} vs sram {d_sram}");
    }

    #[test]
    fn latency_model_distinguishes_suites() {
        let (mut tx_gcm, _, _) = paired_taps(CipherSuite::AesGcm128);
        let (mut tx_cbc, _, _) = paired_taps(CipherSuite::AesCbc128Sha1);
        let d_gcm = match tx_gcm.outbound(pkt(&vec![0; 1400]), SimTime::ZERO) {
            TapAction::Forward { delay, .. } => delay,
            _ => panic!(),
        };
        let d_cbc = match tx_cbc.outbound(pkt(&vec![0; 1400]), SimTime::ZERO) {
            TapAction::Forward { delay, .. } => delay,
            _ => panic!(),
        };
        assert!(d_cbc > d_gcm * 3, "cbc {d_cbc} vs gcm {d_gcm}");
    }
}
