//! Network crypto role (Section IV): real AES-GCM-128 and
//! AES-CBC-128-SHA1 line-rate flow encryption, plus the CPU/FPGA cost
//! models behind the paper's core-count comparison.

mod aes;
mod cbc;
mod cost;
mod flows;
mod gcm;
mod sha1;

pub use aes::{Aes, KeySize};
pub use cbc::{cbc_decrypt, cbc_encrypt, cbc_sha1_open, cbc_sha1_seal, CbcError};
pub use cost::{CipherSuite, CpuCryptoModel, FpgaCryptoModel};
pub use flows::{CryptoTap, FlowKey, KeyStore};
pub use gcm::{AesGcm, AuthError, TAG_BYTES};
pub use sha1::{hmac_sha1, Sha1, DIGEST_BYTES};
