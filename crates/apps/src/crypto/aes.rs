//! AES block cipher (FIPS-197), the primitive under the network
//! encryption role of Section IV.
//!
//! A straightforward, constant-table software implementation: correctness
//! is the point (the FPGA role in the paper computes real ciphertext at
//! line rate; our simulation does too), validated against the FIPS-197
//! example vectors. AES-128 and AES-256 are provided because the paper
//! contrasts GCM-128 against slower 256-bit and CBC modes.

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (for decryption).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn mul(a: u8, mut b: u8) -> u8 {
    let mut a = a;
    let mut result = 0;
    while b != 0 {
        if b & 1 != 0 {
            result ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    result
}

/// Key size variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

/// An expanded AES key, ready for block operations.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands a 128-bit key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not 16 bytes.
    pub fn new_128(key: &[u8]) -> Aes {
        assert_eq!(key.len(), 16, "AES-128 key must be 16 bytes");
        Aes::expand(key, 10)
    }

    /// Expands a 256-bit key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not 32 bytes.
    pub fn new_256(key: &[u8]) -> Aes {
        assert_eq!(key.len(), 32, "AES-256 key must be 32 bytes");
        Aes::expand(key, 14)
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    fn expand(key: &[u8], rounds: usize) -> Aes {
        let nk = key.len() / 4;
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes { round_keys, rounds }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // state is column-major: state[4*col + row]
        for row in 1..4 {
            let mut tmp = [0u8; 4];
            for col in 0..4 {
                tmp[col] = state[4 * ((col + row) % 4) + row];
            }
            for col in 0..4 {
                state[4 * col + row] = tmp[col];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for row in 1..4 {
            let mut tmp = [0u8; 4];
            for col in 0..4 {
                tmp[(col + row) % 4] = state[4 * col + row];
            }
            for col in 0..4 {
                state[4 * col + row] = tmp[col];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[4 * col..4 * col + 4];
            let a = [c[0], c[1], c[2], c[3]];
            c[0] = mul(a[0], 2) ^ mul(a[1], 3) ^ a[2] ^ a[3];
            c[1] = a[0] ^ mul(a[1], 2) ^ mul(a[2], 3) ^ a[3];
            c[2] = a[0] ^ a[1] ^ mul(a[2], 2) ^ mul(a[3], 3);
            c[3] = mul(a[0], 3) ^ a[1] ^ a[2] ^ mul(a[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[4 * col..4 * col + 4];
            let a = [c[0], c[1], c[2], c[3]];
            c[0] = mul(a[0], 14) ^ mul(a[1], 11) ^ mul(a[2], 13) ^ mul(a[3], 9);
            c[1] = mul(a[0], 9) ^ mul(a[1], 14) ^ mul(a[2], 11) ^ mul(a[3], 13);
            c[2] = mul(a[0], 13) ^ mul(a[1], 9) ^ mul(a[2], 14) ^ mul(a[3], 11);
            c[3] = mul(a[0], 11) ^ mul(a[1], 13) ^ mul(a[2], 9) ^ mul(a[3], 14);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[self.rounds]);
        for round in (1..self.rounds).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

impl core::fmt::Debug for Aes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(f, "Aes(rounds: {})", self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_example() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256_example() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn sp800_38a_ecb_vectors() {
        // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt
        let aes = Aes::new_128(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in cases {
            let mut b: [u8; 16] = hex(pt).try_into().unwrap();
            aes.encrypt_block(&mut b);
            assert_eq!(b.to_vec(), hex(ct));
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random_blocks() {
        let aes = Aes::new_128(b"0123456789abcdef");
        let mut x = [0u8; 16];
        for round in 0..100u8 {
            for (i, b) in x.iter_mut().enumerate() {
                *b = b.wrapping_mul(31).wrapping_add(i as u8 ^ round);
            }
            let orig = x;
            aes.encrypt_block(&mut x);
            assert_ne!(x, orig);
            aes.decrypt_block(&mut x);
            assert_eq!(x, orig);
        }
    }

    #[test]
    fn debug_hides_key() {
        let aes = Aes::new_128(&[0x42; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("42"), "debug output leaks key: {s}");
    }

    #[test]
    #[should_panic(expected = "16 bytes")]
    fn wrong_key_size_panics() {
        let _ = Aes::new_128(&[0; 15]);
    }
}
