//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! The paper's preferred line-rate mode: "GCM latency numbers are
//! significantly better for FPGA since a single packet can be processed
//! with no dependencies and thus can be perfectly pipelined." CTR
//! encryption plus a GHASH tag over GF(2^128).

use super::aes::Aes;

/// GCM authentication tag length in bytes.
pub const TAG_BYTES: usize = 16;

/// Error from [`AesGcm::open`]: the authentication tag did not verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("gcm authentication tag mismatch")
    }
}

impl std::error::Error for AuthError {}

/// GF(2^128) multiplication (bit-serial, GCM's reflected convention).
fn ghash_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z: u128 = 0;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 != 0 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb != 0 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut arr = [0u8; 16];
    arr[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(arr)
}

/// AES-GCM with a 96-bit IV.
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: u128,
}

impl AesGcm {
    /// Creates a GCM instance over an expanded AES key.
    pub fn new(aes: Aes) -> AesGcm {
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        AesGcm {
            aes,
            h: u128::from_be_bytes(h),
        }
    }

    /// AES-GCM-128 from a 16-byte key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not 16 bytes.
    pub fn new_128(key: &[u8]) -> AesGcm {
        AesGcm::new(Aes::new_128(key))
    }

    fn counter_block(iv: &[u8; 12], counter: u32) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..12].copy_from_slice(iv);
        b[12..].copy_from_slice(&counter.to_be_bytes());
        b
    }

    fn ctr_xor(&self, iv: &[u8; 12], data: &mut [u8]) {
        let mut counter = 2u32; // counter 1 is reserved for the tag
        for chunk in data.chunks_mut(16) {
            let mut ks = Self::counter_block(iv, counter);
            self.aes.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let mut y: u128 = 0;
        for chunk in aad.chunks(16) {
            y = ghash_mul(y ^ block_to_u128(chunk), self.h);
        }
        for chunk in ct.chunks(16) {
            y = ghash_mul(y ^ block_to_u128(chunk), self.h);
        }
        let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        ghash_mul(y ^ lens, self.h)
    }

    fn tag(&self, iv: &[u8; 12], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let s = self.ghash(aad, ct);
        let mut ek0 = Self::counter_block(iv, 1);
        self.aes.encrypt_block(&mut ek0);
        (s ^ u128::from_be_bytes(ek0)).to_be_bytes()
    }

    /// Encrypts `data` in place and returns the authentication tag.
    /// `aad` is authenticated but not encrypted (packet headers).
    pub fn seal(&self, iv: &[u8; 12], aad: &[u8], data: &mut [u8]) -> [u8; 16] {
        self.ctr_xor(iv, data);
        self.tag(iv, aad, data)
    }

    /// Verifies `tag` and decrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] (leaving `data` as the ciphertext) if the tag
    /// does not verify.
    pub fn open(
        &self,
        iv: &[u8; 12],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; 16],
    ) -> Result<(), AuthError> {
        let expect = self.tag(iv, aad, data);
        // Constant-time-ish comparison.
        let diff = expect
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(AuthError);
        }
        self.ctr_xor(iv, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let iv = [0u8; 12];
        let tag = gcm.seal(&iv, &[], &mut []);
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_test_case_2_one_block() {
        let gcm = AesGcm::new_128(&[0u8; 16]);
        let iv = [0u8; 12];
        let mut data = [0u8; 16];
        let tag = gcm.seal(&iv, &[], &mut data);
        assert_eq!(data.to_vec(), hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn nist_test_case_3_four_blocks() {
        let gcm = AesGcm::new_128(&hex("feffe9928665731c6d6a8f9467308308"));
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let mut data = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let tag = gcm.seal(&iv, &[], &mut data);
        assert_eq!(
            data,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    #[test]
    fn nist_test_case_4_with_aad() {
        let gcm = AesGcm::new_128(&hex("feffe9928665731c6d6a8f9467308308"));
        let iv: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let mut data = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let tag = gcm.seal(&iv, &aad, &mut data);
        assert_eq!(
            data,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            )
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn seal_open_roundtrip() {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let iv = [7u8; 12];
        let aad = b"packet headers";
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let orig = data.clone();
        let tag = gcm.seal(&iv, aad, &mut data);
        assert_ne!(data, orig);
        gcm.open(&iv, aad, &mut data, &tag).unwrap();
        assert_eq!(data, orig);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let iv = [7u8; 12];
        let mut data = b"sensitive".to_vec();
        let tag = gcm.seal(&iv, &[], &mut data);
        data[0] ^= 1;
        assert_eq!(gcm.open(&iv, &[], &mut data, &tag), Err(AuthError));
    }

    #[test]
    fn tampered_aad_rejected() {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let iv = [7u8; 12];
        let mut data = b"sensitive".to_vec();
        let tag = gcm.seal(&iv, b"aad", &mut data);
        assert_eq!(gcm.open(&iv, b"bad", &mut data, &tag), Err(AuthError));
    }

    #[test]
    fn distinct_ivs_give_distinct_ciphertexts() {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let mut a = b"same plaintext".to_vec();
        let mut b = b"same plaintext".to_vec();
        gcm.seal(&[1u8; 12], &[], &mut a);
        gcm.seal(&[2u8; 12], &[], &mut b);
        assert_ne!(a, b);
    }
}
