//! The Section IV cost comparison: CPU cores consumed by software crypto
//! at 40 Gb/s versus the FPGA's line-rate offload, and per-packet latency
//! for both.

use dcsim::SimDuration;

/// Cipher suites the network encryption role supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// AES-GCM-128: AES-NI friendly in software, perfectly pipelined on
    /// the FPGA.
    AesGcm128,
    /// AES-GCM-256: 14 rounds instead of 10 — one of the "different
    /// standards, such as 256b" the paper notes is significantly slower.
    AesGcm256,
    /// AES-CBC-128 with HMAC-SHA1: backward-compatibility suite; serial
    /// block chaining makes it hard for both software and hardware.
    AesCbc128Sha1,
}

/// Software (CPU) crypto cost model, from Intel's published Haswell
/// numbers quoted in the paper.
#[derive(Debug, Clone, Copy)]
pub struct CpuCryptoModel {
    /// Core clock in Hz (paper: 2.4 GHz).
    pub clock_hz: f64,
    /// AES-GCM-128 cycles/byte, encrypt and decrypt each (paper: 1.26).
    pub gcm_cycles_per_byte: f64,
    /// AES-GCM-256 cycles/byte (14/10 rounds plus key-schedule pressure).
    pub gcm256_cycles_per_byte: f64,
    /// AES-CBC-128-SHA1 effective cycles/byte (derived from the paper's
    /// "at least fifteen cores" for 40 Gb/s full duplex at 2.4 GHz).
    pub cbc_sha1_cycles_per_byte: f64,
}

impl Default for CpuCryptoModel {
    fn default() -> Self {
        CpuCryptoModel {
            clock_hz: 2.4e9,
            gcm_cycles_per_byte: 1.26,
            gcm256_cycles_per_byte: 1.76,
            // 15 cores * 2.4e9 cyc/s / (2 * 5e9 B/s) = 3.6 cyc/B
            cbc_sha1_cycles_per_byte: 3.6,
        }
    }
}

impl CpuCryptoModel {
    fn cycles_per_byte(&self, suite: CipherSuite) -> f64 {
        match suite {
            CipherSuite::AesGcm128 => self.gcm_cycles_per_byte,
            CipherSuite::AesGcm256 => self.gcm256_cycles_per_byte,
            CipherSuite::AesCbc128Sha1 => self.cbc_sha1_cycles_per_byte,
        }
    }

    /// Cores required to sustain `gbps` of traffic. `full_duplex` doubles
    /// the byte stream (encrypt one direction, decrypt the other).
    pub fn cores_needed(&self, suite: CipherSuite, gbps: f64, full_duplex: bool) -> f64 {
        let bytes_per_sec = gbps * 1e9 / 8.0 * if full_duplex { 2.0 } else { 1.0 };
        bytes_per_sec * self.cycles_per_byte(suite) / self.clock_hz
    }

    /// Software latency to process one packet of `bytes` on one core
    /// (paper: ~4 µs for a 1500 B packet with CBC-SHA1, per the Intel
    /// best-case numbers).
    pub fn packet_latency(&self, suite: CipherSuite, bytes: usize) -> SimDuration {
        // The quoted 4us for 1500B CBC-SHA1 includes per-packet software
        // overhead beyond raw cycles/byte; model it as fixed + per-byte.
        let per_byte = self.cycles_per_byte(suite) / self.clock_hz;
        let fixed = 1.75e-6; // syscall/framework overhead per packet
        SimDuration::from_secs_f64(fixed + bytes as f64 * per_byte)
    }
}

/// FPGA crypto role timing.
#[derive(Debug, Clone, Copy)]
pub struct FpgaCryptoModel {
    /// Worst-case half-duplex first-flit-to-first-flit latency for a
    /// 1500 B AES-CBC-128-SHA1 packet (paper: 11 µs — the 33-way
    /// interleave takes one 128 b block per stream every 33 cycles).
    pub cbc_sha1_packet_latency: SimDuration,
    /// AES-GCM-128 per-packet latency: fully pipelined, a small multiple
    /// of the packet serialization time.
    pub gcm_packet_latency: SimDuration,
    /// Line rate sustained regardless of suite, in Gb/s.
    pub line_rate_gbps: f64,
    /// Streams the CBC engine interleaves to fill its pipeline.
    pub cbc_interleave: u32,
}

impl Default for FpgaCryptoModel {
    fn default() -> Self {
        FpgaCryptoModel {
            cbc_sha1_packet_latency: SimDuration::from_micros(11),
            gcm_packet_latency: SimDuration::from_nanos(1_800),
            line_rate_gbps: 40.0,
            cbc_interleave: 33,
        }
    }
}

impl FpgaCryptoModel {
    /// Per-packet latency added by the role for `suite` (scaled by packet
    /// size relative to 1500 B for CBC, whose latency is chain-length
    /// bound).
    pub fn packet_latency(&self, suite: CipherSuite, bytes: usize) -> SimDuration {
        match suite {
            CipherSuite::AesGcm128 => self.gcm_packet_latency,
            // Four extra rounds lengthen the pipeline, still fully
            // streaming.
            CipherSuite::AesGcm256 => self.gcm_packet_latency * 14 / 10,
            CipherSuite::AesCbc128Sha1 => {
                let scale = (bytes as f64 / 1500.0).min(1.0);
                SimDuration::from_secs_f64(
                    self.cbc_sha1_packet_latency.as_secs_f64() * scale.max(0.1),
                )
            }
        }
    }

    /// CPU cores consumed by the FPGA offload (zero: "there is no load on
    /// the CPUs to encrypt or decrypt the packets").
    pub fn cores_needed(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcm256_is_slower_than_gcm128_but_faster_than_cbc() {
        let m = CpuCryptoModel::default();
        let g128 = m.cores_needed(CipherSuite::AesGcm128, 40.0, true);
        let g256 = m.cores_needed(CipherSuite::AesGcm256, 40.0, true);
        let cbc = m.cores_needed(CipherSuite::AesCbc128Sha1, 40.0, true);
        assert!(g128 < g256 && g256 < cbc, "{g128} {g256} {cbc}");
        let f = FpgaCryptoModel::default();
        assert!(
            f.packet_latency(CipherSuite::AesGcm256, 1500)
                > f.packet_latency(CipherSuite::AesGcm128, 1500)
        );
    }

    #[test]
    fn gcm_needs_about_five_cores_at_40g() {
        // "at a 2.4 GHz clock frequency, 40 Gb/s encryption/decryption
        // consumes roughly five cores"
        let m = CpuCryptoModel::default();
        let cores = m.cores_needed(CipherSuite::AesGcm128, 40.0, true);
        assert!((cores - 5.25).abs() < 0.1, "cores {cores}");
    }

    #[test]
    fn cbc_sha1_needs_at_least_fifteen_cores() {
        let m = CpuCryptoModel::default();
        let cores = m.cores_needed(CipherSuite::AesCbc128Sha1, 40.0, true);
        assert!(cores >= 14.9, "cores {cores}");
    }

    #[test]
    fn software_packet_latency_about_4us() {
        let m = CpuCryptoModel::default();
        let t = m.packet_latency(CipherSuite::AesCbc128Sha1, 1500);
        assert!(
            (t.as_micros_f64() - 4.0).abs() < 1.0,
            "latency {t} vs paper ~4us"
        );
    }

    #[test]
    fn fpga_cbc_latency_11us_but_zero_cores() {
        let f = FpgaCryptoModel::default();
        assert_eq!(
            f.packet_latency(CipherSuite::AesCbc128Sha1, 1500),
            SimDuration::from_micros(11)
        );
        assert_eq!(f.cores_needed(), 0.0);
    }

    #[test]
    fn fpga_gcm_latency_much_lower_than_cbc() {
        let f = FpgaCryptoModel::default();
        let gcm = f.packet_latency(CipherSuite::AesGcm128, 1500);
        let cbc = f.packet_latency(CipherSuite::AesCbc128Sha1, 1500);
        assert!(gcm.as_nanos() * 4 < cbc.as_nanos());
    }

    #[test]
    fn fpga_latency_worse_than_software_latency_for_cbc() {
        // The paper is explicit about this trade: FPGA CBC latency (11us)
        // is worse than software (4us) — the win is the freed cores.
        let sw = CpuCryptoModel::default().packet_latency(CipherSuite::AesCbc128Sha1, 1500);
        let hw = FpgaCryptoModel::default().packet_latency(CipherSuite::AesCbc128Sha1, 1500);
        assert!(hw > sw);
    }
}
