//! AES-CBC and the AES-CBC-128-SHA1 record format.
//!
//! CBC is the paper's worked example of a mode that is *hard* for
//! hardware: "AES-CBC requires processing 33 packets at a time in our
//! implementation, taking only 128b from a single packet once every 33
//! cycles" — each block depends on the previous ciphertext block, so a
//! single stream cannot be pipelined. The encrypt-then-MAC record built
//! here (CBC + HMAC-SHA1) is the backward-compatibility suite quoted at
//! fifteen CPU cores for 40 Gb/s full duplex.

use super::aes::Aes;
use super::sha1::{hmac_sha1, DIGEST_BYTES};

/// Error from CBC decryption or record verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is not a multiple of the block size.
    BadLength,
    /// PKCS#7 padding is malformed.
    BadPadding,
    /// HMAC verification failed.
    BadMac,
}

impl core::fmt::Display for CbcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CbcError::BadLength => "ciphertext length not a block multiple",
            CbcError::BadPadding => "invalid pkcs7 padding",
            CbcError::BadMac => "record mac mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CbcError {}

/// Encrypts `data` (a block multiple) in place with CBC.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16.
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], data: &mut [u8]) {
    assert!(data.len().is_multiple_of(16), "CBC needs whole blocks");
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        for (c, p) in chunk.iter_mut().zip(prev.iter()) {
            *c ^= p;
        }
        let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
        aes.encrypt_block(block);
        prev = *block;
    }
}

/// Decrypts CBC `data` in place.
///
/// # Errors
///
/// [`CbcError::BadLength`] if `data` is not a block multiple.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], data: &mut [u8]) -> Result<(), CbcError> {
    if !data.len().is_multiple_of(16) {
        return Err(CbcError::BadLength);
    }
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
        let saved = *block;
        aes.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    Ok(())
}

/// Seals `plaintext` into an AES-CBC-128-SHA1 record:
/// `CBC(plaintext || pkcs7) || HMAC-SHA1(iv || ciphertext)`
/// (encrypt-then-MAC).
pub fn cbc_sha1_seal(aes: &Aes, mac_key: &[u8], iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let pad = 16 - plaintext.len() % 16;
    let mut data = Vec::with_capacity(plaintext.len() + pad + DIGEST_BYTES);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));
    cbc_encrypt(aes, iv, &mut data);
    let mut mac_input = Vec::with_capacity(16 + data.len());
    mac_input.extend_from_slice(iv);
    mac_input.extend_from_slice(&data);
    data.extend_from_slice(&hmac_sha1(mac_key, &mac_input));
    data
}

/// Verifies and opens an AES-CBC-128-SHA1 record.
///
/// # Errors
///
/// [`CbcError::BadMac`] on MAC mismatch, [`CbcError::BadLength`] /
/// [`CbcError::BadPadding`] on malformed records.
pub fn cbc_sha1_open(
    aes: &Aes,
    mac_key: &[u8],
    iv: &[u8; 16],
    record: &[u8],
) -> Result<Vec<u8>, CbcError> {
    if record.len() < DIGEST_BYTES + 16 {
        return Err(CbcError::BadLength);
    }
    let (ct, mac) = record.split_at(record.len() - DIGEST_BYTES);
    let mut mac_input = Vec::with_capacity(16 + ct.len());
    mac_input.extend_from_slice(iv);
    mac_input.extend_from_slice(ct);
    let expect = hmac_sha1(mac_key, &mac_input);
    let diff = expect.iter().zip(mac).fold(0u8, |a, (x, y)| a | (x ^ y));
    if diff != 0 {
        return Err(CbcError::BadMac);
    }
    let mut data = ct.to_vec();
    cbc_decrypt(aes, iv, &mut data)?;
    let pad = *data.last().ok_or(CbcError::BadPadding)? as usize;
    if pad == 0 || pad > 16 || pad > data.len() {
        return Err(CbcError::BadPadding);
    }
    if !data[data.len() - pad..].iter().all(|&b| b == pad as u8) {
        return Err(CbcError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_cbc_vectors() {
        // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt
        let aes = Aes::new_128(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        );
        cbc_encrypt(&aes, &iv, &mut data);
        assert_eq!(
            data,
            hex(
                "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2\
                 73bed6b8e3c1743b7116e69e222295163ff1caa1681fac09120eca307586e1a7"
            )
        );
        cbc_decrypt(&aes, &iv, &mut data).unwrap();
        assert!(data.starts_with(&hex("6bc1bee22e409f96e93d7e117393172a")));
    }

    #[test]
    fn cbc_blocks_are_chained() {
        // Identical plaintext blocks must produce different ciphertext
        // blocks (unlike ECB).
        let aes = Aes::new_128(&[9u8; 16]);
        let mut data = vec![0xAB; 48];
        cbc_encrypt(&aes, &[0u8; 16], &mut data);
        assert_ne!(data[0..16], data[16..32]);
        assert_ne!(data[16..32], data[32..48]);
    }

    #[test]
    fn record_roundtrip() {
        let aes = Aes::new_128(b"0123456789abcdef");
        let mac_key = b"mac-key";
        let iv = [3u8; 16];
        for len in [0, 1, 15, 16, 17, 1000, 1460] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let record = cbc_sha1_seal(&aes, mac_key, &iv, &pt);
            assert!(record.len() % 16 == DIGEST_BYTES % 16 || record.len() > pt.len());
            let out = cbc_sha1_open(&aes, mac_key, &iv, &record).unwrap();
            assert_eq!(out, pt, "len {len}");
        }
    }

    #[test]
    fn record_tamper_detected() {
        let aes = Aes::new_128(b"0123456789abcdef");
        let iv = [3u8; 16];
        let mut record = cbc_sha1_seal(&aes, b"k", &iv, b"hello world");
        record[0] ^= 1;
        assert_eq!(
            cbc_sha1_open(&aes, b"k", &iv, &record),
            Err(CbcError::BadMac)
        );
    }

    #[test]
    fn wrong_mac_key_detected() {
        let aes = Aes::new_128(b"0123456789abcdef");
        let iv = [3u8; 16];
        let record = cbc_sha1_seal(&aes, b"k1", &iv, b"hello world");
        assert_eq!(
            cbc_sha1_open(&aes, b"k2", &iv, &record),
            Err(CbcError::BadMac)
        );
    }

    #[test]
    fn bad_length_rejected() {
        let aes = Aes::new_128(&[0; 16]);
        let mut short = vec![0u8; 10];
        assert_eq!(
            cbc_decrypt(&aes, &[0; 16], &mut short),
            Err(CbcError::BadLength)
        );
        assert_eq!(
            cbc_sha1_open(&aes, b"k", &[0; 16], &[0u8; 8]),
            Err(CbcError::BadLength)
        );
    }
}
