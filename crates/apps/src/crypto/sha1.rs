//! SHA-1 and HMAC-SHA1 (FIPS 180-4 / RFC 2104), needed for the
//! backward-compatible AES-CBC-128-SHA1 suite the paper calls out as
//! consuming "at least fifteen cores" in software at 40 Gb/s.

/// SHA-1 digest length in bytes.
pub const DIGEST_BYTES: usize = 20;
const BLOCK_BYTES: usize = 64;

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_BYTES],
    buffered: usize,
    length_bits: u64,
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0; BLOCK_BYTES],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add(data.len() as u64 * 8);
        if self.buffered > 0 {
            let take = (BLOCK_BYTES - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered < BLOCK_BYTES {
                return; // data exhausted, block still filling
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        while data.len() >= BLOCK_BYTES {
            let (block, rest) = data.split_at(BLOCK_BYTES);
            let mut b = [0u8; BLOCK_BYTES];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_BYTES] {
        let bits = self.length_bits;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length goes in raw (update would double-count it).
        self.buffer[56..].copy_from_slice(&bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; DIGEST_BYTES];
        for (i, s) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_BYTES] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; BLOCK_BYTES]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

/// HMAC-SHA1 (RFC 2104).
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut k = [0u8; BLOCK_BYTES];
    if key.len() > BLOCK_BYTES {
        k[..DIGEST_BYTES].copy_from_slice(&Sha1::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha1::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            Sha1::digest(b"abc").to_vec(),
            hex("a9993e364706816aba3e25717850c26c9cd0d89d")
        );
        assert_eq!(
            Sha1::digest(b"").to_vec(),
            hex("da39a3ee5e6b4b0d3255bfef95601890afd80709")
        );
        assert_eq!(
            Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
            hex("84983e441c3bd26ebaae4aa1f95129e5e54670f1")
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_vec(),
            hex("34aa973cd4c4daa4f61eeb2bdbad27316534016f")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let oneshot = Sha1::digest(&data);
        for split in [1, 7, 63, 64, 65, 5000] {
            let mut h = Sha1::new();
            for chunk in data.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "split {split}");
        }
    }

    #[test]
    fn rfc2202_hmac_vectors() {
        assert_eq!(
            hmac_sha1(&[0x0b; 20], b"Hi There").to_vec(),
            hex("b617318655057264e28bc0b6fb378c8ef146be00")
        );
        assert_eq!(
            hmac_sha1(b"Jefe", b"what do ya want for nothing?").to_vec(),
            hex("effcdf6ae5eb2fa2d27416d5f184df9c259a7c79")
        );
        assert_eq!(
            hmac_sha1(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )
            .to_vec(),
            hex("aa4ae5e15272d00e95705637ce8a3b55ed402112")
        );
    }
}
