//! A small real MLP inference engine — the workload behind the paper's
//! latency-sensitive DNN accelerator pool (Section V-E).
//!
//! Dense layers with ReLU activations and a softmax head. The oversubscribed
//! pool experiment uses [`crate::remote::AcceleratorRole`] for timing;
//! this module supplies the actual computation for examples and
//! correctness tests.

use dcsim::SimRng;

/// A dense layer: `y = relu(W x + b)` (ReLU skipped on the output layer).
#[derive(Debug, Clone)]
struct Layer {
    /// Row-major weights `[outputs][inputs]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn random(inputs: usize, outputs: usize, rng: &mut SimRng) -> Layer {
        let scale = (2.0 / inputs as f64).sqrt();
        Layer {
            weights: (0..inputs * outputs)
                .map(|_| (rng.gauss() * scale) as f32)
                .collect(),
            bias: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f32], relu: bool) -> Vec<f32> {
        assert_eq!(x.len(), self.inputs, "layer input width mismatch");
        (0..self.outputs)
            .map(|o| {
                let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
                let z: f32 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>() + self.bias[o];
                if relu {
                    z.max(0.0)
                } else {
                    z
                }
            })
            .collect()
    }
}

/// A multi-layer perceptron with deterministic random weights.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (at least two), weights
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], seed: u64) -> Mlp {
        assert!(widths.len() >= 2, "need input and output widths");
        let mut rng = SimRng::seed_from(seed);
        let layers = widths
            .windows(2)
            .map(|w| Layer::random(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    /// Input width.
    pub fn input_width(&self) -> usize {
        self.layers.first().expect("at least one layer").inputs
    }

    /// Output width.
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("at least one layer").outputs
    }

    /// Multiply-accumulate operations per inference (the quantity that
    /// sizes the accelerator).
    pub fn macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.inputs as u64 * l.outputs as u64)
            .sum()
    }

    /// Runs inference, returning softmax class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `input` width mismatches.
    pub fn infer(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x, i != last);
        }
        softmax(&x)
    }
}

fn softmax(z: &[f32]) -> Vec<f32> {
    let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_a_probability_distribution() {
        let mlp = Mlp::new(&[16, 32, 10], 1);
        let input: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let out = mlp.infer(&input);
        assert_eq!(out.len(), 10);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Mlp::new(&[8, 8, 4], 9);
        let b = Mlp::new(&[8, 8, 4], 9);
        let x = [0.5f32; 8];
        assert_eq!(a.infer(&x), b.infer(&x));
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let mlp = Mlp::new(&[8, 16, 4], 3);
        let a = mlp.infer(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = mlp.infer(&[0.0; 8]);
        assert_ne!(a, b);
    }

    #[test]
    fn macs_counts_weights() {
        let mlp = Mlp::new(&[10, 20, 5], 1);
        assert_eq!(mlp.macs(), 10 * 20 + 20 * 5);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        Mlp::new(&[4, 2], 1).infer(&[0.0; 5]);
    }
}
