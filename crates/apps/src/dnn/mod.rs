//! The DNN workload for the remote accelerator pool (Section V-E).

mod mlp;
mod role;

pub use mlp::Mlp;
pub use role::{decode_inference_reply, encode_inference_request, MlpRole};
