//! The DNN accelerator role with real inference.
//!
//! [`MlpRole`] is what the pool example and tests deploy on an FPGA slot:
//! it combines the timing behaviour of
//! [`AcceleratorRole`](crate::remote::AcceleratorRole) (pipeline slots,
//! service time, LTL replies) with the actual computation — each request's
//! payload is decoded into an input vector, run through the [`Mlp`], and
//! the predicted class travels back in the reply.

use bytes::{BufMut, Bytes, BytesMut};
use dcnet::Msg;
use dcsim::{Component, ComponentId, Context, SimDuration, SimRng, SimTime};
use host::CorePool;
use shell::ltl::{RecvConnId, SendConnId};
use shell::{LtlDeliver, ShellCmd};

use super::mlp::Mlp;
use crate::remote::decode_reply;

/// Builds an inference request: 8-byte id followed by `f32` features.
pub fn encode_inference_request(id: u64, features: &[f32]) -> Bytes {
    let mut b = BytesMut::with_capacity(8 + features.len() * 4);
    b.put_u64(id);
    for &f in features {
        b.put_f32(f);
    }
    b.freeze()
}

/// Parses an inference reply: `(id, argmax class, probability)`.
pub fn decode_inference_reply(payload: &Bytes) -> Option<(u64, u16, f32)> {
    if payload.len() < 8 + 2 + 4 {
        return None;
    }
    let id = u64::from_be_bytes(payload[..8].try_into().ok()?);
    let class = u16::from_be_bytes(payload[8..10].try_into().ok()?);
    let prob = f32::from_be_bytes(payload[10..14].try_into().ok()?);
    Some((id, class, prob))
}

fn decode_features(payload: &Bytes, width: usize) -> Option<Vec<f32>> {
    let body = payload.get(8..)?;
    if body.len() < width * 4 {
        return None;
    }
    Some(
        body.chunks_exact(4)
            .take(width)
            .map(|c| f32::from_be_bytes(c.try_into().expect("chunk is 4 bytes")))
            .collect(),
    )
}

/// A DNN-serving role: real MLP inference with pipelined service timing.
pub struct MlpRole {
    shell: ComponentId,
    model: Mlp,
    service: SimDuration,
    sigma: f64,
    slots: CorePool,
    reply_routes: std::collections::HashMap<RecvConnId, SendConnId>,
    served: u64,
    malformed: u64,
}

/// Internal: an inference result waiting for its pipeline slot to finish.
struct InferenceDone {
    conn: SendConnId,
    payload: Bytes,
}

impl MlpRole {
    /// Creates a role serving `model` behind `shell`.
    pub fn new(
        shell: ComponentId,
        model: Mlp,
        service: SimDuration,
        sigma: f64,
        slots: usize,
    ) -> MlpRole {
        MlpRole {
            shell,
            model,
            service,
            sigma,
            slots: CorePool::new(slots),
            reply_routes: Default::default(),
            served: 0,
            malformed: 0,
        }
    }

    /// Registers the reply connection for requests arriving on `recv`.
    pub fn add_reply_route(&mut self, recv: RecvConnId, send: SendConnId) {
        self.reply_routes.insert(recv, send);
    }

    /// Inferences served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests rejected as malformed.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    fn sample_service(&self, rng: &mut SimRng) -> SimDuration {
        let mu = self.service.as_secs_f64().ln() - self.sigma * self.sigma / 2.0;
        SimDuration::from_secs_f64(rng.lognormal(mu, self.sigma))
    }
}

impl Component<Msg> for MlpRole {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<LtlDeliver>() {
            Ok(del) => {
                let Some(&reply_conn) = self.reply_routes.get(&del.conn) else {
                    return;
                };
                let (Some(id), Some(features)) = (
                    decode_reply(&del.payload),
                    decode_features(&del.payload, self.model.input_width()),
                ) else {
                    self.malformed += 1;
                    return;
                };
                // Real computation: run the MLP now, ship the result when
                // the pipeline slot completes.
                let probs = self.model.infer(&features);
                let (class, prob) = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
                    .map(|(i, &p)| (i as u16, p))
                    .expect("non-empty output");
                let mut reply = BytesMut::with_capacity(14);
                reply.put_u64(id);
                reply.put_u16(class);
                reply.put_f32(prob);

                let service = self.sample_service(ctx.rng());
                let now: SimTime = ctx.now();
                let (_, done) = self.slots.assign(now, service);
                self.served += 1;
                ctx.send_to_self_after(
                    done.saturating_since(now),
                    Msg::custom(InferenceDone {
                        conn: reply_conn,
                        payload: reply.freeze(),
                    }),
                );
            }
            Err(msg) => {
                if let Ok(done) = msg.downcast::<InferenceDone>() {
                    ctx.send(
                        self.shell,
                        Msg::custom(ShellCmd::LtlSend {
                            conn: done.conn,
                            vc: 1,
                            payload: done.payload,
                        }),
                    );
                }
            }
        }
    }
}

impl core::fmt::Debug for MlpRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MlpRole")
            .field("served", &self.served)
            .field("malformed", &self.malformed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_request_roundtrip() {
        let features: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        let req = encode_inference_request(42, &features);
        assert_eq!(decode_reply(&req), Some(42));
        assert_eq!(decode_features(&req, 16).unwrap(), features);
    }

    #[test]
    fn reply_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u64(7);
        b.put_u16(3);
        b.put_f32(0.75);
        let (id, class, prob) = decode_inference_reply(&b.freeze()).unwrap();
        assert_eq!((id, class), (7, 3));
        assert!((prob - 0.75).abs() < 1e-6);
    }

    #[test]
    fn short_payloads_rejected() {
        assert!(decode_inference_reply(&Bytes::from_static(b"short")).is_none());
        assert!(decode_features(&Bytes::from_static(b"12345678"), 4).is_none());
    }
}
