//! # apps — the accelerated services of the Configurable Cloud
//!
//! The three workloads the paper evaluates, implemented for real and
//! paired with calibrated timing models:
//!
//! * [`ranking`] — Bing web search ranking (Section III): finite-state
//!   feature machines (FFU), dynamic-programming features (DPF), the
//!   software scorer, and the [`ranking::RankingServer`] service model
//!   behind the latency/throughput figures;
//! * [`crypto`] — line-rate network encryption (Section IV): real
//!   AES-GCM-128 and AES-CBC-128-SHA1 running in a bump-in-the-wire
//!   [`crypto::CryptoTap`], plus the CPU-core cost model;
//! * [`dnn`] — the MLP inference workload served by the remote
//!   accelerator pool (Section V-E);
//! * [`remote`] — the generic remote-acceleration roles:
//!   [`remote::AcceleratorRole`] (FPGA side) and
//!   [`remote::RemoteClient`] (software side).
//!
//! # Examples
//!
//! Rank a couple of documents end to end:
//!
//! ```
//! use apps::ranking::{rank_documents, Document, Query};
//!
//! let query = Query { terms: vec![10, 20] };
//! let good = Document { tokens: vec![10, 20, 3, 10, 20] };
//! let bad = Document { tokens: vec![1, 2, 3, 4, 5] };
//! let ranked = rank_documents(&query, &[bad, good], 42);
//! assert_eq!(ranked[0].0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto;
pub mod dnn;
pub mod ranking;
pub mod remote;

/// Counters shared by bridge taps (crypto and future roles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapStats {
    /// Packets encrypted on the outbound path.
    pub encrypted: u64,
    /// Packets decrypted on the inbound path.
    pub decrypted: u64,
    /// Packets forwarded untouched (no flow-table hit).
    pub passed: u64,
    /// Packets dropped for failing authentication.
    pub auth_failures: u64,
}
