//! Synthetic query/document corpus for the ranking workload.
//!
//! The production pipeline feeds (query, document) pairs to the feature
//! stages; we generate deterministic Zipf-distributed token streams that
//! exercise the same code paths (term matches, phrase matches, gaps) with
//! realistic skew.

use dcsim::SimRng;

/// A tokenised search query (term ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Query terms in order.
    pub terms: Vec<u32>,
}

/// A tokenised candidate document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Document tokens in order.
    pub tokens: Vec<u32>,
}

/// Deterministic corpus generator with a Zipf-like term distribution.
#[derive(Debug, Clone)]
pub struct CorpusGen {
    vocab: u32,
    /// Cumulative probability table over a truncated Zipf distribution.
    cumulative: Vec<f64>,
}

impl CorpusGen {
    /// Creates a generator over `vocab` distinct terms with Zipf skew `s`
    /// (1.0 is classic web-text skew).
    ///
    /// # Panics
    ///
    /// Panics if `vocab` is zero.
    pub fn new(vocab: u32, s: f64) -> CorpusGen {
        assert!(vocab > 0, "vocabulary must be non-empty");
        let mut weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        CorpusGen {
            vocab,
            cumulative: weights,
        }
    }

    /// Samples one term id.
    pub fn term(&self, rng: &mut SimRng) -> u32 {
        let u = rng.uniform();
        match self
            .cumulative
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in table"))
        {
            Ok(i) | Err(i) => (i as u32).min(self.vocab - 1),
        }
    }

    /// Generates a query of `len` terms (distinct where possible). Query
    /// terms are drawn uniformly over the vocabulary — queries select
    /// *discriminative* terms, unlike body text, which follows the Zipf
    /// distribution.
    pub fn query(&self, rng: &mut SimRng, len: usize) -> Query {
        let mut terms = Vec::with_capacity(len);
        for _ in 0..len.max(1) {
            let mut t = rng.index(self.vocab as usize) as u32;
            let mut guard = 0;
            while terms.contains(&t) && guard < 16 {
                t = rng.index(self.vocab as usize) as u32;
                guard += 1;
            }
            terms.push(t);
        }
        Query { terms }
    }

    /// Generates a document of `len` tokens, planting each query term with
    /// probability `relevance` at random positions so relevant documents
    /// actually contain the query.
    pub fn document(
        &self,
        rng: &mut SimRng,
        query: &Query,
        len: usize,
        relevance: f64,
    ) -> Document {
        let mut tokens: Vec<u32> = (0..len).map(|_| self.term(rng)).collect();
        if !tokens.is_empty() {
            for &t in &query.terms {
                if rng.chance(relevance) {
                    let n = 1 + rng.index(3);
                    for _ in 0..n {
                        let pos = rng.index(tokens.len());
                        tokens[pos] = t;
                    }
                }
            }
        }
        Document { tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let gen = CorpusGen::new(10_000, 1.0);
        let mut r1 = SimRng::seed_from(1);
        let mut r2 = SimRng::seed_from(1);
        assert_eq!(gen.query(&mut r1, 4), gen.query(&mut r2, 4));
    }

    #[test]
    fn zipf_head_is_heavy() {
        let gen = CorpusGen::new(1_000, 1.0);
        let mut rng = SimRng::seed_from(2);
        let n = 50_000;
        let head = (0..n).filter(|_| gen.term(&mut rng) < 10).count();
        // Top-10 of 1000 terms should carry ~40% of mass under Zipf(1).
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.55, "head fraction {frac}");
    }

    #[test]
    fn relevant_documents_contain_query_terms() {
        let gen = CorpusGen::new(100_000, 1.0);
        let mut rng = SimRng::seed_from(3);
        let q = gen.query(&mut rng, 3);
        let doc = gen.document(&mut rng, &q, 500, 1.0);
        for &t in &q.terms {
            assert!(doc.tokens.contains(&t), "term {t} missing");
        }
    }

    #[test]
    fn irrelevant_documents_usually_lack_rare_terms() {
        let gen = CorpusGen::new(100_000, 1.0);
        let mut rng = SimRng::seed_from(4);
        let q = Query {
            terms: vec![99_999, 99_998], // rarest terms
        };
        let doc = gen.document(&mut rng, &q, 200, 0.0);
        assert!(!doc.tokens.contains(&99_999));
    }

    #[test]
    fn document_length_respected() {
        let gen = CorpusGen::new(1000, 1.0);
        let mut rng = SimRng::seed_from(5);
        let q = gen.query(&mut rng, 2);
        assert_eq!(gen.document(&mut rng, &q, 777, 0.5).tokens.len(), 777);
    }
}
