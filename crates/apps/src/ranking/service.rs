//! The ranking service latency/throughput model (Figures 6, 7, 8, 11).
//!
//! Correctness of the feature computation is covered by the ffu/dpf/score
//! modules; this module models its *timing* on a production server. A
//! query costs software time (scoring, snippet work) plus feature
//! extraction, which either burns core time (software mode), runs on the
//! local FPGA over PCIe (local mode), or runs on a remote FPGA over LTL
//! (remote mode). Calibration: the paper's single-box result is 2.25x
//! throughput at the same 99th-percentile latency, which pins the ratio of
//! feature time to software time at 1.25.

use std::collections::HashMap;

use bytes::Bytes;
use dcnet::Msg;
use dcsim::{Component, ComponentId, Context, PercentileRecorder, SimDuration, SimRng, SimTime};
use host::{CorePool, PcieModel};
use shell::ShellCmd;

use crate::remote::{decode_reply, encode_request};

/// A query arriving at the ranking service (sent by a workload generator).
#[derive(Debug, Clone, Copy)]
pub struct QueryArrival {
    /// Query id (unique per generator).
    pub id: u64,
}

/// How feature extraction is executed.
#[derive(Debug, Clone, Copy)]
pub enum RankingMode {
    /// Everything on host cores.
    Software,
    /// FFU/DPF on the local FPGA via PCIe DMA.
    LocalFpga,
    /// FFU/DPF on a remote FPGA reached over LTL through the local shell.
    RemoteFpga {
        /// The local shell component.
        shell: ComponentId,
        /// LTL send connection to the remote accelerator.
        conn: shell::ltl::SendConnId,
    },
}

/// Ranking service timing parameters.
#[derive(Debug, Clone)]
pub struct RankingParams {
    /// Worker cores on the server.
    pub cores: usize,
    /// Mean software (scoring/serving) time per query.
    pub sw_service: SimDuration,
    /// Mean feature-extraction core time per query (software mode only).
    pub feature_service: SimDuration,
    /// Lognormal sigma of service-time variability.
    pub sigma: f64,
    /// FPGA feature-extraction latency per query (FFU + DPF pipeline).
    pub fpga_latency: SimDuration,
    /// Queries the FPGA pipeline processes concurrently.
    pub fpga_slots: usize,
    /// PCIe model for local offload.
    pub pcie: PcieModel,
    /// Bytes shipped to the FPGA per query (document + query state).
    pub request_bytes: usize,
    /// Bytes returned (feature vector).
    pub response_bytes: usize,
}

impl Default for RankingParams {
    fn default() -> Self {
        RankingParams {
            cores: 12,
            sw_service: SimDuration::from_millis(3),
            feature_service: SimDuration::from_micros(3_750),
            sigma: 0.25,
            fpga_latency: SimDuration::from_micros(600),
            fpga_slots: 8,
            pcie: PcieModel::default(),
            request_bytes: 24 * 1024,
            response_bytes: 2 * 1024,
        }
    }
}

impl RankingParams {
    /// Saturation throughput (queries/s) in software mode.
    pub fn software_capacity(&self) -> f64 {
        self.cores as f64 / (self.sw_service + self.feature_service).as_secs_f64()
    }

    /// Saturation throughput in FPGA mode (host cores are the bottleneck;
    /// the FPGA is deliberately underutilised, as the paper observes).
    pub fn fpga_capacity(&self) -> f64 {
        let host = self.cores as f64 / self.sw_service.as_secs_f64();
        let fpga = self.fpga_slots as f64 / self.fpga_latency.as_secs_f64();
        host.min(fpga)
    }
}

fn lognormal_service(rng: &mut SimRng, mean: SimDuration, sigma: f64) -> SimDuration {
    // mu chosen so the distribution's mean equals `mean`.
    let mu = (mean.as_secs_f64()).ln() - sigma * sigma / 2.0;
    SimDuration::from_secs_f64(rng.lognormal(mu, sigma))
}

/// The ranking service on one server.
///
/// # Examples
///
/// ```
/// use apps::ranking::{RankingMode, RankingParams, RankingServer};
///
/// let params = RankingParams::default();
/// // The paper's 2.25x: capacity ratio between FPGA and software modes.
/// let gain = params.fpga_capacity() / params.software_capacity();
/// assert!((gain - 2.25).abs() < 0.01);
/// let server = RankingServer::new(params, RankingMode::LocalFpga);
/// assert_eq!(server.completed(), 0);
/// ```
pub struct RankingServer {
    params: RankingParams,
    mode: RankingMode,
    cores: CorePool,
    fpga: CorePool,
    latencies: PercentileRecorder,
    arrivals: PercentileRecorder,
    outstanding: HashMap<u64, SimTime>,
    completed: u64,
    window_start: SimTime,
    record_trace: bool,
    trace: Vec<(u64, u64)>,
}

impl RankingServer {
    /// Creates a server in the given mode.
    pub fn new(params: RankingParams, mode: RankingMode) -> RankingServer {
        RankingServer {
            cores: CorePool::new(params.cores),
            fpga: CorePool::new(params.fpga_slots),
            params,
            mode,
            latencies: PercentileRecorder::new(),
            arrivals: PercentileRecorder::new(),
            outstanding: HashMap::new(),
            completed: 0,
            window_start: SimTime::ZERO,
            record_trace: false,
            trace: Vec::new(),
        }
    }

    /// Enables per-query `(arrival_ns, latency_ns)` trace recording, used
    /// by the time-series production experiments (Figures 7-8).
    pub fn enable_trace(&mut self) {
        self.record_trace = true;
    }

    /// The recorded `(arrival_ns, latency_ns)` trace.
    pub fn trace(&self) -> &[(u64, u64)] {
        &self.trace
    }

    /// Per-query end-to-end latencies (ns).
    pub fn latencies_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.latencies
    }

    /// Queries completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Arrival timestamps (for offered-load reporting).
    pub fn arrivals_mut(&mut self) -> &mut PercentileRecorder {
        &mut self.arrivals
    }

    /// Resets measurement windows (e.g. after warmup).
    pub fn reset_measurements(&mut self, now: SimTime) {
        self.latencies.clear();
        self.arrivals.clear();
        self.completed = 0;
        self.window_start = now;
    }

    /// Mean completion throughput since the last reset, in queries/s.
    pub fn throughput(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.completed as f64 / elapsed
        }
    }

    fn finish(&mut self, arrived: SimTime, done: SimTime) {
        let latency = done.saturating_since(arrived);
        self.latencies.record_duration(latency);
        if self.record_trace {
            self.trace.push((arrived.as_nanos(), latency.as_nanos()));
        }
        self.completed += 1;
    }

    fn on_query(&mut self, q: QueryArrival, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        self.arrivals.record(now.as_nanos());
        match self.mode {
            RankingMode::Software => {
                let service = lognormal_service(
                    ctx.rng(),
                    self.params.sw_service + self.params.feature_service,
                    self.params.sigma,
                );
                let (_, end) = self.cores.assign(now, service);
                self.finish(now, end);
            }
            RankingMode::LocalFpga => {
                // Feature extraction on the FPGA (PCIe there and back, the
                // pipeline slot), then the software portion on a core.
                let dma = self.params.pcie.round_trip(
                    self.params.request_bytes as u64,
                    self.params.response_bytes as u64,
                );
                let fpga_service =
                    lognormal_service(ctx.rng(), self.params.fpga_latency, self.params.sigma / 2.0);
                let (_, features_done) = self.fpga.assign(now, fpga_service);
                let sw = lognormal_service(ctx.rng(), self.params.sw_service, self.params.sigma);
                let (_, end) = self.cores.assign(features_done + dma, sw);
                self.finish(now, end);
            }
            RankingMode::RemoteFpga { shell, conn } => {
                self.outstanding.insert(q.id, now);
                let payload = encode_request(q.id, self.params.request_bytes);
                ctx.send(
                    shell,
                    Msg::custom(ShellCmd::LtlSend {
                        conn,
                        vc: 1,
                        payload,
                    }),
                );
            }
        }
    }

    fn on_reply(&mut self, payload: &Bytes, ctx: &mut Context<'_, Msg>) {
        let Some(id) = decode_reply(payload) else {
            return;
        };
        let Some(arrived) = self.outstanding.remove(&id) else {
            return;
        };
        let now = ctx.now();
        let sw = lognormal_service(ctx.rng(), self.params.sw_service, self.params.sigma);
        let (_, end) = self.cores.assign(now, sw);
        self.finish(arrived, end);
    }
}

impl Component<Msg> for RankingServer {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg.downcast::<QueryArrival>() {
            Ok(q) => self.on_query(q, ctx),
            Err(msg) => {
                if let Ok(del) = msg.downcast::<shell::LtlDeliver>() {
                    self.on_reply(&del.payload, ctx);
                }
            }
        }
    }
}

impl core::fmt::Debug for RankingServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RankingServer")
            .field("mode", &self.mode)
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::Engine;
    use host::{OpenLoopGen, StartGenerator};

    fn run_mode(mode: RankingMode, qps: f64, queries: u64, seed: u64) -> (f64, f64, f64) {
        let params = RankingParams::default();
        let mut e: Engine<Msg> = Engine::new(seed);
        let server_id = e.next_component_id();
        e.add_component(RankingServer::new(params, mode));
        let gen = e.add_component(OpenLoopGen::new(
            server_id,
            SimDuration::from_secs_f64(1.0 / qps),
            Some(queries),
            |id, _| Msg::custom(QueryArrival { id }),
        ));
        e.schedule(SimTime::ZERO, gen, Msg::custom(StartGenerator));
        e.run_to_idle();
        let now = e.now();
        let server = e.component_mut::<RankingServer>(server_id).unwrap();
        let thr = server.throughput(now);
        let p99 = server
            .latencies_mut()
            .percentile(99.0)
            .map(|ns| ns as f64 / 1e9)
            .unwrap_or(0.0);
        let mean = server.latencies_mut().mean() / 1e9;
        (thr, mean, p99)
    }

    #[test]
    fn capacities_give_2_25x() {
        let p = RankingParams::default();
        let ratio = p.fpga_capacity() / p.software_capacity();
        assert!((ratio - 2.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn software_mode_latency_reasonable_at_low_load() {
        let (_, mean, p99) = run_mode(RankingMode::Software, 500.0, 5_000, 1);
        // Mean ~ 6.75ms service, p99 has lognormal tail but little queueing.
        assert!(mean > 0.006 && mean < 0.009, "mean {mean}");
        assert!(p99 < 0.015, "p99 {p99}");
    }

    #[test]
    fn software_mode_saturates_earlier_than_fpga_mode() {
        let qps = 2_500.0; // above software capacity (~1778), below FPGA (4000)
        let (_, sw_mean, _) = run_mode(RankingMode::Software, qps, 20_000, 2);
        let (_, hw_mean, _) = run_mode(RankingMode::LocalFpga, qps, 20_000, 2);
        assert!(
            sw_mean > 5.0 * hw_mean,
            "software overload mean {sw_mean} vs fpga {hw_mean}"
        );
    }

    #[test]
    fn fpga_mode_latency_lower_even_at_low_load() {
        let (_, sw, _) = run_mode(RankingMode::Software, 200.0, 3_000, 3);
        let (_, hw, _) = run_mode(RankingMode::LocalFpga, 200.0, 3_000, 3);
        assert!(hw < sw, "fpga {hw} vs software {sw}");
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let (thr, _, _) = run_mode(RankingMode::LocalFpga, 1_000.0, 20_000, 4);
        assert!((thr - 1_000.0).abs() < 60.0, "thr {thr}");
    }

    #[test]
    fn fpga_remains_underutilised_at_host_saturation() {
        // "the software portion of ranking saturates the host server
        // before the FPGA is saturated"
        let p = RankingParams::default();
        let host_cap = p.cores as f64 / p.sw_service.as_secs_f64();
        let fpga_cap = p.fpga_slots as f64 / p.fpga_latency.as_secs_f64();
        assert!(fpga_cap > 3.0 * host_cap, "fpga {fpga_cap} host {host_cap}");
    }
}
