//! Bing web search ranking acceleration (Section III): FFU finite-state
//! features, DPF dynamic-programming features, the software scoring stage,
//! and the calibrated service timing model behind Figures 6-8 and 11.

mod corpus;
mod dpf;
mod ffu;
mod score;
mod service;

pub use corpus::{CorpusGen, Document, Query};
pub use dpf::{alignment_score, dpf_features, min_cover_window, AlignParams};
pub use ffu::{
    AdjacentPair, FeatureFsm, FfuBank, FirstPosition, LongestStreak, OrderedPhrase, TermCount,
};
pub use score::{rank_documents, Scorer};
pub use service::{QueryArrival, RankingMode, RankingParams, RankingServer};
