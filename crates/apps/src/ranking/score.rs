//! The machine-learned scoring stage.
//!
//! In Catapult v2 the ML model runs in *software* (unlike v1): "neither
//! compute post-processed synthetic features nor run the machine-learning
//! portion of search ranking on the FPGAs". This module is that software
//! stage: a logistic model over the concatenated FFU + DPF feature vector.

use dcsim::SimRng;

use super::corpus::{Document, Query};
use super::dpf::dpf_features;
use super::ffu::FfuBank;

/// A logistic scoring model over a fixed-length feature vector.
#[derive(Debug, Clone)]
pub struct Scorer {
    weights: Vec<f32>,
    bias: f32,
}

impl Scorer {
    /// A deterministic model with `features` inputs, weights drawn from
    /// `seed`. Every feature is "bigger is better" (counts, earliness,
    /// coverage, alignment), so weights are positive.
    pub fn from_seed(features: usize, seed: u64) -> Scorer {
        let mut rng = SimRng::seed_from(seed);
        let weights = (0..features).map(|_| 0.2 + rng.uniform() as f32).collect();
        Scorer {
            weights,
            bias: -1.0,
        }
    }

    /// Number of features the model expects.
    pub fn feature_count(&self) -> usize {
        self.weights.len()
    }

    /// Relevance in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the model width.
    pub fn score(&self, features: &[f32]) -> f32 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature vector width mismatch"
        );
        let z: f32 = self
            .weights
            .iter()
            .zip(features)
            .map(|(w, f)| w * f)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }
}

/// End-to-end ranking of candidate documents for a query: FFU + DPF
/// feature extraction followed by model scoring. Returns `(index, score)`
/// pairs, best first. This is the computation the FPGA accelerates; it is
/// used as-is by the examples and correctness tests.
pub fn rank_documents(query: &Query, docs: &[Document], seed: u64) -> Vec<(usize, f32)> {
    let mut bank = FfuBank::for_query(query);
    let width = bank.feature_count() + 3;
    let scorer = Scorer::from_seed(width, seed);
    let mut scored: Vec<(usize, f32)> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut features = bank.compute(d);
            features.extend(dpf_features(query, d));
            (i, scorer.score(&features))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::corpus::CorpusGen;

    #[test]
    fn score_is_probability() {
        let s = Scorer::from_seed(10, 1);
        let v = s.score(&[1.0; 10]);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Scorer::from_seed(8, 42);
        let b = Scorer::from_seed(8, 42);
        assert_eq!(a.score(&[0.5; 8]), b.score(&[0.5; 8]));
    }

    #[test]
    fn more_matches_scores_higher() {
        let q = Query { terms: vec![1, 2] };
        let relevant = Document {
            tokens: vec![1, 2, 9, 1, 2],
        };
        let irrelevant = Document {
            tokens: vec![7, 8, 9, 10, 11],
        };
        let ranked = rank_documents(&q, &[irrelevant, relevant], 7);
        assert_eq!(ranked[0].0, 1, "relevant document ranks first");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn ranking_separates_planted_relevance_statistically() {
        let gen = CorpusGen::new(50_000, 1.0);
        let mut rng = dcsim::SimRng::seed_from(3);
        let mut wins = 0;
        let trials = 50;
        for _ in 0..trials {
            let q = gen.query(&mut rng, 3);
            let relevant = gen.document(&mut rng, &q, 300, 0.95);
            let chaff = gen.document(&mut rng, &q, 300, 0.0);
            let ranked = rank_documents(&q, &[chaff, relevant], 7);
            if ranked[0].0 == 1 {
                wins += 1;
            }
        }
        assert!(wins >= trials * 8 / 10, "wins {wins}/{trials}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        Scorer::from_seed(4, 1).score(&[1.0; 5]);
    }
}
