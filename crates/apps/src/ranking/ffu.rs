//! The Feature Functional Unit: "traditional finite state machines used in
//! many search engines (e.g. 'count the number of occurrences of query
//! term two')".
//!
//! Each feature is a genuine FSM stepped once per document token; the
//! [`FfuBank`] runs all of them in a single pass over the document, which
//! is exactly how the hardware streams tokens through parallel FSMs.

use super::corpus::{Document, Query};

/// A per-document feature computed by stepping an FSM over the token
/// stream.
pub trait FeatureFsm: Send {
    /// Resets state for a new document.
    fn reset(&mut self);
    /// Consumes one token at position `pos`.
    fn step(&mut self, token: u32, pos: usize);
    /// The feature value after the stream ends.
    fn value(&self) -> f32;
    /// Feature name for reports.
    fn name(&self) -> &'static str;
}

/// Occurrences of one query term.
#[derive(Debug, Clone)]
pub struct TermCount {
    term: u32,
    count: u32,
}

impl TermCount {
    /// Counts occurrences of `term`.
    pub fn new(term: u32) -> Self {
        TermCount { term, count: 0 }
    }
}

impl FeatureFsm for TermCount {
    fn reset(&mut self) {
        self.count = 0;
    }
    fn step(&mut self, token: u32, _pos: usize) {
        if token == self.term {
            self.count += 1;
        }
    }
    fn value(&self) -> f32 {
        self.count as f32
    }
    fn name(&self) -> &'static str {
        "term_count"
    }
}

/// Earliness of the first occurrence of a term: `1/(1+pos)`, so earlier
/// is larger and an absent term scores 0.
#[derive(Debug, Clone)]
pub struct FirstPosition {
    term: u32,
    pos: Option<usize>,
}

impl FirstPosition {
    /// Tracks the first occurrence of `term`.
    pub fn new(term: u32) -> Self {
        FirstPosition { term, pos: None }
    }
}

impl FeatureFsm for FirstPosition {
    fn reset(&mut self) {
        self.pos = None;
    }
    fn step(&mut self, token: u32, pos: usize) {
        if token == self.term && self.pos.is_none() {
            self.pos = Some(pos);
        }
    }
    fn value(&self) -> f32 {
        self.pos.map(|p| 1.0 / (1.0 + p as f32)).unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "first_position"
    }
}

/// Counts adjacent occurrences of an ordered term pair (a two-state FSM).
#[derive(Debug, Clone)]
pub struct AdjacentPair {
    first: u32,
    second: u32,
    armed: bool,
    count: u32,
}

impl AdjacentPair {
    /// Counts `first` immediately followed by `second`.
    pub fn new(first: u32, second: u32) -> Self {
        AdjacentPair {
            first,
            second,
            armed: false,
            count: 0,
        }
    }
}

impl FeatureFsm for AdjacentPair {
    fn reset(&mut self) {
        self.armed = false;
        self.count = 0;
    }
    fn step(&mut self, token: u32, _pos: usize) {
        if self.armed && token == self.second {
            self.count += 1;
        }
        self.armed = token == self.first;
    }
    fn value(&self) -> f32 {
        self.count as f32
    }
    fn name(&self) -> &'static str {
        "adjacent_pair"
    }
}

/// Counts complete in-order (not necessarily adjacent) traversals of the
/// whole query — an N-state chain FSM.
#[derive(Debug, Clone)]
pub struct OrderedPhrase {
    terms: Vec<u32>,
    state: usize,
    count: u32,
}

impl OrderedPhrase {
    /// Counts in-order traversals of `terms`.
    pub fn new(terms: Vec<u32>) -> Self {
        OrderedPhrase {
            terms,
            state: 0,
            count: 0,
        }
    }
}

impl FeatureFsm for OrderedPhrase {
    fn reset(&mut self) {
        self.state = 0;
        self.count = 0;
    }
    fn step(&mut self, token: u32, _pos: usize) {
        if self.terms.is_empty() {
            return;
        }
        if token == self.terms[self.state] {
            self.state += 1;
            if self.state == self.terms.len() {
                self.count += 1;
                self.state = 0;
            }
        }
    }
    fn value(&self) -> f32 {
        self.count as f32
    }
    fn name(&self) -> &'static str {
        "ordered_phrase"
    }
}

/// Longest run of consecutive tokens that are all query terms.
#[derive(Debug, Clone)]
pub struct LongestStreak {
    terms: Vec<u32>,
    current: u32,
    best: u32,
}

impl LongestStreak {
    /// Tracks the longest consecutive run of any of `terms`.
    pub fn new(terms: Vec<u32>) -> Self {
        LongestStreak {
            terms,
            current: 0,
            best: 0,
        }
    }
}

impl FeatureFsm for LongestStreak {
    fn reset(&mut self) {
        self.current = 0;
        self.best = 0;
    }
    fn step(&mut self, token: u32, _pos: usize) {
        if self.terms.contains(&token) {
            self.current += 1;
            self.best = self.best.max(self.current);
        } else {
            self.current = 0;
        }
    }
    fn value(&self) -> f32 {
        self.best as f32
    }
    fn name(&self) -> &'static str {
        "longest_streak"
    }
}

/// A bank of FSMs instantiated for one query; computes all features in a
/// single streaming pass over the document.
pub struct FfuBank {
    fsms: Vec<Box<dyn FeatureFsm>>,
}

impl FfuBank {
    /// Builds the standard feature set for `query`: per-term counts and
    /// first positions, adjacent-pair counts, ordered-phrase and streak
    /// features.
    pub fn for_query(query: &Query) -> FfuBank {
        let mut fsms: Vec<Box<dyn FeatureFsm>> = Vec::new();
        for &t in &query.terms {
            fsms.push(Box::new(TermCount::new(t)));
            fsms.push(Box::new(FirstPosition::new(t)));
        }
        for pair in query.terms.windows(2) {
            fsms.push(Box::new(AdjacentPair::new(pair[0], pair[1])));
        }
        fsms.push(Box::new(OrderedPhrase::new(query.terms.clone())));
        fsms.push(Box::new(LongestStreak::new(query.terms.clone())));
        FfuBank { fsms }
    }

    /// Number of features this bank produces.
    pub fn feature_count(&self) -> usize {
        self.fsms.len()
    }

    /// Streams the document through every FSM and returns the feature
    /// vector.
    pub fn compute(&mut self, doc: &Document) -> Vec<f32> {
        for fsm in &mut self.fsms {
            fsm.reset();
        }
        for (pos, &tok) in doc.tokens.iter().enumerate() {
            for fsm in &mut self.fsms {
                fsm.step(tok, pos);
            }
        }
        self.fsms.iter().map(|f| f.value()).collect()
    }
}

impl core::fmt::Debug for FfuBank {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FfuBank({} fsms)", self.fsms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(tokens: &[u32]) -> Document {
        Document {
            tokens: tokens.to_vec(),
        }
    }

    #[test]
    fn term_count_counts() {
        let mut f = TermCount::new(7);
        for (p, &t) in [7u32, 1, 7, 7, 2].iter().enumerate() {
            f.step(t, p);
        }
        assert_eq!(f.value(), 3.0);
        f.reset();
        assert_eq!(f.value(), 0.0);
    }

    #[test]
    fn first_position_finds_first() {
        let mut f = FirstPosition::new(5);
        for (p, &t) in [1u32, 2, 5, 5].iter().enumerate() {
            f.step(t, p);
        }
        assert_eq!(f.value(), 1.0 / 3.0, "first occurrence at position 2");
        let mut g = FirstPosition::new(9);
        g.step(1, 0);
        assert_eq!(g.value(), 0.0, "absent term");
    }

    #[test]
    fn adjacent_pair_requires_adjacency() {
        let mut f = AdjacentPair::new(1, 2);
        for (p, &t) in [1u32, 2, 1, 3, 2, 1, 2].iter().enumerate() {
            f.step(t, p);
        }
        assert_eq!(f.value(), 2.0, "1,2 appears adjacently twice");
    }

    #[test]
    fn ordered_phrase_spans_gaps() {
        let mut f = OrderedPhrase::new(vec![1, 2, 3]);
        for (p, &t) in [1u32, 9, 2, 9, 3, 1, 2, 3].iter().enumerate() {
            f.step(t, p);
        }
        assert_eq!(f.value(), 2.0);
    }

    #[test]
    fn longest_streak_tracks_runs() {
        let mut f = LongestStreak::new(vec![1, 2]);
        for (p, &t) in [1u32, 2, 1, 9, 2, 2].iter().enumerate() {
            f.step(t, p);
        }
        assert_eq!(f.value(), 3.0);
    }

    #[test]
    fn bank_single_pass_matches_individual_fsms() {
        let q = Query { terms: vec![3, 4] };
        let d = doc(&[3, 4, 9, 3, 3, 4]);
        let mut bank = FfuBank::for_query(&q);
        let features = bank.compute(&d);
        // term counts: 3 -> 3, 4 -> 2
        assert_eq!(features[0], 3.0);
        assert_eq!(features[2], 2.0);
        // first positions (earliness): pos 0 -> 1.0, pos 1 -> 0.5
        assert_eq!(features[1], 1.0);
        assert_eq!(features[3], 0.5);
        // adjacent pair (3,4): positions (0,1) and (4,5)
        assert_eq!(features[4], 2.0);
    }

    #[test]
    fn bank_is_reusable_across_documents() {
        let q = Query { terms: vec![1] };
        let mut bank = FfuBank::for_query(&q);
        let f1 = bank.compute(&doc(&[1, 1]));
        let f2 = bank.compute(&doc(&[2]));
        let f3 = bank.compute(&doc(&[1, 1]));
        assert_eq!(f1, f3);
        assert_ne!(f1, f2);
    }

    #[test]
    fn empty_document_gives_defaults() {
        let q = Query { terms: vec![1, 2] };
        let mut bank = FfuBank::for_query(&q);
        let f = bank.compute(&doc(&[]));
        assert_eq!(f.len(), bank.feature_count());
        assert!(f.iter().all(|&v| v == 0.0));
    }
}
