//! Network acceleration: host-to-host line-rate encryption in the
//! bump-in-the-wire (Section IV).
//!
//! Two servers exchange packets through their FPGAs. Software installs a
//! per-flow AES-GCM-128 key in both flow tables; thereafter ciphertext
//! rides the wire while both endpoints keep seeing plaintext — with zero
//! CPU cost.
//!
//! Run with: `cargo run --example crypto_bump`

use apps::crypto::{CipherSuite, CpuCryptoModel, CryptoTap, FlowKey};
use bytes::Bytes;
use dcnet::{Msg, NetEvent, NodeAddr, Packet, PortId, TrafficClass};
use dcsim::{Component, ComponentId, Context, Engine, SimTime};
use shell::{Shell, ShellConfig, PORT_NIC, PORT_TOR};

/// A host NIC: records what the host receives off its FPGA.
#[derive(Debug, Default)]
struct HostNic {
    received: Vec<Packet>,
}

impl Component<Msg> for HostNic {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, .. }) = msg {
            self.received.push(pkt);
        }
    }
}

/// A wire sniffer standing in for the TOR: forwards between the two
/// shells while recording the ciphertext it sees.
#[derive(Debug)]
struct WireSniffer {
    left: (ComponentId, PortId),
    right: (ComponentId, PortId),
    observed: Vec<Packet>,
}

impl Component<Msg> for WireSniffer {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, ingress }) = msg {
            self.observed.push(pkt.clone());
            let dest = if ingress == PortId(0) {
                self.right
            } else {
                self.left
            };
            ctx.send(dest.0, Msg::packet(pkt, dest.1));
        }
    }
}

fn main() {
    let mut engine: Engine<Msg> = Engine::new(1);
    let addr_a = NodeAddr::new(0, 0, 1);
    let addr_b = NodeAddr::new(0, 0, 2);

    // Component ids are assigned in registration order.
    let shell_a_id = ComponentId::from_raw(0);
    let shell_b_id = ComponentId::from_raw(1);
    let sniffer_id = ComponentId::from_raw(2);
    let nic_a_id = ComponentId::from_raw(3);
    let nic_b_id = ComponentId::from_raw(4);

    let secret = b"stay out of band"; // 16-byte AES-128 key
    let flow = FlowKey {
        src: addr_a,
        dst: addr_b,
        src_port: 7000,
        dst_port: 8000,
    };

    // Software control plane installs the flow key in both FPGAs.
    let mut tap_a = CryptoTap::new();
    tap_a.add_flow(flow, CipherSuite::AesGcm128, secret);
    let mut tap_b = CryptoTap::new();
    tap_b.add_flow(flow, CipherSuite::AesGcm128, secret);

    let mut shell_a = Shell::new(addr_a, ShellConfig::default());
    shell_a.set_tap(Box::new(tap_a));
    shell_a.connect_nic(nic_a_id, PortId(0));
    shell_a.connect_tor(sniffer_id, PortId(0));
    let mut shell_b = Shell::new(addr_b, ShellConfig::default());
    shell_b.set_tap(Box::new(tap_b));
    shell_b.connect_nic(nic_b_id, PortId(0));
    shell_b.connect_tor(sniffer_id, PortId(1));

    engine.add_component(shell_a);
    engine.add_component(shell_b);
    engine.add_component(WireSniffer {
        left: (shell_a_id, PORT_TOR),
        right: (shell_b_id, PORT_TOR),
        observed: Vec::new(),
    });
    engine.add_component(HostNic::default());
    engine.add_component(HostNic::default());

    // Host A sends plaintext packets into its own FPGA.
    let messages: [&[u8]; 3] = [
        b"GET /index.html",
        b"account=42&amount=1000000",
        b"the quick brown fox jumps over the lazy dog",
    ];
    for (i, m) in messages.iter().enumerate() {
        let pkt = Packet::new(
            addr_a,
            addr_b,
            7000,
            8000,
            TrafficClass::BEST_EFFORT,
            Bytes::copy_from_slice(m),
        );
        engine.schedule(
            SimTime::from_micros(20 * i as u64),
            shell_a_id,
            Msg::packet(pkt, PORT_NIC),
        );
    }
    engine.run_to_idle();

    let sniffer = engine.component::<WireSniffer>(sniffer_id).unwrap();
    let nic_b = engine.component::<HostNic>(nic_b_id).unwrap();

    println!("== what the network saw (ciphertext) ==");
    for pkt in &sniffer.observed {
        let head: Vec<String> = pkt
            .payload
            .iter()
            .take(12)
            .map(|b| format!("{b:02x}"))
            .collect();
        println!("  {} bytes: {}..", pkt.payload.len(), head.join(""));
        assert!(
            !messages.iter().any(|m| pkt.payload.as_ref() == *m),
            "plaintext leaked onto the wire!"
        );
    }

    println!("\n== what host B received (plaintext restored) ==");
    for pkt in &nic_b.received {
        println!("  {:?}", String::from_utf8_lossy(&pkt.payload));
    }
    assert_eq!(nic_b.received.len(), messages.len());

    let cpu = CpuCryptoModel::default();
    println!("\n== why offload ==");
    println!(
        "software AES-GCM-128 at 40 Gb/s full duplex: {:.1} cores",
        cpu.cores_needed(CipherSuite::AesGcm128, 40.0, true)
    );
    println!(
        "software AES-CBC-128-SHA1:                   {:.1} cores",
        cpu.cores_needed(CipherSuite::AesCbc128Sha1, 40.0, true)
    );
    println!("FPGA offload:                                0.0 cores");
}
