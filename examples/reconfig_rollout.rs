//! Fleet management: rolling a new role image across a live service.
//!
//! A pool of FPGAs serves traffic while the operator rolls out a new role
//! version rack by rack with *partial* reconfiguration — packets keep
//! flowing the whole time. One node gets a buggy image whose bridge is
//! dead; its FPGA Manager power-cycles it back to the golden image through
//! the management side-channel, exactly as Section II prescribes.
//!
//! Run with: `cargo run --release --example reconfig_rollout`

use bytes::Bytes;
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{Component, Context, SimTime};
use haas::{FpgaManager, NodeStatus};
use shell::{LtlDeliver, ShellCmd};

#[derive(Debug, Default)]
struct Counter {
    delivered: usize,
}

impl Component<Msg> for Counter {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if msg.downcast::<LtlDeliver>().is_ok() {
            self.delivered += 1;
        }
    }
}

fn main() {
    let mut cloud = ClusterBuilder::paper(64, 1).build();

    // Four service FPGAs, one client hammering them round-robin.
    let nodes: Vec<NodeAddr> = (0..4).map(|t| NodeAddr::new(0, t, 0)).collect();
    let client = NodeAddr::new(0, 9, 9);
    cloud.add_shell(client);
    let mut conns = Vec::new();
    for &n in &nodes {
        cloud.add_shell(n);
        let (to_n, _, _, _) = cloud.connect_pair(client, n);
        conns.push(to_n);
        let counter = cloud.engine_mut().add_component(Counter::default());
        cloud.set_consumer(n, counter);
    }
    let client_shell = cloud.shell_id(client).expect("client exists");

    // Continuous traffic to every node for 2 simulated seconds.
    let total_msgs = 2_000u64;
    for k in 0..total_msgs {
        let conn = conns[(k % 4) as usize];
        cloud.engine_mut().schedule(
            SimTime::from_micros(k * 1_000),
            client_shell,
            Msg::custom(ShellCmd::LtlSend {
                conn,
                vc: 0,
                payload: Bytes::from_static(b"serving"),
            }),
        );
    }

    // Rolling partial reconfiguration: one rack every 300 ms.
    println!("== rolling out role v2 with partial reconfiguration ==");
    let mut fms: Vec<FpgaManager> = nodes.iter().map(|&n| FpgaManager::new(n)).collect();
    for fm in &mut fms {
        fm.configure(fpga::Image::application("svc-image", "role-v1"));
        fm.configuration_done();
    }
    for (i, &n) in nodes.iter().enumerate() {
        let at = SimTime::from_millis(200 + i as u64 * 300);
        let shell_id = cloud.shell_id(n).expect("node exists");
        cloud.engine_mut().schedule(
            at,
            shell_id,
            Msg::custom(ShellCmd::Reconfigure { partial: true }),
        );
        let load_time = fms[i].configure_role("role-v2");
        println!("  {n}: partial reconfig at {at} (load {load_time})");
        fms[i].configuration_done();
    }
    cloud.run_to_idle();

    // Read the whole fleet's counters off one telemetry registry snapshot.
    let snap = cloud.metrics_snapshot();
    let mut delivered = 0;
    for (i, &n) in nodes.iter().enumerate() {
        let served = snap
            .counter(&format!("shell/{n}/ltl/msgs_delivered"))
            .unwrap_or(0);
        let drops = snap
            .counter(&format!("shell/{n}/reconfig_drops"))
            .unwrap_or(0);
        delivered += served;
        println!(
            "  {n}: role {:?}, {served} messages served, 0 dropped by reconfig ({})",
            fms[i].role_name(),
            if drops == 0 {
                "bridge stayed up"
            } else {
                "UNEXPECTED DROPS"
            }
        );
        assert_eq!(drops, 0);
    }
    assert_eq!(delivered, total_msgs);
    println!("all {delivered} messages delivered during the rollout\n");

    // A bad image: bridge-less bitstream makes the node unreachable; the
    // management-port power cycle restores the golden image.
    println!("== bad image recovery via the management side-channel ==");
    let victim = &mut fms[0];
    let mut buggy = fpga::Image::application("role-v3-rc1", "experimental");
    buggy.features.bridge = false;
    victim.configure(buggy);
    victim.configuration_done();
    println!(
        "  {}: status after bad load = {:?}",
        victim.addr(),
        victim.status()
    );
    assert_eq!(victim.status(), NodeStatus::Unreachable);
    victim.power_cycle();
    println!(
        "  {}: status after power cycle = {:?} (image {:?})",
        victim.addr(),
        victim.status(),
        victim.image_name()
    );
    assert_eq!(victim.status(), NodeStatus::Healthy);
    println!("\ndone.");
}
