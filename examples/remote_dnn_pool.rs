//! Global acceleration: a Hardware-as-a-Service DNN pool (Sections V-E/F).
//!
//! The Resource Manager tracks donated FPGAs; a Service Manager leases
//! four of them for a DNN service and load-balances clients across the
//! pool; clients reach their accelerator directly over LTL. A node failure
//! mid-run is detected and replaced. The MLP itself is real — the same
//! inference the pool would serve.
//!
//! Run with: `cargo run --release --example remote_dnn_pool`

use apps::dnn::{Mlp, MlpRole};
use apps::remote::{IssueRequest, RemoteClient};
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{SimDuration, SimTime};
use haas::{Constraints, FpgaManager, NodeStatus, ResourceManager, ServiceManager};
use host::{OpenLoopGen, StartGenerator};

fn main() {
    println!("== the model served by the pool ==");
    let mlp = Mlp::new(&[64, 128, 64, 10], 3);
    let input: Vec<f32> = (0..64).map(|i| (i as f32 / 64.0).sin()).collect();
    let probs = mlp.infer(&input);
    let best = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty output");
    println!(
        "MLP 64-128-64-10: {} MACs/inference, sample argmax class {} (p={:.3})",
        mlp.macs(),
        best.0,
        best.1
    );

    println!("\n== HaaS allocates the pool ==");
    let mut rm = ResourceManager::new();
    for tor in 0..8u16 {
        rm.register(NodeAddr::new(0, tor, 0)); // donated FPGAs, one per rack
    }
    let mut sm = ServiceManager::new("dnn-pool");
    sm.grow(&mut rm, 4, &Constraints::default())
        .expect("pool capacity available");
    println!(
        "RM pool: {} registered, {} unallocated after lease",
        rm.total(),
        rm.unallocated()
    );
    println!("SM endpoints: {:?}", sm.endpoints());

    // Each node's FPGA Manager loads the DNN image.
    let mut fms: Vec<FpgaManager> = sm
        .endpoints()
        .iter()
        .map(|&a| FpgaManager::new(a))
        .collect();
    for fm in &mut fms {
        fm.configure(fpga::Image::application("dnn-v1", "mlp-64-128-64-10"));
        fm.configuration_done();
        assert_eq!(fm.status(), NodeStatus::Healthy);
    }
    println!("FMs configured image: {}", fms[0].image_name());

    println!("\n== clients drive the pool over LTL ==");
    let mut cloud = ClusterBuilder::paper(5, 1).build();
    let accel_addrs = sm.endpoints();
    let accel_shells: Vec<_> = accel_addrs
        .iter()
        .map(|&a| (a, cloud.add_shell(a)))
        .collect();
    let clients = 8usize;
    let client_addrs: Vec<NodeAddr> = (0..clients)
        .map(|i| NodeAddr::new(0, 10 + i as u16 / 4, 2 + (i % 4) as u16))
        .collect();
    for &c in &client_addrs {
        cloud.add_shell(c);
    }

    // Round-robin placement through the SM, plus LTL wiring.
    let mut per_accel_routes: std::collections::HashMap<NodeAddr, Vec<_>> = Default::default();
    let mut client_conns = Vec::new();
    for &c in &client_addrs {
        let accel = sm.next_endpoint().expect("pool non-empty");
        let (c_send, a_send, _c_recv, a_recv) = cloud.connect_pair(c, accel);
        per_accel_routes
            .entry(accel)
            .or_default()
            .push((a_recv, a_send));
        client_conns.push((c, c_send));
    }
    // Each pool FPGA runs the *real* MLP: requests carry feature vectors,
    // replies carry the predicted class.
    let mut role_ids = Vec::new();
    for &(addr, shell_id) in &accel_shells {
        let mut role = MlpRole::new(
            shell_id,
            Mlp::new(&[64, 128, 64, 10], 3),
            SimDuration::from_micros(300),
            0.15,
            8,
        );
        for &(recv, send) in per_accel_routes.get(&addr).into_iter().flatten() {
            role.add_reply_route(recv, send);
        }
        let id = cloud.engine_mut().add_component(role);
        cloud.set_consumer(addr, id);
        role_ids.push(id);
    }
    let mut client_ids = Vec::new();
    for (i, &(c, conn)) in client_conns.iter().enumerate() {
        let shell_id = cloud.shell_id(c).expect("client shell exists");
        // 8-byte id + 64 f32 features = 264-byte inference requests.
        let client_id = cloud
            .engine_mut()
            .add_component(RemoteClient::new(shell_id, conn, 264, i as u16));
        cloud.set_consumer(c, client_id);
        let gen = cloud.engine_mut().add_component(OpenLoopGen::new(
            client_id,
            SimDuration::from_micros(845), // ~1185 req/s, stress rate
            Some(3_000),
            |_, _| Msg::custom(IssueRequest),
        ));
        cloud.engine_mut().schedule(
            SimTime::from_nanos(37 * i as u64),
            gen,
            Msg::custom(StartGenerator),
        );
        client_ids.push(client_id);
    }
    cloud.run_to_idle();

    let mut all = dcsim::PercentileRecorder::new();
    for id in client_ids {
        let c = cloud
            .engine_mut()
            .component_mut::<RemoteClient>(id)
            .expect("client exists");
        all.extend(c.latencies_mut().iter());
    }
    println!(
        "{} inferences served: avg {:.0}us  p95 {:.0}us  p99 {:.0}us",
        all.count(),
        all.mean() / 1e3,
        all.percentile(95.0).unwrap_or(0) as f64 / 1e3,
        all.percentile(99.0).unwrap_or(0) as f64 / 1e3,
    );
    let served: u64 = role_ids
        .iter()
        .map(|&id| {
            cloud
                .engine()
                .component::<MlpRole>(id)
                .expect("role exists")
                .served()
        })
        .sum();
    println!("pool ran {served} real MLP inferences (host CPUs of donated FPGAs: zero load)");

    println!("\n== failure handling ==");
    let victim = sm.endpoints()[0];
    let lease = rm.mark_failed(victim).expect("victim held a lease");
    let replacement = sm
        .handle_failure(&mut rm, lease)
        .expect("spares available")
        .expect("replacement granted");
    println!("node {victim} failed; SM replaced it with {replacement} in one RM round trip");
    println!("pool intact: {} endpoints", sm.endpoints().len());
}
