//! Quickstart: build a small Configurable Cloud, send an LTL message
//! between two FPGAs, and rank documents with the real FFU/DPF pipeline.
//!
//! Run with: `cargo run --example quickstart`

use apps::ranking::{rank_documents, CorpusGen};
use bytes::Bytes;
use catapult::{probe::schedule_probes, ClusterBuilder};
use dcnet::{Msg, NodeAddr};
use dcsim::{Component, Context, SimDuration, SimRng, SimTime};
use shell::{LtlDeliver, ShellCmd};

/// Receives LTL messages on behalf of the local role.
#[derive(Debug, Default)]
struct Receiver {
    messages: Vec<LtlDeliver>,
}

impl Component<Msg> for Receiver {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Ok(d) = msg.downcast::<LtlDeliver>() {
            if self.messages.len() < 3 {
                println!(
                    "  [{}] FPGA received {} bytes from {} on vc {}",
                    ctx.now(),
                    d.payload.len(),
                    d.src,
                    d.vc
                );
            }
            self.messages.push(d);
        }
    }
}

fn main() {
    println!("== 1. A one-pod Configurable Cloud (960 host slots) ==");
    let mut cloud = ClusterBuilder::paper(42, 1).build();
    println!(
        "fabric: {} switches, {} host slots",
        cloud.fabric().switch_count(),
        cloud.fabric().shape().total_hosts()
    );

    // Two servers in different racks get bump-in-the-wire FPGAs.
    let a = NodeAddr::new(0, 0, 3);
    let b = NodeAddr::new(0, 7, 11);
    let a_shell = cloud.add_shell(a);
    cloud.add_shell(b);
    let (a_to_b, _b_to_a, _, _) = cloud.connect_pair(a, b);

    println!("\n== 2. Direct FPGA-to-FPGA messaging over LTL ==");
    let receiver = cloud.engine_mut().add_component(Receiver::default());
    cloud.set_consumer(b, receiver);
    cloud.engine_mut().schedule(
        SimTime::ZERO,
        a_shell,
        Msg::custom(ShellCmd::LtlSend {
            conn: a_to_b,
            vc: 1,
            payload: Bytes::from_static(b"hello from the acceleration plane"),
        }),
    );
    // Measure round trips at a low probe rate too.
    schedule_probes(
        &mut cloud,
        a,
        a_to_b,
        SimTime::from_micros(10),
        SimDuration::from_micros(100),
        100,
        32,
    );
    cloud.run_to_idle();
    let rtts = cloud.shell_mut(a).ltl_mut().rtts_mut();
    println!(
        "  LTL RTT across the pod: avg {:.2}us, p99 {:.2}us over {} probes",
        rtts.mean() / 1e3,
        rtts.percentile(99.0).unwrap_or(0) as f64 / 1e3,
        rtts.count()
    );

    println!("\n== 3. The ranking computation the FPGA accelerates ==");
    let gen = CorpusGen::new(50_000, 1.0);
    let mut rng = SimRng::seed_from(7);
    let query = gen.query(&mut rng, 3);
    let docs: Vec<_> = (0..8)
        .map(|i| gen.document(&mut rng, &query, 300, if i < 2 { 1.0 } else { 0.0 }))
        .collect();
    let ranked = rank_documents(&query, &docs, 42);
    println!("  query terms: {:?}", query.terms);
    for (rank, (doc, score)) in ranked.iter().take(3).enumerate() {
        let planted = if *doc < 2 {
            " (relevant: query terms planted)"
        } else {
            ""
        };
        println!(
            "  #{} -> document {} (score {:.3}){planted}",
            rank + 1,
            doc,
            score
        );
    }
    println!("\ndone.");
}
