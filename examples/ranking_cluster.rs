//! Service acceleration: the Bing ranking workload in all three modes
//! (Section III and Figure 11) — software only, local FPGA, and remote
//! FPGA over LTL — at one load point.
//!
//! Run with: `cargo run --release --example ranking_cluster`

use apps::ranking::{QueryArrival, RankingMode, RankingParams, RankingServer};
use apps::remote::AcceleratorRole;
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{Engine, SimDuration, SimTime};
use host::{OpenLoopGen, StartGenerator};

const QUERIES: u64 = 30_000;

fn standalone(mode: RankingMode, qps: f64, label: &str) {
    let params = RankingParams::default();
    let mut e: Engine<Msg> = Engine::new(11);
    let server_id = e.next_component_id();
    e.add_component(RankingServer::new(params, mode));
    let gen = e.add_component(OpenLoopGen::new(
        server_id,
        SimDuration::from_secs_f64(1.0 / qps),
        Some(QUERIES),
        |id, _| Msg::custom(QueryArrival { id }),
    ));
    e.schedule(SimTime::ZERO, gen, Msg::custom(StartGenerator));
    e.run_to_idle();
    let now = e.now();
    let server = e.component_mut::<RankingServer>(server_id).unwrap();
    report(label, server, now);
}

fn report(label: &str, server: &mut RankingServer, now: SimTime) {
    let thr = server.throughput(now);
    let lat = server.latencies_mut();
    println!(
        "{label:<22} {thr:>8.0} qps  mean {:>6.2} ms  p99 {:>6.2} ms  p99.9 {:>6.2} ms",
        lat.mean() / 1e6,
        lat.percentile(99.0).unwrap_or(0) as f64 / 1e6,
        lat.percentile(99.9).unwrap_or(0) as f64 / 1e6,
    );
}

fn remote(qps: f64) {
    let params = RankingParams::default();
    let mut cloud = ClusterBuilder::paper(11, 1).build();
    let host_addr = NodeAddr::new(0, 0, 1);
    let accel_addr = NodeAddr::new(0, 5, 9); // donated FPGA in another rack
    let host_shell = cloud.add_shell(host_addr);
    let accel_shell = cloud.add_shell(accel_addr);
    let (to_accel, to_host, _h, a_recv) = cloud.connect_pair(host_addr, accel_addr);

    let server_id = cloud.engine_mut().add_component(RankingServer::new(
        params.clone(),
        RankingMode::RemoteFpga {
            shell: host_shell,
            conn: to_accel,
        },
    ));
    let mut role = AcceleratorRole::new(
        accel_shell,
        params.fpga_latency,
        params.sigma / 2.0,
        params.fpga_slots,
        params.response_bytes,
    );
    role.add_reply_route(a_recv, to_host);
    let role_id = cloud.engine_mut().add_component(role);
    cloud.set_consumer(host_addr, server_id);
    cloud.set_consumer(accel_addr, role_id);
    let gen = cloud.engine_mut().add_component(OpenLoopGen::new(
        server_id,
        SimDuration::from_secs_f64(1.0 / qps),
        Some(QUERIES),
        |id, _| Msg::custom(QueryArrival { id }),
    ));
    cloud
        .engine_mut()
        .schedule(SimTime::ZERO, gen, Msg::custom(StartGenerator));
    cloud.run_to_idle();
    let now = cloud.now();
    let server = cloud
        .engine_mut()
        .component_mut::<RankingServer>(server_id)
        .unwrap();
    report("remote FPGA (LTL)", server, now);
}

fn main() {
    let params = RankingParams::default();
    let qps = 0.9 * params.software_capacity();
    println!(
        "ranking service: {} cores, software capacity {:.0} qps, FPGA capacity {:.0} qps",
        12,
        params.software_capacity(),
        params.fpga_capacity()
    );
    println!("offered load: {qps:.0} qps ({QUERIES} queries)\n");
    standalone(RankingMode::Software, qps, "software only");
    standalone(RankingMode::LocalFpga, qps, "local FPGA (PCIe)");
    remote(qps);
    println!("\nAt the same load the FPGA modes cut latency ~3x; remote adds only the");
    println!("LTL round trip (~8us) to a multi-millisecond query — the paper's point.");
}
