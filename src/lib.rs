//! Workspace umbrella crate; see the catapult crate for the public API.
