//! Determinism regression tests for the parallel sweep driver.
//!
//! A sweep is a pure function of its seed: running it twice must produce
//! byte-identical result rows, and the thread count used to fan the points
//! out across cores must never leak into the numbers. Both properties are
//! what let `CATAPULT_THREADS` be a pure performance knob.

use catapult::experiments::{fig06, RankingSweepParams};

mod common;

fn quick_params() -> RankingSweepParams {
    RankingSweepParams {
        queries_per_point: 4_000,
        loads: vec![0.5, 1.0, 1.5, 2.0, 2.5],
        ..RankingSweepParams::default()
    }
}

/// Serialise every curve of a fig06 run so runs can be compared for exact
/// (bitwise) equality, not approximate float closeness.
fn fingerprint(params: &RankingSweepParams) -> String {
    let curves = fig06(params);
    serde_json::to_string(&curves).expect("curves serialise")
}

#[test]
fn fig06_same_seed_is_byte_identical() {
    let params = quick_params();
    let first = fingerprint(&params);
    let second = fingerprint(&params);
    common::assert_identical("fig06 same-seed rerun", &first, &second);
}

#[test]
fn fig06_serial_and_parallel_agree() {
    let params = quick_params();

    // Environment mutation is process-global; Rust runs tests in this file
    // on separate threads of one process, so take care to restore the
    // variable even on panic.
    struct EnvGuard(Option<String>);
    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match self.0.take() {
                Some(prev) => std::env::set_var(catapult::sweep::THREADS_ENV, prev),
                None => std::env::remove_var(catapult::sweep::THREADS_ENV),
            }
        }
    }
    let _guard = EnvGuard(std::env::var(catapult::sweep::THREADS_ENV).ok());

    std::env::set_var(catapult::sweep::THREADS_ENV, "1");
    let serial = fingerprint(&params);

    std::env::set_var(catapult::sweep::THREADS_ENV, "4");
    let parallel = fingerprint(&params);

    common::assert_identical("fig06 serial vs parallel", &serial, &parallel);
}

#[test]
fn fig06_different_seeds_differ() {
    // Sanity check that the fingerprint is sensitive at all: a different
    // seed must actually move the measured latencies.
    let base = quick_params();
    let reseeded = RankingSweepParams {
        seed: base.seed.wrapping_add(1),
        ..base.clone()
    };
    assert_ne!(fingerprint(&base), fingerprint(&reseeded));
}
