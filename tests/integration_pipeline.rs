//! Multi-FPGA services: "ganging together groups of FPGAs into service
//! pools" — a three-stage accelerator pipeline spread across racks, with
//! the final stage replying to the client over LTL. HaaS allocates the
//! stages as one multi-FPGA Component.

use apps::remote::{AcceleratorRole, IssueRequest, RemoteClient};
use catapult::{Cluster, ClusterBuilder};
use dcnet::{Msg, NodeAddr};
use dcsim::{ComponentId, SimDuration, SimTime};
use haas::{Constraints, ResourceManager, ServiceManager};

struct Pipeline {
    cluster: Cluster,
    client_id: ComponentId,
    stage_roles: Vec<ComponentId>,
}

/// Builds client -> A -> B -> C -> client across four racks of one pod.
fn build_pipeline(service_us: u64) -> Pipeline {
    let mut cluster = ClusterBuilder::paper(55, 1).build();

    // HaaS: one three-FPGA component for the pipeline service.
    let mut rm = ResourceManager::new();
    for tor in 0..6u16 {
        rm.register(NodeAddr::new(0, tor, 0));
    }
    let mut sm = ServiceManager::new("rank-pipeline");
    let comp = sm
        .grow_component(&mut rm, 3, &Constraints::default())
        .expect("capacity available");
    let stages: Vec<NodeAddr> = comp.addrs().collect();
    assert_eq!(stages.len(), 3);

    let client_addr = NodeAddr::new(0, 9, 5);
    cluster.add_shell(client_addr);
    for &s in &stages {
        cluster.add_shell(s);
    }

    // Connections along the chain plus the tail-to-client reply path.
    let (client_to_a, _, _, a_recv_from_client) = cluster.connect_pair(client_addr, stages[0]);
    let (a_to_b, _, _, b_recv_from_a) = cluster.connect_pair(stages[0], stages[1]);
    let (b_to_c, _, _, c_recv_from_b) = cluster.connect_pair(stages[1], stages[2]);
    let (c_to_client, _, _, _client_recv) = cluster.connect_pair(stages[2], client_addr);

    let service = SimDuration::from_micros(service_us);
    let mut stage_roles = Vec::new();
    for (i, &addr) in stages.iter().enumerate() {
        let shell_id = cluster.shell_id(addr).expect("stage populated");
        let mut role = AcceleratorRole::new(shell_id, service, 0.1, 4, 1024);
        match i {
            0 => role.set_forward(a_to_b),
            1 => role.set_forward(b_to_c),
            _ => role.add_reply_route(c_recv_from_b, c_to_client),
        }
        let _ = (a_recv_from_client, b_recv_from_a); // recv ids fixed by wiring order
        let role_id = cluster.engine_mut().add_component(role);
        cluster.set_consumer(addr, role_id);
        stage_roles.push(role_id);
    }

    let client_shell = cluster.shell_id(client_addr).expect("client populated");
    let client = RemoteClient::new(client_shell, client_to_a, 2048, 1);
    let client_id = cluster.engine_mut().add_component(client);
    cluster.set_consumer(client_addr, client_id);

    Pipeline {
        cluster,
        client_id,
        stage_roles,
    }
}

#[test]
fn three_stage_pipeline_round_trip() {
    let mut p = build_pipeline(100);
    for i in 0..50u64 {
        p.cluster.engine_mut().schedule(
            SimTime::from_micros(i * 500),
            p.client_id,
            Msg::custom(IssueRequest),
        );
    }
    p.cluster.run_to_idle();

    let completed: Vec<u64> = p
        .stage_roles
        .iter()
        .map(|&id| {
            p.cluster
                .engine()
                .component::<AcceleratorRole>(id)
                .expect("role exists")
                .completed()
        })
        .collect();
    assert_eq!(completed, vec![50, 50, 50], "every stage saw every request");

    let client = p
        .cluster
        .engine_mut()
        .component_mut::<RemoteClient>(p.client_id)
        .expect("client exists");
    assert_eq!(client.completed(), 50);
    assert_eq!(client.outstanding(), 0);
    // End-to-end: 3 x 100us service + 4 LTL hops (~8us each) ~= 330us.
    let p50 = client.latencies_mut().percentile(50.0).unwrap() as f64 / 1e3;
    assert!(
        (250.0..450.0).contains(&p50),
        "pipeline median {p50}us out of band"
    );
}

#[test]
fn pipeline_overlaps_successive_requests() {
    // With 4 slots per stage and requests issued faster than one service
    // time apart, pipeline parallelism must keep throughput near the
    // issue rate rather than serialising stage-by-stage.
    let mut p = build_pipeline(200);
    let n = 40u64;
    for i in 0..n {
        p.cluster.engine_mut().schedule(
            SimTime::from_micros(i * 60), // 60us < 200us service
            p.client_id,
            Msg::custom(IssueRequest),
        );
    }
    p.cluster.run_to_idle();
    let total = p.cluster.now().as_micros_f64();
    let client = p
        .cluster
        .engine_mut()
        .component_mut::<RemoteClient>(p.client_id)
        .expect("client exists");
    assert_eq!(client.completed(), n as usize);
    // Fully serialised would take ~ 40 * 3 * 200us = 24ms; pipelined with
    // 4 slots/stage it finishes far faster.
    assert!(total < 8_000.0, "took {total}us — not pipelined?");
}
