//! Helpers shared by the determinism integration tests.

/// Asserts two multi-line documents are byte-identical; on mismatch,
/// fails pointing at the *first divergent line* (number plus both
/// renderings) instead of dumping two multi-kilobyte blobs to compare by
/// eye.
#[track_caller]
pub fn assert_identical(label: &str, first: &str, second: &str) {
    if first == second {
        return;
    }
    let mut a = first.lines();
    let mut b = second.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (a.next(), b.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (Some(x), Some(y)) => panic!(
                "{label}: documents diverge at line {line}:\n  first:  {x}\n  second: {y}"
            ),
            (Some(x), None) => panic!(
                "{label}: second document ends early; first continues at line {line}:\n  first:  {x}"
            ),
            (None, Some(y)) => panic!(
                "{label}: first document ends early; second continues at line {line}:\n  second: {y}"
            ),
            (None, None) => {
                // Same lines but different bytes: a trailing-newline or
                // line-terminator difference.
                panic!(
                    "{label}: documents differ only in line terminators \
                     ({} vs {} bytes)",
                    first.len(),
                    second.len()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    fn failure_message(first: &str, second: &str) -> String {
        let err = std::panic::catch_unwind(|| super::assert_identical("doc", first, second))
            .expect_err("inputs differ, the assertion must fire");
        err.downcast_ref::<String>()
            .expect("panic payload is a formatted String")
            .clone()
    }

    #[test]
    fn identical_documents_pass() {
        super::assert_identical("doc", "a\nb", "a\nb");
        super::assert_identical("doc", "", "");
    }

    #[test]
    fn points_at_the_first_divergent_line() {
        let msg = failure_message("a\nb\nc", "a\nX\nc");
        assert!(msg.contains("line 2"), "got: {msg}");
        assert!(msg.contains('X'), "got: {msg}");
    }

    #[test]
    fn reports_a_truncated_document() {
        let msg = failure_message("a\nb\nc", "a\nb");
        assert!(msg.contains("ends early"), "got: {msg}");
        assert!(msg.contains("line 3"), "got: {msg}");
    }
}
