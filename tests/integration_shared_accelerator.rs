//! The remote-acceleration economics claim: "Even at these higher loads,
//! the FPGA remains underutilized ... Having multiple servers drive fewer
//! FPGAs addresses the underutilization of the FPGAs, which is the goal of
//! our remote acceleration model." Three ranking servers share one remote
//! FPGA: aggregate throughput triples while per-query latency stays at the
//! single-server level.

use apps::ranking::{QueryArrival, RankingMode, RankingParams, RankingServer};
use apps::remote::AcceleratorRole;
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{ComponentId, SimDuration, SimTime};
use host::{OpenLoopGen, StartGenerator};

fn run_shared(servers: usize, qps_each: f64, queries_each: u64) -> (f64, Vec<f64>, f64) {
    let params = RankingParams::default();
    let mut cluster = ClusterBuilder::paper(101, 1).build();
    let accel_addr = NodeAddr::new(0, 20, 0);
    let accel_shell = cluster.add_shell(accel_addr);
    let mut role = AcceleratorRole::new(
        accel_shell,
        params.fpga_latency,
        params.sigma / 2.0,
        params.fpga_slots,
        params.response_bytes,
    );

    let mut server_ids: Vec<ComponentId> = Vec::new();
    for s in 0..servers {
        let host_addr = NodeAddr::new(0, s as u16, 1);
        let host_shell = cluster.add_shell(host_addr);
        let (to_accel, to_host, _h, a_recv) = cluster.connect_pair(host_addr, accel_addr);
        role.add_reply_route(a_recv, to_host);
        let server = cluster.engine_mut().add_component(RankingServer::new(
            params.clone(),
            RankingMode::RemoteFpga {
                shell: host_shell,
                conn: to_accel,
            },
        ));
        cluster.set_consumer(host_addr, server);
        let gen = cluster.engine_mut().add_component(OpenLoopGen::new(
            server,
            SimDuration::from_secs_f64(1.0 / qps_each),
            Some(queries_each),
            |id, _| Msg::custom(QueryArrival { id }),
        ));
        cluster.engine_mut().schedule(
            SimTime::from_nanos(31 * s as u64),
            gen,
            Msg::custom(StartGenerator),
        );
        server_ids.push(server);
    }
    let role_id = cluster.engine_mut().add_component(role);
    cluster.set_consumer(accel_addr, role_id);

    cluster.run_to_idle();
    let now = cluster.now();
    let mut total_thr = 0.0;
    let mut p99s = Vec::new();
    for id in server_ids {
        let srv = cluster
            .engine_mut()
            .component_mut::<RankingServer>(id)
            .expect("server exists");
        total_thr += srv.throughput(now);
        p99s.push(srv.latencies_mut().percentile(99.0).unwrap() as f64 / 1e6);
    }
    // FPGA-side utilisation: completed * mean service / elapsed / slots.
    let role = cluster
        .engine()
        .component::<AcceleratorRole>(role_id)
        .expect("role exists");
    let params = RankingParams::default();
    let util = role.completed() as f64 * params.fpga_latency.as_secs_f64()
        / now.as_secs_f64()
        / params.fpga_slots as f64;
    (total_thr, p99s, util)
}

#[test]
fn three_servers_share_one_fpga_without_latency_penalty() {
    let qps = 1_000.0; // comfortable per-server load
    let (thr1, p99_1, util1) = run_shared(1, qps, 10_000);
    let (thr3, p99_3, util3) = run_shared(3, qps, 10_000);

    // Aggregate throughput scales with the donors.
    assert!((thr1 - qps).abs() < 80.0, "single {thr1}");
    assert!((thr3 - 3.0 * qps).abs() < 240.0, "shared {thr3}");

    // Every server's p99 stays at the single-tenant level (within 15%).
    let base = p99_1[0];
    for (i, p) in p99_3.iter().enumerate() {
        assert!(*p < base * 1.15, "server {i} p99 {p}ms vs solo {base}ms");
    }

    // The single-tenant FPGA is underutilised; sharing triples its use,
    // freeing two other FPGAs entirely.
    assert!(util1 < 0.15, "solo utilisation {util1}");
    assert!(
        (util3 / util1 - 3.0).abs() < 0.3,
        "sharing should triple utilisation: {util1} -> {util3}"
    );
}
