//! End-to-end node failure and reprovisioning: a pool accelerator goes
//! dark mid-run; the client's LTL connection times out ("Timeouts can
//! also be used to identify failing nodes quickly, if ultra-fast
//! reprovisioning of a replacement is critical"), the client fails over to
//! a pre-provisioned spare, re-issues its in-flight requests, and every
//! request eventually completes. The Resource Manager books the failure
//! and the Service Manager's replacement in parallel.

use apps::remote::{AcceleratorRole, IssueRequest, RemoteClient};
use catapult::{Cluster, ClusterBuilder};
use dcnet::{Msg, NodeAddr, SwitchCmd};
use dcsim::{ComponentId, SimDuration, SimTime};
use haas::{Constraints, ResourceManager, ServiceManager};

#[test]
fn client_fails_over_to_spare_and_finishes_all_requests() {
    let mut cluster = ClusterBuilder::paper(91, 1).build();

    // HaaS: primary leased from the pool, one spare left unallocated.
    let primary = NodeAddr::new(0, 1, 0);
    let spare = NodeAddr::new(0, 2, 0);
    let mut rm = ResourceManager::new();
    rm.register(primary);
    rm.register(spare);
    let mut sm = ServiceManager::new("dnn");
    sm.grow(&mut rm, 1, &Constraints::default()).unwrap();
    assert_eq!(sm.endpoints(), vec![primary]);

    let client_addr = NodeAddr::new(0, 5, 3);
    cluster.add_shell(client_addr);
    cluster.add_shell(primary);
    cluster.add_shell(spare);

    // Static persistent connections to both primary and spare.
    let (to_primary, p_send, _c_recv1, p_recv) = cluster.connect_pair(client_addr, primary);
    let (to_spare, s_send, _c_recv2, s_recv) = cluster.connect_pair(client_addr, spare);

    let service = SimDuration::from_micros(200);
    let mk_role = |cluster: &mut Cluster, addr: NodeAddr, recv, send| -> ComponentId {
        let shell_id = cluster.shell_id(addr).expect("populated");
        let mut role = AcceleratorRole::new(shell_id, service, 0.1, 4, 256);
        role.add_reply_route(recv, send);
        let id = cluster.engine_mut().add_component(role);
        cluster.set_consumer(addr, id);
        id
    };
    mk_role(&mut cluster, primary, p_recv, p_send);
    let spare_role = mk_role(&mut cluster, spare, s_recv, s_send);

    let client_shell = cluster.shell_id(client_addr).expect("populated");
    let mut client = RemoteClient::new(client_shell, to_primary, 512, 1);
    client.add_backup(to_spare);
    let client_id = cluster.engine_mut().add_component(client);
    cluster.set_consumer(client_addr, client_id);

    // Steady request stream: one per 500us for 50ms.
    let total = 100u64;
    for k in 0..total {
        cluster.engine_mut().schedule(
            SimTime::from_micros(k * 500),
            client_id,
            Msg::custom(IssueRequest),
        );
    }

    // At t = 10ms the primary's TOR port is uncabled: node dark.
    let tor = cluster.fabric().tor_switch(primary.pod, primary.tor);
    cluster.engine_mut().schedule(
        SimTime::from_millis(10),
        tor,
        Msg::custom(SwitchCmd::Disconnect(dcnet::PortId(primary.host))),
    );
    cluster.run_to_idle();

    // The client failed over exactly once and nothing was lost.
    let client = cluster
        .engine_mut()
        .component_mut::<RemoteClient>(client_id)
        .expect("client exists");
    assert_eq!(client.failovers(), 1);
    assert_eq!(client.outstanding(), 0, "no request stranded");
    assert_eq!(client.completed(), total as usize);
    // In-flight requests at failure time show the detection delay (a few
    // ms of retries) in the tail.
    let p100 = client.latencies_mut().percentile(100.0).unwrap();
    assert!(
        p100 > 2_000_000,
        "worst request should carry the failover delay, got {p100}ns"
    );

    // The spare actually served the post-failover traffic.
    let spare_served = cluster
        .engine()
        .component::<AcceleratorRole>(spare_role)
        .expect("role exists")
        .completed();
    assert!(spare_served >= 75, "spare served {spare_served}");

    // HaaS bookkeeping mirrors the event.
    let lease = rm.mark_failed(primary).expect("primary was leased");
    let replacement = sm
        .handle_failure(&mut rm, lease)
        .unwrap()
        .expect("spare grantable");
    assert_eq!(replacement, spare);
    assert_eq!(sm.endpoints(), vec![spare]);
}
