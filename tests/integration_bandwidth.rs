//! Hierarchy oversubscription: "node-to-node bandwidth is greatest between
//! nodes that share a L0 switch and least between pairs connected via L2."
//! Same-TOR transfers run at the 40 Gb/s line rate; several racks pushing
//! through their shared pod uplink contend and each gets less.

use bytes::Bytes;
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{Component, Context, SimTime};
use shell::{LtlDeliver, ShellCmd};

#[derive(Debug, Default)]
struct ByteSink {
    bytes: usize,
    first: Option<SimTime>,
    last: SimTime,
}

impl Component<Msg> for ByteSink {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Ok(d) = msg.downcast::<LtlDeliver>() {
            self.bytes += d.payload.len();
            self.first.get_or_insert(ctx.now());
            self.last = ctx.now();
        }
    }
}

impl ByteSink {
    fn goodput_gbps(&self) -> f64 {
        let span = self
            .last
            .saturating_since(self.first.unwrap_or(SimTime::ZERO));
        self.bytes as f64 * 8.0 / span.as_secs_f64() / 1e9
    }
}

/// Runs `pairs` bulk transfers and returns per-pair goodput (Gb/s).
/// `cross_rack` selects whether pairs share a TOR or cross the pod uplink.
fn bulk_transfer(pairs: usize, cross_rack: bool, seed: u64) -> Vec<f64> {
    let mut cluster = ClusterBuilder::paper(seed, 1).build();
    let mut sinks = Vec::new();
    for i in 0..pairs {
        let (src, dst) = if cross_rack {
            // All sources in distinct racks, all destinations in rack 30+:
            // every transfer crosses the shared TOR->agg uplinks.
            (
                NodeAddr::new(0, i as u16, 0),
                NodeAddr::new(0, 30, i as u16),
            )
        } else {
            (NodeAddr::new(0, i as u16, 0), NodeAddr::new(0, i as u16, 1))
        };
        cluster.add_shell(src);
        if cluster.shell_id(dst).is_none() {
            cluster.add_shell(dst);
        }
        let (conn, _, _, _) = cluster.connect_pair(src, dst);
        let sink = cluster.engine_mut().add_component(ByteSink::default());
        cluster.set_consumer(dst, sink);
        let shell_id = cluster.shell_id(src).expect("src populated");
        // 40 x 50KB messages = 2 MB per pair.
        for k in 0..40u64 {
            cluster.engine_mut().schedule(
                SimTime::from_nanos(k), // all at once: bulk transfer
                shell_id,
                Msg::custom(ShellCmd::LtlSend {
                    conn,
                    vc: 0,
                    payload: Bytes::from(vec![0u8; 50_000]),
                }),
            );
        }
        sinks.push(sink);
    }
    cluster.run_to_idle();
    sinks
        .iter()
        .map(|&s| {
            cluster
                .engine()
                .component::<ByteSink>(s)
                .expect("sink exists")
                .goodput_gbps()
        })
        .collect()
}

#[test]
fn same_tor_transfers_run_at_line_rate() {
    let rates = bulk_transfer(3, false, 81);
    for (i, r) in rates.iter().enumerate() {
        assert!(
            (30.0..41.0).contains(r),
            "pair {i} goodput {r} Gb/s not near 40G line rate"
        );
    }
}

#[test]
fn cross_rack_transfers_contend_for_the_destination_rack() {
    // All destinations sit in rack 30, so four transfers squeeze through
    // that TOR's single downlink path via the agg: each gets a fraction.
    let rates = bulk_transfer(4, true, 82);
    let total: f64 = rates.iter().sum();
    assert!(
        total < 45.0,
        "aggregate {total} Gb/s through one destination rack"
    );
    for (i, r) in rates.iter().enumerate() {
        assert!(*r < 30.0, "pair {i} should see contention, got {r} Gb/s");
        assert!(*r > 2.0, "pair {i} starved: {r} Gb/s");
    }
}
