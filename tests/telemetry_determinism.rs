//! Telemetry determinism: the registry snapshot and the flight-recorder
//! export are pure functions of the simulation seed.
//!
//! The registry's contract mirrors the sweep driver's (see
//! `determinism.rs`): same seed, byte-identical serialized output — no
//! wall-clock timestamps, no map-iteration-order leakage, no pointer
//! values. CI relies on this to diff two independent runs.

use catapult::prelude::*;
use catapult::telemetry::json::{validate, validate_chrome_trace};

mod common;

/// Runs a small traced cluster and returns `(metrics_json, trace_json)`.
fn run_once(seed: u64) -> (String, String) {
    let mut cluster = ClusterBuilder::paper(seed, 1).build();
    cluster.enable_tracing(4096);
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 3, 7); // cross-rack: probes traverse the agg tier
    cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    schedule_probes(
        &mut cluster,
        a,
        a_send,
        SimTime::ZERO,
        SimDuration::from_micros(50),
        40,
        64,
    );
    cluster.run_to_idle();
    let metrics = cluster.metrics_snapshot().to_json_pretty();
    let trace = cluster
        .tracer()
        .expect("tracing was enabled")
        .to_chrome_json();
    (metrics, trace)
}

#[test]
fn same_seed_metrics_and_trace_are_byte_identical() {
    let (m1, t1) = run_once(11);
    let (m2, t2) = run_once(11);
    common::assert_identical("metrics dump", &m1, &m2);
    common::assert_identical("chrome trace export", &t1, &t2);
}

#[test]
fn different_seed_changes_the_metrics_dump() {
    // Switch jitter draws differ across seeds, so the RTT histograms —
    // and with them the serialized snapshot — must differ.
    let (m1, _) = run_once(11);
    let (m2, _) = run_once(12);
    assert_ne!(m1, m2, "seed must reach the recorded latencies");
}

#[test]
fn exports_are_valid_json_with_expected_paths() {
    let (metrics, trace) = run_once(5);
    validate(&metrics).expect("metrics dump parses as JSON");
    validate_chrome_trace(&trace).expect("trace export is a valid Chrome trace");
    // Component paths are stable: the sender's LTL histogram and the
    // traced probe events must both be present.
    assert!(
        metrics.contains("shell/p0.t0.h1/ltl/rtt_ns"),
        "sender RTT histogram missing from: {metrics}"
    );
    assert!(
        trace.contains("ltl_send"),
        "probe send events missing from trace"
    );
    assert!(
        trace.contains("ltl_ack"),
        "ack receipt events missing from trace"
    );
}
