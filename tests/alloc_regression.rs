//! Allocation-regression gate for the event hot path.
//!
//! The zero-allocation contract: once pools and buffers are warm, the
//! steady-state dequeue→dispatch→enqueue cycle of a running simulation
//! never touches the heap. This test runs the whole binary under a
//! counting global allocator and asserts **zero** allocations per event
//! after warm-up on two workloads:
//!
//! * a ping chain — the pure scheduler cycle (calendar-queue node pool,
//!   timer/message recycling, no component state);
//! * a small switch fabric — packets bouncing between two hosts through a
//!   TOR switch, exercising the typed `Msg` hot variants, per-port
//!   queues, PFC accounting and the contention-jitter sampler;
//! * a sharded cross-shard ping — pairs split across two shards of a
//!   `ShardedEngine`, every message crossing the shard cut through the
//!   outbox/mailbox exchange. Per-shard event dispatch must stay at zero
//!   allocations; the window-barrier exchange recirculates buffer
//!   capacity (`mem::swap`), so after warm-up it may keep only a small
//!   constant budget (thread spawns for the run call), never per-event
//!   or per-window growth.
//!
//! All measurements run inside a single `#[test]` so no concurrent test
//! thread can attribute its allocations to the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use dcnet::{
    FabricBuilder, FabricConfig, FabricShape, Jitter, Msg, NetEvent, NodeAddr, Packet, PortId,
    SwitchConfig, TrafficClass,
};
use dcsim::{
    Component, ComponentId, Context, Engine, ShardPlan, ShardedEngine, SimDuration, SimTime,
};

/// Counts heap acquisitions (`alloc` and `realloc`); frees are irrelevant
/// to the steady-state-zero contract.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Self-rescheduling ping chain: the message is the number of events left.
struct Chain {
    rng: u64,
}

impl Component<u64> for Chain {
    fn on_message(&mut self, left: u64, ctx: &mut Context<'_, u64>) {
        if left > 0 {
            let delay = 100 + splitmix(&mut self.rng) % 1_000;
            ctx.send_to_self_after(SimDuration::from_nanos(delay), left - 1);
        }
    }
}

/// Steady-state allocations per event on the ping-chain workload.
fn ping_chain_allocs_per_event() -> (u64, u64) {
    const CHAINS: u64 = 64;
    const EVENTS_PER_CHAIN: u64 = 2_000;
    let mut e: Engine<u64> = Engine::new(7);
    for i in 0..CHAINS {
        let id = e.add_component(Chain { rng: 0xC0FFEE ^ i });
        e.schedule(SimTime::from_nanos(i), id, EVENTS_PER_CHAIN);
    }
    // Warm-up: grows the node pool and bucket vectors to the steady-state
    // footprint (~first tenth of the run).
    e.run_until(SimTime::from_nanos(EVENTS_PER_CHAIN * 600 / 10));
    let ev0 = e.events_processed();
    let a0 = allocs();
    e.run_to_idle();
    (allocs() - a0, e.events_processed() - ev0)
}

/// One side of a packet ping-pong pair: answers every delivered packet
/// with a reversed one until its budget is spent.
struct Bouncer {
    tor: ComponentId,
    tor_port: PortId,
    remaining: u64,
}

impl Component<Msg> for Bouncer {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, .. }) = msg {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            // A reply is a new flow: build a fresh packet (stack-only; the
            // payload `Bytes` moves, it is not copied).
            let back = Packet::new(
                pkt.dst,
                pkt.src,
                pkt.dst_port,
                pkt.src_port,
                pkt.class,
                pkt.payload,
            );
            ctx.send(self.tor, Msg::packet(back, self.tor_port));
        }
    }
}

/// Steady-state allocations per event on a small switch workload: one TOR
/// with jitter enabled, two hosts bouncing an LTL-class packet.
fn switch_allocs_per_event() -> (u64, u64) {
    const BOUNCES: u64 = 20_000;
    let mut e: Engine<Msg> = Engine::new(11);
    let cfg = FabricConfig {
        shape: FabricShape {
            hosts_per_tor: 2,
            tors_per_pod: 1,
            pods: 1,
            spines: 1,
        },
        tor: SwitchConfig::default().with_jitter(Jitter {
            median_ns: 8.0,
            sigma: 0.5,
        }),
        ..FabricConfig::default()
    };
    let mut fabric = FabricBuilder::from_config(&cfg).build(&mut e);

    let a_addr = NodeAddr::new(0, 0, 0);
    let b_addr = NodeAddr::new(0, 0, 1);
    let next = e.next_component_id();
    let a_attach = fabric.attach(&mut e, a_addr, next, PortId(0));
    let a = e.add_component(Bouncer {
        tor: a_attach.tor,
        tor_port: a_attach.port,
        remaining: BOUNCES,
    });
    assert_eq!(a, next);
    let next = e.next_component_id();
    let b_attach = fabric.attach(&mut e, b_addr, next, PortId(0));
    e.add_component(Bouncer {
        tor: b_attach.tor,
        tor_port: b_attach.port,
        remaining: BOUNCES,
    });

    let seed = Packet::new(
        a_addr,
        b_addr,
        4791,
        4791,
        TrafficClass::LTL,
        Bytes::from(vec![0x5Au8; 64]),
    );
    e.schedule(
        SimTime::ZERO,
        a_attach.tor,
        Msg::packet(seed, a_attach.port),
    );

    // Warm-up: pools, per-port queues and the ziggurat tables.
    e.run_until(SimTime::from_micros(100));
    let ev0 = e.events_processed();
    let a0 = allocs();
    e.run_to_idle();
    (allocs() - a0, e.events_processed() - ev0)
}

/// One side of a cross-shard ping pair: answers after a delay that always
/// clears the lookahead window, so every message rides the outbox.
struct CrossPing {
    peer: ComponentId,
    rng: u64,
}

const SHARD_LOOKAHEAD_NS: u64 = 500;

impl Component<u64> for CrossPing {
    fn on_message(&mut self, left: u64, ctx: &mut Context<'_, u64>) {
        if left > 0 {
            let delay = SHARD_LOOKAHEAD_NS + splitmix(&mut self.rng) % 1_000;
            ctx.send_after(SimDuration::from_nanos(delay), self.peer, left - 1);
        }
    }
}

/// Steady-state allocations per event on the sharded cross-shard
/// workload: ping pairs split across two shards, every event crossing
/// the cut at the window barrier.
fn sharded_allocs_per_event() -> (u64, u64) {
    const PAIRS: u64 = 32;
    const EVENTS_PER_SIDE: u64 = 2_000;
    let mut e: Engine<u64> = Engine::new(23);
    let mut shard_of = Vec::new();
    for i in 0..PAIRS {
        let a_tmp = e.next_component_id();
        let a = e.add_component(CrossPing {
            peer: a_tmp, // placeholder until b exists
            rng: 0xFEED ^ i,
        });
        let b = e.add_component(CrossPing {
            peer: a,
            rng: 0xBEEF ^ i,
        });
        e.component_mut::<CrossPing>(a).unwrap().peer = b;
        shard_of.extend_from_slice(&[0, 1]);
        e.schedule(SimTime::from_nanos(i), a, EVENTS_PER_SIDE);
        e.schedule(SimTime::from_nanos(i + PAIRS), b, EVENTS_PER_SIDE);
    }
    let plan = ShardPlan::new(2, shard_of, SimDuration::from_nanos(SHARD_LOOKAHEAD_NS));
    let mut sharded = ShardedEngine::from_engine(e, plan);
    // Warm-up: node pools, outbox/mailbox capacities, bucket vectors.
    sharded.run_until(SimTime::from_micros(300));
    let ev0 = sharded.events_processed();
    let a0 = allocs();
    sharded.run_to_idle();
    (allocs() - a0, sharded.events_processed() - ev0)
}

/// Runs a measurement up to three times and returns its best attempt.
///
/// The counting allocator sees every thread in the process, including
/// the libtest harness; its bookkeeping occasionally lands a couple of
/// one-off allocations inside the measured window. Those never repeat
/// across attempts, while a genuine hot-path regression allocates
/// per event and fails every attempt identically.
fn settled(workload: fn() -> (u64, u64)) -> (u64, u64) {
    let mut best = workload();
    for _ in 0..2 {
        if best.0 == 0 {
            break;
        }
        let again = workload();
        if again.0 < best.0 {
            best = again;
        }
    }
    best
}

/// The gate: zero steady-state allocations per event on all workloads.
/// A single failing allocation anywhere in the pop→dispatch→push cycle
/// (scheduler node churn, boxed messages, payload copies) trips this.
#[test]
fn steady_state_event_path_is_allocation_free() {
    let (chain_allocs, chain_events) = settled(ping_chain_allocs_per_event);
    assert!(
        chain_events > 50_000,
        "chain workload too small: {chain_events}"
    );
    assert_eq!(
        chain_allocs, 0,
        "ping chain allocated {chain_allocs} times over {chain_events} steady-state events"
    );

    let (switch_allocs, switch_events) = settled(switch_allocs_per_event);
    assert!(
        switch_events > 20_000,
        "switch workload too small: {switch_events}"
    );
    assert_eq!(
        switch_allocs, 0,
        "switch workload allocated {switch_allocs} times over {switch_events} steady-state events"
    );

    // The sharded run's only allowance is a small constant for the worker
    // threads the measured `run_to_idle` call spawns — nothing that
    // scales with events (128k here) or windows (~4k here).
    let (sharded_allocs, sharded_events) = settled(sharded_allocs_per_event);
    assert!(
        sharded_events > 100_000,
        "sharded workload too small: {sharded_events}"
    );
    assert!(
        sharded_allocs <= 64,
        "sharded workload allocated {sharded_allocs} times over {sharded_events} \
         steady-state events (budget 64: thread spawns only)"
    );
}
