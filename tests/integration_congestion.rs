//! End-to-end congestion control: sustained incast onto one receiver must
//! trigger the full DC-QCN loop (switch ECN marking -> receiver CNPs ->
//! sender rate cuts) and PFC must keep the lossless class drop-free, "so
//! the FPGA can safely insert and remove packets from the network without
//! disrupting existing flows."

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use bytes::Bytes;
use catapult::{Cluster, ClusterBuilder};
use dcnet::{Msg, NodeAddr, Switch};
use dcsim::{Component, Context, SimDuration, SimTime};
use shell::{LtlDeliver, Shell, ShellCmd};

#[derive(Debug, Default)]
struct Counter {
    messages: usize,
    bytes: usize,
    last_at: SimTime,
}

impl Component<Msg> for Counter {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Ok(d) = msg.downcast::<LtlDeliver>() {
            self.messages += 1;
            self.bytes += d.payload.len();
            self.last_at = ctx.now();
        }
    }
}

/// Four senders each blast 60 large messages at one receiver through a
/// single TOR (aggregate 4x the egress line rate).
fn incast() -> (Cluster, Vec<NodeAddr>, NodeAddr, dcsim::ComponentId) {
    let mut cluster = ClusterBuilder::paper(41, 1).build();
    let dst = NodeAddr::new(0, 0, 0);
    cluster.add_shell(dst);
    let senders: Vec<NodeAddr> = (1..5).map(|h| NodeAddr::new(0, 0, h)).collect();
    for &s in &senders {
        cluster.add_shell(s);
    }
    let counter = cluster.engine_mut().add_component(Counter::default());
    cluster.set_consumer(dst, counter);
    for (i, &s) in senders.iter().enumerate() {
        let (send, _, _, _) = cluster.connect_pair(s, dst);
        let sid = cluster.shell_id(s).expect("sender exists");
        for k in 0..60u64 {
            cluster.engine_mut().schedule(
                SimTime::from_nanos(i as u64 * 31 + k * 2_000),
                sid,
                Msg::custom(ShellCmd::LtlSend {
                    conn: send,
                    vc: 0,
                    payload: Bytes::from(vec![k as u8; 10_000]),
                }),
            );
        }
    }
    (cluster, senders, dst, counter)
}

#[test]
fn dcqcn_loop_engages_under_incast() {
    let (mut cluster, senders, dst, counter) = incast();
    cluster.run_to_idle();

    // Everything was delivered despite 4x oversubscription.
    let c = cluster
        .engine()
        .component::<Counter>(counter)
        .expect("counter exists");
    assert_eq!(c.messages, 4 * 60);
    assert_eq!(c.bytes, 4 * 60 * 10_000);

    // The TOR marked ECN under queue buildup...
    let tor = cluster.fabric().tor_switch(0, 0);
    let tor_stats = cluster
        .engine()
        .component::<Switch>(tor)
        .expect("tor exists")
        .stats_view();
    assert!(tor_stats.ecn_marked > 0, "no ECN marks: {tor_stats:?}");
    assert_eq!(tor_stats.dropped, 0, "lossless class must not drop");

    // ...the receiver turned marks into CNPs...
    let rx_stats = cluster.shell(dst).ltl().stats_view();
    assert!(rx_stats.cnps_tx > 0, "receiver sent no CNPs");

    // ...and at least one sender reacted.
    let cnps_rx: u64 = senders
        .iter()
        .map(|&s| cluster.shell(s).ltl().stats_view().cnps_rx)
        .sum();
    assert!(cnps_rx > 0, "no sender received a CNP");

    // Aggregate goodput cannot exceed the receiver's 40 Gb/s line rate.
    let elapsed = c.last_at.as_secs_f64();
    let gbps = c.bytes as f64 * 8.0 / elapsed / 1e9;
    assert!(gbps < 41.0, "goodput {gbps} exceeds line rate");
    assert!(gbps > 5.0, "goodput {gbps} collapsed");
}

#[test]
fn incast_recovers_without_connection_failures() {
    // Queueing during the incast transient can exceed the 50us timeout,
    // so some spurious retransmissions are expected (the receiver re-ACKs
    // duplicates) — but exponential backoff must keep them bounded and no
    // connection may be declared failed.
    let (mut cluster, senders, _dst, _counter) = incast();
    cluster.run_to_idle();
    for &s in &senders {
        let stats = cluster.shell(s).ltl().stats_view();
        assert_eq!(stats.conn_failures, 0, "sender {s}: {stats:?}");
        assert!(
            stats.retransmits < stats.data_sent,
            "sender {s} retransmit storm: {stats:?}"
        );
    }
}

#[test]
fn background_best_effort_traffic_is_protected() {
    // The paper's requirement: LTL "must not interfere with the expected
    // behavior of these various traffic classes." Run the incast and
    // simultaneously bridge best-effort host traffic through the same TOR;
    // it must all arrive (different class, no PFC coupling).
    let (mut cluster, _senders, _dst, _counter) = incast();
    let host_src = NodeAddr::new(0, 0, 10);
    let host_dst = NodeAddr::new(0, 0, 11);
    let src_shell = cluster.add_shell(host_src);
    cluster.add_shell(host_dst);
    #[derive(Debug, Default)]
    struct NicCounter {
        packets: usize,
    }
    impl Component<Msg> for NicCounter {
        fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
            if let Msg::Net(dcnet::NetEvent::Packet { .. }) = msg {
                self.packets += 1;
            }
        }
    }
    let nic = cluster.engine_mut().add_component(NicCounter::default());
    cluster
        .shell_mut(host_dst)
        .connect_nic(nic, dcnet::PortId(0));
    for i in 0..40u64 {
        let pkt = dcnet::Packet::new(
            host_src,
            host_dst,
            1,
            2,
            dcnet::TrafficClass::BEST_EFFORT,
            Bytes::from(vec![0u8; 800]),
        );
        cluster.engine_mut().schedule(
            SimTime::from_micros(i * 3),
            src_shell,
            Msg::packet(pkt, shell::PORT_NIC),
        );
    }
    cluster.run_for(SimDuration::from_millis(50));
    cluster.run_to_idle();
    let n = cluster
        .engine()
        .component::<NicCounter>(nic)
        .expect("nic exists")
        .packets;
    assert_eq!(n, 40, "best-effort traffic starved or dropped");
    let _ = cluster.shell(host_src) as &Shell;
}
