//! LTL retransmission under injected egress loss: the transport's
//! exactly-once contract must hold for loss rates up to 10% — every
//! message is delivered exactly once to the consumer, retries stay
//! bounded, and the connection is never declared dead.

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use bytes::Bytes;
use catapult::ClusterBuilder;
use dcnet::{Msg, NodeAddr};
use dcsim::{Component, Context, SimTime};
use shell::{LtlDeliver, ShellCmd};

#[derive(Debug, Default)]
struct Collector {
    payloads: Vec<Bytes>,
}

impl Component<Msg> for Collector {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let Ok(d) = msg.downcast::<LtlDeliver>() {
            self.payloads.push(d.payload);
        }
    }
}

/// Runs `total` messages across one rack with egress-loss injection at
/// `rate` on the sender; returns (delivered payloads, sender retransmits,
/// sender conn failures).
fn run_lossy(seed: u64, rate: f64, total: u64) -> (Vec<Bytes>, u64, u64) {
    let mut cluster = ClusterBuilder::paper(seed, 1).build();
    let a = NodeAddr::new(0, 0, 0);
    let b = NodeAddr::new(0, 0, 1);
    let a_id = cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _b_send, _, _) = cluster.connect_pair(a, b);
    let collector = cluster.engine_mut().add_component(Collector::default());
    cluster.set_consumer(b, collector);

    cluster.engine_mut().schedule(
        SimTime::ZERO,
        a_id,
        Msg::custom(ShellCmd::SetLtlLossRate(rate)),
    );
    for k in 0..total {
        cluster.engine_mut().schedule(
            SimTime::from_micros(10 + k * 200),
            a_id,
            Msg::custom(ShellCmd::LtlSend {
                conn: a_send,
                vc: 0,
                payload: Bytes::from(format!("msg-{k:04}")),
            }),
        );
    }
    cluster.run_to_idle();

    let stats = cluster.shell(a).ltl().stats_view();
    let got = cluster
        .engine()
        .component::<Collector>(collector)
        .expect("collector registered")
        .payloads
        .clone();
    (got, stats.retransmits, stats.conn_failures)
}

#[test]
fn exactly_once_delivery_up_to_ten_percent_loss() {
    let total = 150u64;
    for (seed, rate) in [(21, 0.01), (22, 0.05), (23, 0.10)] {
        let (got, retransmits, conn_failures) = run_lossy(seed, rate, total);

        // Exactly once: every message arrives, none twice.
        assert_eq!(
            got.len() as u64,
            total,
            "rate {rate}: {} of {total} delivered",
            got.len()
        );
        let mut unique: Vec<&Bytes> = got.iter().collect();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len() as u64,
            total,
            "rate {rate}: duplicate deliveries reached the consumer"
        );

        // Bounded retries: expected extra transmissions are roughly
        // rate/(1-rate) per message (plus lost ACK re-sends); at 10%
        // loss that is well under one retransmit per two messages.
        assert!(
            retransmits <= total,
            "rate {rate}: {retransmits} retransmits for {total} messages"
        );
        assert_eq!(
            conn_failures, 0,
            "rate {rate}: transient loss must not kill the connection"
        );
        if rate >= 0.05 {
            assert!(
                retransmits > 0,
                "rate {rate}: injected loss should force some retransmission"
            );
        }
    }
}

#[test]
fn lossless_path_never_retransmits() {
    let (got, retransmits, conn_failures) = run_lossy(24, 0.0, 50);
    assert_eq!(got.len(), 50);
    assert_eq!(retransmits, 0);
    assert_eq!(conn_failures, 0);
}
