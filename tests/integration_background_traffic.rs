//! Strict-priority isolation: heavy best-effort background traffic through
//! the same switches must barely move LTL latencies, because LTL rides a
//! higher, lossless traffic class — the property that lets the paper
//! measure microsecond RTTs on a network shared with everything else.

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use catapult::{probe::schedule_probes, ClusterBuilder};
use dcnet::{Msg, NodeAddr, PortId, Switch, TrafficClass};
use dcsim::{PercentileRecorder, SimDuration, SimTime};
use host::{StartGenerator, TrafficGen, TrafficGenConfig};

/// L0 LTL RTT with `background_gbps` of best-effort cross-traffic pumped
/// through the same TOR.
fn l0_rtt_under_load(background_gbps: f64, seed: u64) -> (PercentileRecorder, u64) {
    let mut cluster = ClusterBuilder::paper(seed, 1).build();
    let a = NodeAddr::new(0, 0, 0);
    let b = NodeAddr::new(0, 0, 1);
    cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);

    if background_gbps > 0.0 {
        // Cross-traffic enters the TOR on unused host ports and leaves on
        // other unused host ports, crossing the same crossbar. Endpoints
        // are sinks.
        #[derive(Debug, Default)]
        struct Sink;
        impl dcsim::Component<Msg> for Sink {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut dcsim::Context<'_, Msg>) {}
        }
        let tor = cluster.fabric().tor_switch(0, 0);
        for (src_h, dst_h) in [(4u16, 5u16), (6, 7), (8, 9), (10, 11)] {
            let sink = cluster.engine_mut().add_component(Sink);
            cluster
                .engine_mut()
                .component_mut::<Switch>(tor)
                .expect("tor exists")
                .connect(PortId(dst_h), sink, PortId(0));
            let cfg = TrafficGenConfig {
                src: NodeAddr::new(0, 0, src_h),
                dsts: vec![NodeAddr::new(0, 0, dst_h)],
                rate_bps: background_gbps / 4.0 * 1e9,
                packet_bytes: 1_400,
                count: None,
                class: TrafficClass::BEST_EFFORT,
            };
            let gen = cluster
                .engine_mut()
                .add_component(TrafficGen::new(cfg, (tor, PortId(src_h))));
            cluster
                .engine_mut()
                .schedule(SimTime::ZERO, gen, Msg::custom(StartGenerator));
        }
    }

    schedule_probes(
        &mut cluster,
        a,
        a_send,
        SimTime::from_micros(50),
        SimDuration::from_micros(50),
        200,
        32,
    );
    cluster.run_until(SimTime::from_millis(15));
    let mut out = PercentileRecorder::new();
    out.extend(cluster.shell_mut(a).ltl_mut().rtts_mut().iter());
    let tor = cluster.fabric().tor_switch(0, 0);
    let marked = cluster
        .engine()
        .component::<Switch>(tor)
        .expect("tor exists")
        .stats_view()
        .tx_frames;
    (out, marked)
}

#[test]
fn ltl_latency_shrugs_off_best_effort_background_load() {
    let (mut idle, _) = l0_rtt_under_load(0.0, 71);
    let (mut loaded, tor_tx) = l0_rtt_under_load(30.0, 71);
    assert_eq!(idle.count(), 200);
    assert_eq!(loaded.count(), 200);
    assert!(
        tor_tx > 1_000,
        "background actually flowed: {tor_tx} frames"
    );

    let idle_avg = idle.mean();
    let loaded_avg = loaded.mean();
    // Strict priority: the loaded average may pick up at most one
    // best-effort serialization time (~300ns) of head-of-line blocking.
    assert!(
        loaded_avg < idle_avg + 400.0,
        "LTL avg degraded: idle {idle_avg}ns loaded {loaded_avg}ns"
    );
    let idle_p99 = idle.percentile(99.0).unwrap();
    let loaded_p99 = loaded.percentile(99.0).unwrap();
    assert!(
        loaded_p99 < idle_p99 + 800,
        "LTL p99 degraded: idle {idle_p99}ns loaded {loaded_p99}ns"
    );
}
