//! Determinism regression tests for the sharded (parallel-in-run) engine.
//!
//! A sharded cluster run is a pure function of its seed: the shard count
//! (and the worker thread count under it) is a pure performance knob. The
//! telemetry fingerprint — every counter, gauge, and histogram of every
//! switch and shell — must be byte-identical for shard counts 1, 2, 4,
//! and 8, along with the event total and the final clock.

use bytes::Bytes;
use catapult::prelude::*;
use shell::{LtlDeliver, ShellCmd};

mod common;

/// Replies to every LTL delivery with another send, `remaining` times,
/// so traffic keeps crossing the fabric (and shard cuts) for a while.
#[derive(Debug)]
struct Volley {
    conn: shell::ltl::SendConnId,
    shell: ComponentId,
    remaining: u32,
}

impl Component<Msg> for Volley {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if msg.downcast::<LtlDeliver>().is_ok() && self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(
                self.shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: self.conn,
                    vc: 0,
                    payload: Bytes::from_static(b"parallel-determinism"),
                }),
            );
        }
    }
}

/// Like [`Volley`], but waits `delay` before replying — a paced RPC
/// handler whose declared send floor lets adaptive windows stretch.
#[derive(Debug)]
struct PacedVolley {
    conn: shell::ltl::SendConnId,
    shell: ComponentId,
    remaining: u32,
    delay: SimDuration,
}

impl Component<Msg> for PacedVolley {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if msg.downcast::<LtlDeliver>().is_ok() && self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_after(
                self.delay,
                self.shell,
                Msg::custom(ShellCmd::LtlSend {
                    conn: self.conn,
                    vc: 0,
                    payload: Bytes::from_static(b"paced-volley"),
                }),
            );
        }
    }
}

/// Builds a 2-pod cluster with volleying LTL pairs that cross racks and
/// pods, runs it on `shards` shards, and returns its full fingerprint.
fn sharded_fingerprint(shards: u32) -> String {
    sharded_fingerprint_with_policy(shards, None)
}

fn sharded_fingerprint_with_policy(shards: u32, policy: Option<WindowPolicy>) -> String {
    let mut cluster = ClusterBuilder::paper(2024, 2).build();
    // Pairs chosen to exercise every partition cut: same rack, cross-rack
    // (TOR↔agg), and cross-pod (agg↔spine).
    let pairs = [
        (NodeAddr::new(0, 0, 1), NodeAddr::new(0, 0, 2)),
        (NodeAddr::new(0, 1, 3), NodeAddr::new(0, 7, 4)),
        (NodeAddr::new(0, 2, 5), NodeAddr::new(1, 5, 6)),
        (NodeAddr::new(1, 0, 7), NodeAddr::new(0, 9, 8)),
        (NodeAddr::new(1, 3, 9), NodeAddr::new(1, 8, 10)),
    ];
    let mut kickoffs = Vec::new();
    for &(a, b) in &pairs {
        let a_id = cluster.add_shell(a);
        let b_id = cluster.add_shell(b);
        let (a_send, b_send, _, _) = cluster.connect_pair(a, b);
        let a_drv = cluster.add_component_at(
            a,
            Volley {
                conn: a_send,
                shell: a_id,
                remaining: 30,
            },
        );
        let b_drv = cluster.add_component_at(
            b,
            Volley {
                conn: b_send,
                shell: b_id,
                remaining: 30,
            },
        );
        cluster.set_consumer(a, a_drv);
        cluster.set_consumer(b, b_drv);
        kickoffs.push((a_id, a_send));
    }
    for (shell, conn) in kickoffs {
        cluster.engine_mut().schedule(
            SimTime::ZERO,
            shell,
            Msg::custom(ShellCmd::LtlSend {
                conn,
                vc: 0,
                payload: Bytes::from_static(b"kickoff"),
            }),
        );
    }
    let got = cluster.shard(shards);
    assert_eq!(got, shards, "2 pods x 40 racks should never clamp <= 8");
    if let Some(policy) = policy {
        cluster.set_window_policy(policy);
    }
    let events = cluster.run_for(SimDuration::from_millis(2));
    assert!(events > 0, "volleys produced no events");
    format!(
        "events {events}\nnow {}\n{}",
        cluster.now().as_nanos(),
        cluster.metrics_snapshot().to_json_pretty()
    )
}

/// A bursty variant: paced drivers (2 us declared reply floor) whose
/// idle troughs let adaptive windows stretch and fast-forward. Returns
/// the fingerprint plus the summed per-shard sync counters.
fn bursty_fingerprint(shards: u32, policy: WindowPolicy) -> (String, u64, u64) {
    let mut cluster = ClusterBuilder::paper(777, 2).build();
    let delay = SimDuration::from_micros(2);
    let pairs = [
        (NodeAddr::new(0, 0, 1), NodeAddr::new(0, 6, 2)),
        (NodeAddr::new(0, 3, 3), NodeAddr::new(1, 4, 4)),
        (NodeAddr::new(1, 1, 5), NodeAddr::new(1, 9, 6)),
    ];
    let mut kickoffs = Vec::new();
    for &(a, b) in &pairs {
        let a_id = cluster.add_shell(a);
        let b_id = cluster.add_shell(b);
        let (a_send, b_send, _, _) = cluster.connect_pair(a, b);
        let a_drv = cluster.add_paced_component_at(
            a,
            PacedVolley {
                conn: a_send,
                shell: a_id,
                remaining: 40,
                delay,
            },
            delay,
        );
        let b_drv = cluster.add_paced_component_at(
            b,
            PacedVolley {
                conn: b_send,
                shell: b_id,
                remaining: 40,
                delay,
            },
            delay,
        );
        cluster.set_consumer(a, a_drv);
        cluster.set_consumer(b, b_drv);
        kickoffs.push((a_id, a_send));
    }
    for (shell, conn) in kickoffs {
        cluster.engine_mut().schedule(
            SimTime::ZERO,
            shell,
            Msg::custom(ShellCmd::LtlSend {
                conn,
                vc: 0,
                payload: Bytes::from_static(b"kickoff"),
            }),
        );
    }
    cluster.shard(shards);
    cluster.set_window_policy(policy);
    let events = cluster.run_for(SimDuration::from_millis(2));
    let stats = cluster.sync_stats();
    let extensions: u64 = stats.iter().map(|s| s.window_extensions).sum();
    let fast_forwards: u64 = stats.iter().map(|s| s.windows_fast_forwarded).sum();
    let fp = format!(
        "events {events}\nnow {}\n{}",
        cluster.now().as_nanos(),
        cluster.metrics_snapshot().to_json_pretty()
    );
    (fp, extensions, fast_forwards)
}

#[test]
fn fingerprint_is_byte_identical_across_shard_counts() {
    let baseline = sharded_fingerprint(1);
    for shards in [2, 4, 8] {
        let other = sharded_fingerprint(shards);
        common::assert_identical(&format!("1 shard vs {shards} shards"), &baseline, &other);
    }
}

#[test]
fn sharded_rerun_with_same_seed_is_byte_identical() {
    let first = sharded_fingerprint(4);
    let second = sharded_fingerprint(4);
    common::assert_identical("4-shard rerun", &first, &second);
}

/// The window policy is a pure performance knob: fixed and adaptive
/// windows produce byte-identical fingerprints at every shard count.
#[test]
fn fingerprint_is_byte_identical_across_window_policies() {
    let baseline = sharded_fingerprint_with_policy(1, Some(WindowPolicy::fixed()));
    for shards in [1, 2, 4, 8] {
        let fixed = sharded_fingerprint_with_policy(shards, Some(WindowPolicy::fixed()));
        let adaptive = sharded_fingerprint_with_policy(shards, Some(WindowPolicy::adaptive()));
        common::assert_identical(
            &format!("fixed vs adaptive at {shards} shards"),
            &fixed,
            &adaptive,
        );
        common::assert_identical(
            &format!("baseline vs fixed at {shards} shards"),
            &baseline,
            &fixed,
        );
    }
}

/// On the paced bursty workload the adaptive machinery actually engages
/// (windows stretch and fast-forward) without changing a byte of the
/// fingerprint at any shard count.
#[test]
fn bursty_adaptive_windows_extend_without_changing_fingerprints() {
    let (baseline, _, _) = bursty_fingerprint(1, WindowPolicy::fixed());
    for shards in [2, 4, 8] {
        let (fixed_fp, fixed_ext, _) = bursty_fingerprint(shards, WindowPolicy::fixed());
        let (adaptive_fp, adaptive_ext, adaptive_ff) =
            bursty_fingerprint(shards, WindowPolicy::adaptive());
        common::assert_identical(
            &format!("bursty fixed vs adaptive at {shards} shards"),
            &fixed_fp,
            &adaptive_fp,
        );
        common::assert_identical(
            &format!("bursty baseline vs adaptive at {shards} shards"),
            &baseline,
            &adaptive_fp,
        );
        assert_eq!(fixed_ext, 0, "fixed windows must never extend");
        assert!(
            adaptive_ext > 0,
            "paced bursty workload at {shards} shards never stretched a window"
        );
        assert!(
            adaptive_ff > 0,
            "paced bursty workload at {shards} shards never fast-forwarded"
        );
    }
}
