//! Management-plane soak: hardware failures drawn from the Section II-B
//! rates flow through the Resource Manager and Service Managers, which
//! must keep every service at full strength as long as spares remain —
//! "failing nodes are removed from the pool with replacements quickly
//! added."

use catapult::elastic::{generate_trace, run_trace, standard_region_alms, ElasticTraceConfig};
use dcnet::NodeAddr;
use dcsim::{SimDuration, SimRng};
use haas::{Constraints, ElasticConfig, FpgaState, ResourceManager, ServiceManager, TenantClass};

/// A bed of `n` machines registered with the RM.
fn bed(n: u16) -> ResourceManager {
    let mut rm = ResourceManager::new();
    for i in 0..n {
        rm.register(NodeAddr::new(0, i / 24, i % 24));
    }
    rm
}

#[test]
fn services_ride_through_a_month_of_failures() {
    // 960 machines, two services holding most of the pool, failures
    // injected at 20x the paper's hard-failure rate so the month actually
    // exercises the replacement path.
    let mut rm = bed(960);
    let mut ranking = ServiceManager::new("ranking");
    let mut dnn = ServiceManager::new("dnn");
    ranking.grow(&mut rm, 400, &Constraints::default()).unwrap();
    dnn.grow(&mut rm, 400, &Constraints::default()).unwrap();

    let mut rng = SimRng::seed_from(99);
    let daily_failure_rate = 20.0 * 2.0 / 5_760.0 / 30.0; // per machine-day
    let mut failures = 0;
    let mut replacements = 0;
    for _day in 0..30 {
        // Draw today's failures over all machines.
        for tor in 0..40u16 {
            for host in 0..24u16 {
                if rng.chance(daily_failure_rate) {
                    let addr = NodeAddr::new(0, tor, host);
                    if let Some(lease) = rm.mark_failed(addr) {
                        failures += 1;
                        // Whichever SM held it requests a replacement.
                        for sm in [&mut ranking, &mut dnn] {
                            match sm.handle_failure(&mut rm, lease) {
                                Ok(Some(_)) => {
                                    replacements += 1;
                                    break;
                                }
                                Ok(None) => continue, // not this service's lease
                                Err(e) => panic!("pool exhausted: {e}"),
                            }
                        }
                    } else {
                        rm.repair(addr); // unallocated spare: swap at leisure
                    }
                }
            }
        }
    }

    assert!(failures >= 2, "want a meaningful soak, got {failures}");
    assert_eq!(replacements, failures, "every disruption was healed");
    assert_eq!(ranking.endpoints().len(), 400, "ranking at full strength");
    assert_eq!(dnn.endpoints().len(), 400, "dnn at full strength");
    assert_eq!(ranking.replacements() + dnn.replacements(), replacements);
    // No failed machine is still serving.
    for addr in ranking.endpoints().into_iter().chain(dnn.endpoints()) {
        assert!(
            matches!(rm.state(addr), Some(FpgaState::Leased { .. })),
            "{addr} serving while not leased"
        );
    }
}

#[test]
fn exhausted_pool_degrades_instead_of_panicking() {
    let mut rm = bed(24);
    let mut sm = ServiceManager::new("greedy");
    sm.grow(&mut rm, 24, &Constraints::default()).unwrap();
    // Fail half the bed with no spares.
    let mut degraded = 0;
    for host in 0..12u16 {
        let addr = NodeAddr::new(0, 0, host);
        let lease = rm.mark_failed(addr).expect("all leased");
        if sm.handle_failure(&mut rm, lease).is_err() {
            degraded += 1;
        }
    }
    assert_eq!(degraded, 12);
    assert_eq!(sm.endpoints().len(), 12, "half strength, still serving");
    // Repairs restore grow-ability.
    for host in 0..12u16 {
        rm.repair(NodeAddr::new(0, 0, host));
    }
    sm.grow(&mut rm, 12, &Constraints::default()).unwrap();
    assert_eq!(sm.endpoints().len(), 24);
}

#[test]
fn multi_tenant_mix_soaks_ten_minutes_deterministically() {
    // Guaranteed + standard + spot tenants contend for the PR-region pool
    // for ten simulated minutes under moderate oversubscription, with
    // chaos board crashes mixed in. The scheduler must serve every class,
    // exercise preemption and spot reclamation, and produce the exact
    // same decision stream when the seeded trace is run twice.
    let cfg = ElasticTraceConfig {
        seed: 7,
        boards: 6,
        horizon: SimDuration::from_secs(600),
        load: 1.3,
        fault_rate: 1.0,
        ..ElasticTraceConfig::default()
    };
    let sched = ElasticConfig {
        spot_reserve_permille: 150,
        ..ElasticConfig::default()
    };
    let regions = standard_region_alms();
    let trace = generate_trace(&cfg);
    assert!(
        trace.len() > 1_000,
        "ten minutes of load, got {} events",
        trace.len()
    );

    let run = || run_trace(cfg.boards, &regions, sched, &trace, cfg.horizon);
    let (sched_a, report_a) = run();
    let (_, report_b) = run();

    // Same seed, same trace => byte-for-byte the same decisions.
    assert_eq!(report_a, report_b, "soak run is not deterministic");
    assert_eq!(report_a.fingerprint, report_b.fingerprint);

    // Every class got served, and the contention machinery actually ran.
    for (i, class) in TenantClass::ALL.iter().enumerate() {
        assert!(
            report_a.p99_wait_ns[i].is_some(),
            "{class:?} saw no grants over the soak"
        );
        assert!(
            !sched_a.wait_histogram(*class).is_empty(),
            "{class:?} wait histogram is empty"
        );
    }
    assert!(report_a.grants > 500, "grants: {}", report_a.grants);
    assert!(report_a.preemptions > 0, "no preemption over ten minutes");
    assert!(
        report_a.reclamations > 0,
        "no spot reclamation over ten minutes"
    );
    assert!(report_a.lost_leases > 0, "chaos crashes never landed");
    assert!(
        report_a.utilization_permille > 400,
        "pool underused: {}permille",
        report_a.utilization_permille
    );
    // The queue drains: nothing waits forever once the trace ends.
    assert!(
        report_a.queued_at_end < 20,
        "queue backlog at end: {}",
        report_a.queued_at_end
    );
}
