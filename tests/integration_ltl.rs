//! Cross-crate integration: LTL messaging over the full simulated fabric,
//! calibration against the paper's Figure 10 latencies, and lossless-class
//! behaviour under load.

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use bytes::Bytes;
use catapult::{probe::schedule_probes, Cluster, ClusterBuilder};
use dcnet::{Msg, NodeAddr, Switch};
use dcsim::{Component, Context, PercentileRecorder, SimDuration, SimTime};
use shell::{LtlDeliver, Shell, ShellCmd};

#[derive(Debug, Default)]
struct Collector {
    payloads: Vec<Bytes>,
}

impl Component<Msg> for Collector {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let Ok(d) = msg.downcast::<LtlDeliver>() {
            self.payloads.push(d.payload);
        }
    }
}

fn measure_rtt(mut cluster: Cluster, a: NodeAddr, b: NodeAddr, probes: u64) -> PercentileRecorder {
    cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    schedule_probes(
        &mut cluster,
        a,
        a_send,
        SimTime::ZERO,
        SimDuration::from_micros(100),
        probes,
        32,
    );
    cluster.run_to_idle();
    let mut out = PercentileRecorder::new();
    out.extend(cluster.shell_mut(a).ltl_mut().rtts_mut().iter());
    out
}

#[test]
fn l0_rtt_matches_paper() {
    // Paper: same-TOR average 2.88us, p99.9 2.9us.
    let mut r = measure_rtt(
        ClusterBuilder::paper(1, 1).build(),
        NodeAddr::new(0, 0, 0),
        NodeAddr::new(0, 0, 1),
        300,
    );
    let avg = r.mean() / 1e3;
    assert!((avg - 2.88).abs() < 0.1, "L0 avg {avg}us");
    let p999 = r.percentile(99.9).unwrap() as f64 / 1e3;
    assert!(p999 < 3.2, "L0 p999 {p999}us");
}

#[test]
fn l1_rtt_matches_paper() {
    // Paper: same-pod average 7.72us.
    let r = measure_rtt(
        ClusterBuilder::paper(2, 1).build(),
        NodeAddr::new(0, 2, 0),
        NodeAddr::new(0, 9, 1),
        300,
    );
    let avg = r.mean() / 1e3;
    assert!((avg - 7.72).abs() < 0.6, "L1 avg {avg}us");
}

#[test]
fn l2_rtt_matches_paper() {
    // Paper: cross-pod average 18.71us, max observed 23.5us.
    let mut r = measure_rtt(
        ClusterBuilder::paper(3, 3).build(),
        NodeAddr::new(0, 2, 0),
        NodeAddr::new(2, 9, 1),
        300,
    );
    let avg = r.mean() / 1e3;
    assert!((avg - 18.71).abs() < 1.5, "L2 avg {avg}us");
    assert!(
        r.max().unwrap() < 40_000,
        "L2 max {}ns is wild",
        r.max().unwrap()
    );
}

#[test]
fn ltl_beats_host_software_stack() {
    // "This protocol makes the datacenter-scale remote FPGA resources
    // appear closer than ... the time to get through the host's
    // networking stack."
    let mut r = measure_rtt(
        ClusterBuilder::paper(5, 3).build(),
        NodeAddr::new(0, 0, 0),
        NodeAddr::new(2, 0, 0),
        100,
    );
    let l2_rtt = SimDuration::from_nanos(r.percentile(99.9).unwrap());
    let stack = host::SoftStackModel::default();
    let mut rng = dcsim::SimRng::seed_from(1);
    let mut stack_rtt_total = SimDuration::ZERO;
    for _ in 0..100 {
        // Request/response through two software stacks each way.
        stack_rtt_total += stack.sample(&mut rng) * 4;
    }
    let stack_rtt = stack_rtt_total / 100;
    assert!(
        l2_rtt < stack_rtt,
        "LTL L2 p99.9 {l2_rtt} should beat software stacks {stack_rtt}"
    );
    assert!(l2_rtt < host::LOCAL_SSD_ACCESS, "and a local SSD access");
}

#[test]
fn large_message_crosses_pods_intact() {
    let mut cluster = ClusterBuilder::paper(8, 2).build();
    let a = NodeAddr::new(0, 0, 0);
    let b = NodeAddr::new(1, 0, 0);
    let a_id = cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    let collector = cluster.engine_mut().add_component(Collector::default());
    cluster.set_consumer(b, collector);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
    cluster.engine_mut().schedule(
        SimTime::ZERO,
        a_id,
        Msg::custom(ShellCmd::LtlSend {
            conn: a_send,
            vc: 0,
            payload: Bytes::from(payload.clone()),
        }),
    );
    cluster.run_to_idle();
    let c = cluster
        .engine()
        .component::<Collector>(collector)
        .expect("collector exists");
    assert_eq!(c.payloads.len(), 1);
    assert_eq!(c.payloads[0].as_ref(), payload.as_slice());
    // ~70 frames, all acknowledged.
    let shell = cluster.shell(a);
    assert!(shell.ltl().stats_view().data_sent >= 69);
    assert_eq!(shell.ltl().in_flight(), 0);
}

#[test]
fn many_to_one_incast_is_lossless_for_ltl() {
    // Several senders blast one receiver through the same TOR: PFC on the
    // lossless class must prevent drops, and every message must arrive.
    let mut cluster = ClusterBuilder::paper(9, 1).build();
    let dst = NodeAddr::new(0, 0, 0);
    cluster.add_shell(dst);
    let senders: Vec<NodeAddr> = (1..7).map(|h| NodeAddr::new(0, 0, h)).collect();
    for &s in &senders {
        cluster.add_shell(s);
    }
    let collector_id = cluster.engine_mut().add_component(Collector::default());
    cluster.set_consumer(dst, collector_id);
    for (i, &s) in senders.iter().enumerate() {
        let (send, _, _, _) = cluster.connect_pair(s, dst);
        let shell_id = cluster.shell_id(s).expect("sender exists");
        for k in 0..20u64 {
            cluster.engine_mut().schedule(
                SimTime::from_nanos(i as u64 * 50 + k * 400),
                shell_id,
                Msg::custom(ShellCmd::LtlSend {
                    conn: send,
                    vc: 0,
                    payload: Bytes::from(vec![i as u8; 1_200]),
                }),
            );
        }
    }
    cluster.run_to_idle();
    let c = cluster
        .engine()
        .component::<Collector>(collector_id)
        .expect("collector exists");
    assert_eq!(c.payloads.len(), senders.len() * 20, "all messages landed");
    // The TOR never dropped an LTL frame.
    let tor = cluster.fabric().tor_switch(0, 0);
    let stats = cluster
        .engine()
        .component::<Switch>(tor)
        .expect("tor exists")
        .stats_view();
    assert_eq!(stats.dropped, 0, "lossless class dropped: {stats:?}");
}

#[test]
fn dead_node_detected_in_milliseconds() {
    // Connection to an unpopulated (dead) slot: retries exhaust quickly so
    // HaaS can reprovision. The TOR port has no peer, so frames vanish.
    let mut cluster = ClusterBuilder::paper(10, 1).build();
    let a = NodeAddr::new(0, 0, 0);
    let dead = NodeAddr::new(0, 0, 9);
    let a_id = cluster.add_shell(a);
    // Manually register a connection to a node that will never answer.
    let a_send = cluster.shell_mut(a).ltl_mut().add_send(dead, 0);
    #[derive(Debug, Default)]
    struct FailureWatch {
        failed: Vec<(SimTime, NodeAddr)>,
    }
    impl Component<Msg> for FailureWatch {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Ok(f) = msg.downcast::<shell::LtlConnFailed>() {
                self.failed.push((ctx.now(), f.remote));
            }
        }
    }
    let watch = cluster.engine_mut().add_component(FailureWatch::default());
    cluster.set_consumer(a, watch);
    cluster.engine_mut().schedule(
        SimTime::ZERO,
        a_id,
        Msg::custom(ShellCmd::LtlSend {
            conn: a_send,
            vc: 0,
            payload: Bytes::from_static(b"anyone home?"),
        }),
    );
    cluster.run_until(SimTime::from_millis(30));
    let w = cluster
        .engine()
        .component::<FailureWatch>(watch)
        .expect("watch exists");
    assert_eq!(w.failed.len(), 1);
    assert_eq!(w.failed[0].1, dead);
    // Original transmission plus 8 exponentially backed-off retries of a
    // 50us timeout: failure declared in a handful of milliseconds, fast
    // enough for "ultra-fast reprovisioning of a replacement".
    assert!(
        w.failed[0].0 < SimTime::from_millis(10),
        "failure detected at {}",
        w.failed[0].0
    );
    assert!(cluster.shell(a).ltl().is_failed(a_send));
}

#[test]
fn bridged_host_traffic_and_ltl_coexist_across_fabric() {
    // All the server's network traffic passes through the FPGA while it
    // simultaneously runs LTL: check both flows complete.
    let mut cluster = ClusterBuilder::paper(11, 1).build();
    let a = NodeAddr::new(0, 0, 0);
    let b = NodeAddr::new(0, 1, 0);
    let a_id = cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    let collector = cluster.engine_mut().add_component(Collector::default());
    cluster.set_consumer(b, collector);

    // Host traffic: injected at A's NIC port, addressed to B's host.
    for i in 0..50u64 {
        let pkt = dcnet::Packet::new(
            a,
            b,
            5555,
            6666,
            dcnet::TrafficClass::BEST_EFFORT,
            Bytes::from(vec![0u8; 1_000]),
        );
        cluster.engine_mut().schedule(
            SimTime::from_nanos(i * 300),
            a_id,
            Msg::packet(pkt, shell::PORT_NIC),
        );
    }
    // LTL traffic at the same time.
    cluster.engine_mut().schedule(
        SimTime::from_micros(3),
        a_id,
        Msg::custom(ShellCmd::LtlSend {
            conn: a_send,
            vc: 0,
            payload: Bytes::from(vec![7u8; 5_000]),
        }),
    );
    cluster.run_to_idle();
    let shell_a: &Shell = cluster.shell(a);
    assert_eq!(shell_a.stats_view().bridged_out, 50);
    let c = cluster
        .engine()
        .component::<Collector>(collector)
        .expect("collector exists");
    assert_eq!(c.payloads.len(), 1, "LTL message delivered despite load");
}
