//! End-to-end network-acceleration integration: encrypted flows crossing
//! the real simulated fabric through bump-in-the-wire crypto taps.

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use apps::crypto::{CipherSuite, CryptoTap, FlowKey};
use bytes::Bytes;
use catapult::ClusterBuilder;
use dcnet::{Msg, NetEvent, NodeAddr, Packet, PortId, TrafficClass};
use dcsim::{Component, ComponentId, Context, SimTime};
use shell::PORT_NIC;

#[derive(Debug, Default)]
struct HostNic {
    received: Vec<Packet>,
}

impl Component<Msg> for HostNic {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, .. }) = msg {
            self.received.push(pkt);
        }
    }
}

fn encrypted_flow_roundtrip(suite: CipherSuite) -> (Vec<Packet>, u64) {
    let mut cluster = ClusterBuilder::paper(21, 1).build();
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 5, 2); // cross-rack, through agg
    let a_shell = cluster.add_shell(a);
    let b_shell = cluster.add_shell(b);

    let flow = FlowKey {
        src: a,
        dst: b,
        src_port: 7000,
        dst_port: 8000,
    };
    let key = b"an-aes-128-key!!";
    let mut tap_a = CryptoTap::new();
    tap_a.add_flow(flow, suite, key);
    let mut tap_b = CryptoTap::new();
    tap_b.add_flow(flow, suite, key);
    cluster.shell_mut(a).set_tap(Box::new(tap_a));
    cluster.shell_mut(b).set_tap(Box::new(tap_b));

    // B's host NIC receives the decrypted stream.
    let nic_b: ComponentId = cluster.engine_mut().add_component(HostNic::default());
    cluster.shell_mut(b).connect_nic(nic_b, PortId(0));

    let messages = 10u64;
    for i in 0..messages {
        let pkt = Packet::new(
            a,
            b,
            7000,
            8000,
            TrafficClass::BEST_EFFORT,
            Bytes::from(format!("secret payload number {i}")),
        );
        cluster.engine_mut().schedule(
            SimTime::from_micros(i * 20),
            a_shell,
            Msg::packet(pkt, PORT_NIC),
        );
    }
    cluster.run_to_idle();

    let received = cluster
        .engine()
        .component::<HostNic>(nic_b)
        .expect("nic exists")
        .received
        .clone();
    let encrypted = cluster
        .shell(a)
        .tap_as::<CryptoTap>()
        .expect("crypto tap installed")
        .stats_view()
        .encrypted;
    let _ = b_shell;
    (received, encrypted)
}

#[test]
fn gcm_flow_decrypts_at_destination_across_fabric() {
    let (received, encrypted) = encrypted_flow_roundtrip(CipherSuite::AesGcm128);
    assert_eq!(encrypted, 10);
    assert_eq!(received.len(), 10);
    for (i, pkt) in received.iter().enumerate() {
        assert_eq!(
            pkt.payload.as_ref(),
            format!("secret payload number {i}").as_bytes(),
            "plaintext restored in order"
        );
    }
}

#[test]
fn cbc_sha1_flow_decrypts_at_destination_across_fabric() {
    let (received, _) = encrypted_flow_roundtrip(CipherSuite::AesCbc128Sha1);
    assert_eq!(received.len(), 10);
    assert!(received
        .iter()
        .enumerate()
        .all(|(i, p)| p.payload.as_ref() == format!("secret payload number {i}").as_bytes()));
}

#[test]
fn receiver_without_key_drops_tampered_traffic() {
    // One-sided key install: the receiving tap has a *different* key, so
    // authentication fails and nothing reaches the host.
    let mut cluster = ClusterBuilder::paper(22, 1).build();
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 0, 2);
    let a_shell = cluster.add_shell(a);
    cluster.add_shell(b);
    let flow = FlowKey {
        src: a,
        dst: b,
        src_port: 1,
        dst_port: 2,
    };
    let mut tap_a = CryptoTap::new();
    tap_a.add_flow(flow, CipherSuite::AesGcm128, b"right-key-128bit");
    let mut tap_b = CryptoTap::new();
    tap_b.add_flow(flow, CipherSuite::AesGcm128, b"wrong-key-128bit");
    cluster.shell_mut(a).set_tap(Box::new(tap_a));
    cluster.shell_mut(b).set_tap(Box::new(tap_b));
    let nic_b = cluster.engine_mut().add_component(HostNic::default());
    cluster.shell_mut(b).connect_nic(nic_b, PortId(0));

    let pkt = Packet::new(
        a,
        b,
        1,
        2,
        TrafficClass::BEST_EFFORT,
        Bytes::from_static(b"x"),
    );
    cluster
        .engine_mut()
        .schedule(SimTime::ZERO, a_shell, Msg::packet(pkt, PORT_NIC));
    cluster.run_to_idle();

    assert!(cluster
        .engine()
        .component::<HostNic>(nic_b)
        .expect("nic exists")
        .received
        .is_empty());
    let stats = cluster
        .shell(b)
        .tap_as::<CryptoTap>()
        .expect("tap installed")
        .stats_view();
    assert_eq!(stats.auth_failures, 1);
}
