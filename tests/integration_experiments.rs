//! Smoke-runs every experiment driver at reduced scale and asserts the
//! paper's headline shapes: who wins, by roughly what factor, and where
//! the crossovers fall.

use catapult::experiments::{
    crypto_table, deployment_table, fig05_summary, fig06, fig10, fig11, fig12, power_table,
    production, RankingSweepParams,
};

#[test]
fn fig05_shape() {
    let s = fig05_summary();
    assert_eq!(s.used_alms, 131_350);
    assert_eq!(s.available_alms, 172_600);
    assert!((s.shell_fraction - 0.44).abs() < 0.01);
    assert!((s.role_fraction - 0.32).abs() < 0.01);
}

#[test]
fn fig06_fpga_gain_about_2_25x() {
    let params = RankingSweepParams {
        queries_per_point: 15_000,
        loads: vec![0.5, 1.0, 1.5, 2.0, 2.25, 2.5],
        ..RankingSweepParams::default()
    };
    let curves = fig06(&params);
    assert!(
        curves.fpga_gain_at_target > 2.0 && curves.fpga_gain_at_target < 2.6,
        "gain {}",
        curves.fpga_gain_at_target
    );
    // The software curve reaches p99 ~ 1.0 at offered ~ 1.0 by
    // construction, and explodes past capacity.
    let sw_sat = curves
        .software
        .iter()
        .find(|p| p.offered > 1.4)
        .expect("overload point exists");
    assert!(sw_sat.p99 > 5.0, "software overload p99 {}", sw_sat.p99);
    // The FPGA curve stays under target through 2x load.
    let fpga_2x = curves
        .local_fpga
        .iter()
        .find(|p| (p.offered - 2.0).abs() < 0.01)
        .expect("2x point exists");
    assert!(fpga_2x.p99 < 1.0, "fpga p99 at 2x: {}", fpga_2x.p99);
}

#[test]
fn fig07_fig08_fpga_dc_absorbs_double_load_with_tighter_tail() {
    let params = production::ProductionParams {
        days: 2,
        day_length: dcsim::SimDuration::from_secs(8),
        buckets_per_day: 12,
        ..production::ProductionParams::default()
    };
    let r = production::run(&params);
    assert!(
        r.fpga_peak_load > 1.4 * r.sw_peak_load,
        "fpga peak {} vs sw peak {}",
        r.fpga_peak_load,
        r.sw_peak_load
    );
    assert!(
        r.sw_worst_p999 > 2.0,
        "software latency spikes: {}",
        r.sw_worst_p999
    );
    assert!(
        r.fpga_worst_p999 < 1.0,
        "fpga tail stays under target: {}",
        r.fpga_worst_p999
    );
    // Figure 8: at every load level the FPGA latency never exceeds the
    // software latency at that load.
    let (sw, fpga) = r.scatter();
    for &(fl, fp) in &fpga {
        // Compare against software buckets at similar or lower load.
        let sw_floor = sw
            .iter()
            .filter(|&&(sl, _)| sl <= fl + 0.05)
            .map(|&(_, sp)| sp)
            .fold(f64::INFINITY, f64::min);
        if sw_floor.is_finite() {
            assert!(
                fp <= sw_floor * 1.5 + 0.3,
                "fpga p999 {fp} at load {fl} worse than best software {sw_floor}"
            );
        }
    }
}

#[test]
fn fig10_tiers_and_torus() {
    let params = fig10::Fig10Params {
        pods: 3,
        pairs_per_tier: 2,
        probes_per_pair: 150,
        ..fig10::Fig10Params::default()
    };
    let r = fig10::run(&params);
    assert_eq!(r.tiers.len(), 3);
    let l0 = &r.tiers[0];
    let l1 = &r.tiers[1];
    let l2 = &r.tiers[2];
    assert!((l0.avg_us - 2.88).abs() < 0.15, "L0 {}", l0.avg_us);
    assert!((l1.avg_us - 7.72).abs() < 0.8, "L1 {}", l1.avg_us);
    assert!((l2.avg_us - 18.71).abs() < 2.0, "L2 {}", l2.avg_us);
    assert!(l0.reachable_hosts == 24);
    assert!(l1.reachable_hosts == 960);
    assert!(l2.reachable_hosts > 2_000);
    // Torus: comparable latency at tiny scale, hard 48-node cap.
    assert_eq!(r.torus.reachable_hosts, 48);
    assert!((r.torus.nearest_us - 1.0).abs() < 0.01);
    assert!((r.torus.worst_us - 7.0).abs() < 0.01);
    // LTL reaches 40x more hosts than the torus at comparable latency.
    assert!(l1.reachable_hosts >= 20 * r.torus.reachable_hosts);
    assert!(l1.avg_us < 2.0 * r.torus.worst_us);
}

#[test]
fn fig11_remote_overhead_minimal() {
    let params = RankingSweepParams {
        queries_per_point: 8_000,
        loads: vec![1.0, 2.0],
        seed: 0x11F,
        ..RankingSweepParams::default()
    };
    let curves = fig11(&params);
    for (r, l) in curves.remote_fpga.iter().zip(&curves.local_fpga) {
        let overhead = r.mean / l.mean - 1.0;
        assert!(
            overhead.abs() < 0.1,
            "remote mean overhead {overhead} at load {}",
            r.offered
        );
    }
}

#[test]
fn fig12_flat_until_saturation() {
    let mut params = fig12::Fig12Params {
        accelerators: 2,
        ratios: vec![1.0, 3.0],
        requests_per_client: 1_000,
        ..fig12::Fig12Params::default()
    };
    let r = fig12::run(&params);
    assert!((r.saturation_clients - 22.5).abs() < 0.5);
    for row in &r.rows {
        assert!(row.avg < 1.15, "ratio {} avg {}", row.ratio, row.avg);
        assert!(row.p99 < 1.3, "ratio {} p99 {}", row.ratio, row.p99);
    }
    // Past the knee latencies spike prohibitively.
    params.ratios = vec![24.0];
    params.seed ^= 1;
    let sat = fig12::run(&params);
    assert!(sat.rows[0].avg > 3.0, "saturated avg {}", sat.rows[0].avg);
}

#[test]
fn crypto_table_shape() {
    let t = crypto_table();
    let find = |name: &str| {
        t.rows
            .iter()
            .find(|r| r.suite == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };
    let gcm = find("AES-GCM-128");
    let gcm256 = find("AES-GCM-256");
    let cbc = find("AES-CBC-128-SHA1");
    assert!(gcm.sw_cores_40g < gcm256.sw_cores_40g, "256b is slower");
    assert!((gcm.sw_cores_40g - 5.25).abs() < 0.1);
    assert!(cbc.sw_cores_40g >= 14.9);
    assert_eq!(gcm.fpga_cores, 0.0);
    // The FPGA's CBC latency is worse than software's — the win is cores.
    assert!(cbc.fpga_latency_us > cbc.sw_latency_us);
    assert!((cbc.fpga_latency_us - 11.0).abs() < 0.1);
}

#[test]
fn deployment_soak_in_paper_band() {
    let t = deployment_table(5_760, 30.0, 0xD0);
    // Counts are Poisson; accept generous bands around the paper's counts.
    assert!(t.simulated.fpga_hard <= 8);
    assert!(t.simulated.seu_flips > 120 && t.simulated.seu_flips < 230);
    assert!(t.simulated.seu_hangs <= 6);
}

#[test]
fn power_within_limits() {
    let t = power_table();
    assert!((t.virus_watts - 29.2).abs() < 0.3);
    assert!(t.within_tdp);
    assert!(t.virus_watts < t.tdp_watts && t.tdp_watts < t.limit_watts);
}
