//! End-to-end chaos harness guarantees: the seeded fault schedule and
//! recovery report are byte-identical across runs, and the scenario
//! presets recover the way the paper's health loop promises — a rack
//! isolation drains and re-maps every affected FPGA with zero request
//! loss, and a bad application image is rolled back to the golden image.

use catapult::chaos::{ChaosConfig, ChaosRig, FaultKind, Preset};
use dcsim::SimDuration;

#[test]
fn same_seed_produces_byte_identical_reports() {
    let run = |seed| {
        let report = ChaosRig::build(ChaosConfig::quick(seed, Preset::Random)).run();
        serde_json::to_string_pretty(&report).expect("report serialises")
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay the same timeline and report");
    let c = run(1042);
    assert_ne!(a, c, "a different seed must draw a different schedule");
}

#[test]
fn fault_plans_replay_identically_and_scale_with_rate() {
    let plan = |seed, rate| {
        let mut cfg = ChaosConfig::quick(seed, Preset::Random);
        cfg.fault_rate = rate;
        ChaosRig::build(cfg).plan().events.clone()
    };
    assert_eq!(plan(9, 1.0), plan(9, 1.0));
    // Averaged over seeds, a higher rate draws more faults.
    let low: usize = (0..8).map(|s| plan(s, 0.5).len()).sum();
    let high: usize = (0..8).map(|s| plan(s, 4.0).len()).sum();
    assert!(
        high > 2 * low,
        "rate 4.0 should draw far more faults than 0.5 ({high} vs {low})"
    );
}

#[test]
fn rack_isolation_drains_and_remaps_with_zero_loss() {
    let cfg = ChaosConfig::quick(11, Preset::RackIsolation);
    let ranking_primaries = cfg.ranking_pairs as u64;
    let rig = ChaosRig::build(cfg);
    assert!(matches!(
        rig.plan().events[0].kind,
        FaultKind::TorCrash { pod: 0, tor: 1, .. }
    ));
    let report = rig.run();

    // Every ranking primary lived in the isolated rack: all of them are
    // detected, drained from the pool and re-mapped to spares.
    assert_eq!(report.detection.reports, ranking_primaries);
    assert_eq!(report.recovery.failovers, ranking_primaries);
    assert_eq!(report.recovery.replacements, ranking_primaries);
    for rec in &report.recovery.records {
        assert_eq!(rec.service.as_deref(), Some("ranking"));
        assert!(
            rec.replacement.is_some(),
            "pool has a spare for every primary"
        );
    }

    // Zero post-recovery request loss: everything issued completes.
    assert_eq!(report.requests.lost, 0, "no request abandoned");
    assert_eq!(report.requests.stranded, 0, "no request stranded");
    assert_eq!(report.requests.completed, report.requests.issued);
    assert!(
        report.requests.served_by_spares > 0,
        "spares carry the post-failover traffic"
    );
    assert_eq!(report.fabric.crashes, 1);
    assert!(report.fabric.crash_drops > 0, "the dead TOR ate frames");
}

#[test]
fn golden_image_preset_recovers_via_power_cycle() {
    let report = ChaosRig::build(ChaosConfig::quick(13, Preset::GoldenImage)).run();
    assert_eq!(report.recovery.power_cycles, 1);
    assert_eq!(report.recovery.records.len(), 1);
    let rec = &report.recovery.records[0];
    assert!(rec.power_cycled, "recovery went through the golden image");
    assert_eq!(rec.service.as_deref(), Some("dnn-pool"));
    assert_eq!(report.requests.lost, 0);
    assert_eq!(report.requests.stranded, 0);
}

#[test]
fn detection_latency_is_bounded_by_transport_timeouts() {
    // LTL declares a connection dead after its retry budget; the monitor
    // must hear about a downed rack within a transport-bounded window,
    // not an arbitrary one.
    let report = ChaosRig::build(ChaosConfig::quick(17, Preset::RackIsolation)).run();
    assert!(!report.detection.latencies_us.is_empty());
    for &lat_us in &report.detection.latencies_us {
        assert!(
            lat_us < 10_000,
            "detection took {lat_us}us, beyond the LTL failure window"
        );
    }
    assert!(report.transport.conn_failures > 0);
    assert!(report.transport.retransmits > 0);
}

#[test]
fn repaired_nodes_return_to_the_pool() {
    let mut cfg = ChaosConfig::quick(19, Preset::RackIsolation);
    cfg.repair_after = Some(SimDuration::from_millis(30));
    let report = ChaosRig::build(cfg).run();
    assert_eq!(report.recovery.repairs, report.detection.reports);
}
