//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates.

use apps::crypto::{cbc_sha1_open, cbc_sha1_seal, Aes, AesGcm, Sha1};
use apps::ranking::{min_cover_window, Document, FfuBank, Query};
use bytes::Bytes;
use dcnet::{NodeAddr, Packet, TrafficClass};
use dcsim::{Component, ComponentId, Context, Engine, PercentileRecorder, SimDuration, SimTime};
use proptest::prelude::*;
use shell::ltl::{FrameKind, LtlFrame};
use shell::{CreditPolicy, ElasticRouter, ErConfig, Flit};

proptest! {
    #[test]
    fn sim_time_add_sub_roundtrip(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(mut xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut rec: PercentileRecorder = xs.iter().copied().collect();
        let p50 = rec.percentile(50.0).unwrap();
        let p99 = rec.percentile(99.0).unwrap();
        let p100 = rec.percentile(100.0).unwrap();
        prop_assert!(p50 <= p99 && p99 <= p100);
        xs.sort_unstable();
        prop_assert_eq!(p100, *xs.last().unwrap());
        prop_assert!(rec.percentile(0.0001).unwrap() >= *xs.first().unwrap());
    }

    #[test]
    fn packet_wire_roundtrip(
        pod in 0u16..4096, tor in 0u16..1024, host in 0u16..256,
        sp in 0u16.., dp in 0u16..,
        class in 0u8..8,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let pkt = Packet::new(
            NodeAddr::new(pod, tor, host),
            NodeAddr::new(tor % 256, pod % 256, host % 24),
            sp, dp,
            TrafficClass::new(class),
            Bytes::from(payload),
        );
        let decoded = Packet::decode_wire(&pkt.encode_wire()).unwrap();
        prop_assert_eq!(decoded.src, pkt.src);
        prop_assert_eq!(decoded.dst, pkt.dst);
        prop_assert_eq!(decoded.src_port, pkt.src_port);
        prop_assert_eq!(decoded.dst_port, pkt.dst_port);
        prop_assert_eq!(decoded.class, pkt.class);
        prop_assert_eq!(decoded.payload, pkt.payload);
    }

    #[test]
    fn ltl_frame_roundtrip(
        kind in 0u8..4,
        src_conn in any::<u16>(), dst_conn in any::<u16>(),
        seq in any::<u32>(), msg_id in any::<u32>(),
        last in any::<bool>(), vc in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1000),
    ) {
        let kind = match kind {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            2 => FrameKind::Nack,
            _ => FrameKind::Cnp,
        };
        let frame = LtlFrame {
            kind, src_conn, dst_conn, seq, msg_id,
            last_frag: last, vc,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(LtlFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn aes_roundtrips_any_block(key in proptest::array::uniform16(any::<u8>()), block in proptest::array::uniform16(any::<u8>())) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn gcm_roundtrips_any_payload(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let gcm = AesGcm::new_128(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&iv, &aad, &mut buf);
        gcm.open(&iv, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn gcm_detects_any_single_bitflip(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let iv = [9u8; 12];
        let mut buf = data;
        let tag = gcm.seal(&iv, &[], &mut buf);
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&iv, &[], &mut buf, &tag).is_err());
    }

    #[test]
    fn cbc_sha1_record_roundtrips(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new_128(&key);
        let record = cbc_sha1_seal(&aes, &key, &iv, &data);
        prop_assert_eq!(cbc_sha1_open(&aes, &key, &iv, &record).unwrap(), data);
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in any::<usize>(),
    ) {
        let oneshot = Sha1::digest(&data);
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn ffu_term_count_matches_naive(
        terms in proptest::collection::vec(0u32..50, 1..4),
        tokens in proptest::collection::vec(0u32..50, 0..300),
    ) {
        let query = Query { terms: terms.clone() };
        let doc = Document { tokens: tokens.clone() };
        let mut bank = FfuBank::for_query(&query);
        let features = bank.compute(&doc);
        for (i, &t) in terms.iter().enumerate() {
            let expected = tokens.iter().filter(|&&x| x == t).count() as f32;
            prop_assert_eq!(features[2 * i], expected);
        }
    }

    #[test]
    fn min_window_contains_all_terms(
        terms in proptest::collection::vec(0u32..20, 1..4),
        tokens in proptest::collection::vec(0u32..20, 0..200),
    ) {
        let query = Query { terms: terms.clone() };
        let doc = Document { tokens: tokens.clone() };
        match min_cover_window(&query, &doc) {
            Some(w) => {
                // Verify some window of length w covers all query terms.
                prop_assert!(w <= tokens.len() || terms.is_empty());
                let ok = (0..=tokens.len().saturating_sub(w)).any(|s| {
                    terms.iter().all(|t| tokens[s..s + w].contains(t))
                }) || w == 0;
                prop_assert!(ok, "no window of {} covers {:?}", w, terms);
            }
            None => {
                prop_assert!(terms.iter().any(|t| !tokens.contains(t)));
            }
        }
    }

    #[test]
    fn elastic_router_conserves_flits(
        injections in proptest::collection::vec((0usize..4, 0usize..4, 0usize..2), 0..64),
    ) {
        let mut er = ElasticRouter::new(ErConfig {
            ports: 4,
            vcs: 2,
            credits_per_vc: 4,
            shared_credits: 8,
            policy: CreditPolicy::Elastic,
            flit_bytes: 32,
        });
        let mut accepted = 0u64;
        for (i, &(port, out, vc)) in injections.iter().enumerate() {
            let flit = Flit {
                out_port: out,
                vc,
                tail: true,
                msg_id: i as u64,
                flit_seq: 0,
            };
            if er.inject(port, flit).is_ok() {
                accepted += 1;
            }
        }
        let drained = er.drain(10_000);
        prop_assert_eq!(drained.len() as u64, accepted);
        prop_assert_eq!(er.occupancy(), 0);
        // Every accepted flit leaves on its requested output port.
        for (port, flit) in &drained {
            prop_assert_eq!(*port, flit.out_port);
        }
    }
}

/// Wraps a [`serde::Value`] tree so it can be fed to the serializer.
struct RawValue(serde::Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// Builds a scalar JSON value from a generated tag and payloads.
fn scalar(tag: u8, n: u64, x: f64, s: &str) -> serde::Value {
    use serde::Value;
    match tag % 6 {
        0 => Value::Null,
        1 => Value::Bool(n.is_multiple_of(2)),
        2 => Value::U64(n),
        // Strictly negative: the parser types non-negative integers as
        // U64, so only negative values reparse as I64.
        3 => Value::I64(-1 - (n / 3) as i64),
        4 => Value::F64(x),
        _ => Value::Str(s.to_string()),
    }
}

proptest! {
    /// Anything the vendored serializer emits, the telemetry validator
    /// parses back to the identical value tree — compact and pretty,
    /// scalars, arrays, and objects with tricky keys. This pins the two
    /// sides of the JSON contract to each other.
    #[test]
    fn serializer_output_reparses_identically(
        tags in proptest::collection::vec(any::<u8>(), 1..12),
        nums in proptest::collection::vec(any::<u64>(), 12),
        floats in proptest::collection::vec(-1e9f64..1e9, 12),
        raw_strings in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 0..12),
            12,
        ),
        depth_tag in 0u8..3,
    ) {
        use serde::Value;
        // Escape-heavy character palette: quotes, backslashes, control
        // characters, and multi-byte unicode.
        const PALETTE: [char; 12] =
            ['a', 'z', '"', '\\', '\u{8}', '\t', '\n', '\r', ' ', '/', 'é', '\u{1F600}'];
        let strings: Vec<String> = raw_strings
            .iter()
            .map(|idxs| idxs.iter().map(|&i| PALETTE[i]).collect())
            .collect();
        let leaves: Vec<Value> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| scalar(t, nums[i], floats[i], &strings[i]))
            .collect();
        // Bounded nesting built by hand (the vendored proptest has no
        // recursive strategies): leaves -> container -> root object.
        let inner = match depth_tag {
            0 => Value::Array(leaves.clone()),
            1 => Value::Object(
                leaves
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (format!("k{i}"), v.clone()))
                    .collect(),
            ),
            _ => Value::Array(vec![
                Value::Array(leaves.clone()),
                Value::Object(vec![("nested \" key".into(), leaves[0].clone())]),
            ]),
        };
        let root = Value::Object(vec![
            ("payload".into(), inner),
            ("count".into(), Value::U64(leaves.len() as u64)),
        ]);
        let compact = serde_json::to_string(&RawValue(root.clone())).unwrap();
        let pretty = serde_json::to_string_pretty(&RawValue(root.clone())).unwrap();
        prop_assert_eq!(&telemetry::json::parse(&compact).unwrap(), &root);
        prop_assert_eq!(&telemetry::json::parse(&pretty).unwrap(), &root);
    }
}

/// Records every delivery with its timestamp; message payloads carry the
/// global scheduling order so FIFO tie-breaking is checkable.
#[derive(Debug, Default)]
struct DeliveryLog {
    seen: Vec<(u64, u32)>,
}

impl Component<u32> for DeliveryLog {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        self.seen.push((ctx.now().as_nanos(), msg));
    }
}

/// Schedules bursts of events *from inside the run*, so the calendar
/// queue sees pushes while it is draining — the regime where a retune
/// moves events between buckets with a live cursor.
struct WaveFeeder {
    log: ComponentId,
    waves: Vec<Vec<u64>>,
    next_wave: usize,
    sent: u32,
}

impl Component<u32> for WaveFeeder {
    fn on_message(&mut self, _msg: u32, ctx: &mut Context<'_, u32>) {
        if let Some(wave) = self.waves.get(self.next_wave) {
            self.next_wave += 1;
            for &offset in wave {
                ctx.send_after(SimDuration::from_nanos(offset), self.log, self.sent);
                self.sent += 1;
            }
            // Re-arm between waves at an odd stride so wave boundaries
            // interleave with deliveries rather than aligning to them.
            ctx.send_to_self_after(SimDuration::from_nanos(997), 0);
        }
    }
}

fn assert_log_ordered(seen: &[(u64, u32)], expected: usize) -> Result<(), String> {
    if seen.len() != expected {
        return Err(format!("delivered {} of {expected} events", seen.len()));
    }
    for w in seen.windows(2) {
        if w[0].0 > w[1].0 {
            return Err(format!("time went backwards: {:?} then {:?}", w[0], w[1]));
        }
        if w[0].0 == w[1].0 && w[0].1 >= w[1].1 {
            return Err(format!("FIFO violated on tie: {:?} then {:?}", w[0], w[1]));
        }
    }
    Ok(())
}

// Calendar-queue stress properties. Each case schedules thousands of
// events (enough to cross the queue's retune interval several times), so
// the case count is kept deliberately small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Events far beyond the wheel's current year (the overflow heap)
    /// and events straddling the initial wheel span all deliver in
    /// timestamp order with FIFO tie-breaking, regardless of the
    /// interleaving they were pushed in.
    #[test]
    fn calendar_queue_orders_across_the_year_boundary(
        near in proptest::collection::vec(0u64..40_000, 1..120),
        far in proptest::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let mut e: Engine<u32> = Engine::new(7);
        let log = e.add_component(DeliveryLog::default());
        let mut order = 0u32;
        // Interleave near and far pushes so wheel and overflow-heap
        // inserts alternate.
        let far_base = SimTime::from_secs(100).as_nanos();
        let mut near_it = near.iter();
        let mut far_it = far.iter();
        loop {
            match (near_it.next(), far_it.next()) {
                (None, None) => break,
                (n, f) => {
                    if let Some(&t) = n {
                        e.schedule(SimTime::from_nanos(t), log, order);
                        order += 1;
                    }
                    if let Some(&t) = f {
                        e.schedule(SimTime::from_nanos(far_base + t), log, order);
                        order += 1;
                    }
                }
            }
        }
        e.run_to_idle();
        let seen = &e.component::<DeliveryLog>(log).unwrap().seen;
        assert_log_ordered(seen, near.len() + far.len()).unwrap();
    }

    /// Waves of pushes landing mid-drain — enough volume to force the
    /// adaptive retune to resize the bucket wheel while events are in
    /// flight — never reorder or lose an event.
    #[test]
    fn calendar_queue_retune_mid_drain_preserves_order(
        waves in proptest::collection::vec(
            proptest::collection::vec(0u64..3_000_000, 1_200..1_700),
            3..6,
        ),
    ) {
        let total: usize = waves.iter().map(Vec::len).sum();
        let mut e: Engine<u32> = Engine::new(11);
        let log = e.add_component(DeliveryLog::default());
        let feeder = e.add_component(WaveFeeder {
            log,
            waves,
            next_wave: 0,
            sent: 0,
        });
        e.schedule(SimTime::ZERO, feeder, 0);
        e.run_to_idle();
        let seen = &e.component::<DeliveryLog>(log).unwrap().seen;
        assert_log_ordered(seen, total).unwrap();
    }
}

/// Deterministic regression for the exact wheel-year edge: events one
/// slot inside, exactly on, and one slot past the initial wheel span
/// (64 buckets x 256 ns), pushed both before and during the drain.
#[test]
fn calendar_queue_year_edge_events_deliver_in_order() {
    let initial_span = 64 * 256u64;
    let mut e: Engine<u32> = Engine::new(3);
    let log = e.add_component(DeliveryLog::default());
    let edge_times = [
        initial_span + 1,
        initial_span,
        initial_span - 1,
        2 * initial_span,
        1,
        0,
    ];
    for (order, &t) in edge_times.iter().enumerate() {
        e.schedule(SimTime::from_nanos(t), log, order as u32);
    }
    // A second batch lands mid-drain, re-straddling the (advanced) year.
    let feeder = e.add_component(WaveFeeder {
        log,
        waves: vec![vec![initial_span - 2, initial_span * 3, 5, 0]],
        next_wave: 0,
        sent: 100,
    });
    e.schedule(SimTime::from_nanos(2), feeder, 0);
    e.run_to_idle();
    let seen = &e.component::<DeliveryLog>(log).unwrap().seen;
    assert_eq!(seen.len(), 10);
    let times: Vec<u64> = seen.iter().map(|&(t, _)| t).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted, "deliveries out of timestamp order");
}
