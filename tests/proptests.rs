//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates.

use apps::crypto::{cbc_sha1_open, cbc_sha1_seal, Aes, AesGcm, Sha1};
use apps::ranking::{min_cover_window, Document, FfuBank, Query};
use bytes::Bytes;
use dcnet::{NodeAddr, Packet, TrafficClass};
use dcsim::{PercentileRecorder, SimDuration, SimTime};
use proptest::prelude::*;
use shell::ltl::{FrameKind, LtlFrame};
use shell::{CreditPolicy, ElasticRouter, ErConfig, Flit};

proptest! {
    #[test]
    fn sim_time_add_sub_roundtrip(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(mut xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut rec: PercentileRecorder = xs.iter().copied().collect();
        let p50 = rec.percentile(50.0).unwrap();
        let p99 = rec.percentile(99.0).unwrap();
        let p100 = rec.percentile(100.0).unwrap();
        prop_assert!(p50 <= p99 && p99 <= p100);
        xs.sort_unstable();
        prop_assert_eq!(p100, *xs.last().unwrap());
        prop_assert!(rec.percentile(0.0001).unwrap() >= *xs.first().unwrap());
    }

    #[test]
    fn packet_wire_roundtrip(
        pod in 0u16..4096, tor in 0u16..1024, host in 0u16..256,
        sp in 0u16.., dp in 0u16..,
        class in 0u8..8,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let pkt = Packet::new(
            NodeAddr::new(pod, tor, host),
            NodeAddr::new(tor % 256, pod % 256, host % 24),
            sp, dp,
            TrafficClass::new(class),
            Bytes::from(payload),
        );
        let decoded = Packet::decode_wire(&pkt.encode_wire()).unwrap();
        prop_assert_eq!(decoded.src, pkt.src);
        prop_assert_eq!(decoded.dst, pkt.dst);
        prop_assert_eq!(decoded.src_port, pkt.src_port);
        prop_assert_eq!(decoded.dst_port, pkt.dst_port);
        prop_assert_eq!(decoded.class, pkt.class);
        prop_assert_eq!(decoded.payload, pkt.payload);
    }

    #[test]
    fn ltl_frame_roundtrip(
        kind in 0u8..4,
        src_conn in any::<u16>(), dst_conn in any::<u16>(),
        seq in any::<u32>(), msg_id in any::<u32>(),
        last in any::<bool>(), vc in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1000),
    ) {
        let kind = match kind {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            2 => FrameKind::Nack,
            _ => FrameKind::Cnp,
        };
        let frame = LtlFrame {
            kind, src_conn, dst_conn, seq, msg_id,
            last_frag: last, vc,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(LtlFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn aes_roundtrips_any_block(key in proptest::array::uniform16(any::<u8>()), block in proptest::array::uniform16(any::<u8>())) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn gcm_roundtrips_any_payload(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let gcm = AesGcm::new_128(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&iv, &aad, &mut buf);
        gcm.open(&iv, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn gcm_detects_any_single_bitflip(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let gcm = AesGcm::new_128(b"0123456789abcdef");
        let iv = [9u8; 12];
        let mut buf = data;
        let tag = gcm.seal(&iv, &[], &mut buf);
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&iv, &[], &mut buf, &tag).is_err());
    }

    #[test]
    fn cbc_sha1_record_roundtrips(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new_128(&key);
        let record = cbc_sha1_seal(&aes, &key, &iv, &data);
        prop_assert_eq!(cbc_sha1_open(&aes, &key, &iv, &record).unwrap(), data);
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in any::<usize>(),
    ) {
        let oneshot = Sha1::digest(&data);
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn ffu_term_count_matches_naive(
        terms in proptest::collection::vec(0u32..50, 1..4),
        tokens in proptest::collection::vec(0u32..50, 0..300),
    ) {
        let query = Query { terms: terms.clone() };
        let doc = Document { tokens: tokens.clone() };
        let mut bank = FfuBank::for_query(&query);
        let features = bank.compute(&doc);
        for (i, &t) in terms.iter().enumerate() {
            let expected = tokens.iter().filter(|&&x| x == t).count() as f32;
            prop_assert_eq!(features[2 * i], expected);
        }
    }

    #[test]
    fn min_window_contains_all_terms(
        terms in proptest::collection::vec(0u32..20, 1..4),
        tokens in proptest::collection::vec(0u32..20, 0..200),
    ) {
        let query = Query { terms: terms.clone() };
        let doc = Document { tokens: tokens.clone() };
        match min_cover_window(&query, &doc) {
            Some(w) => {
                // Verify some window of length w covers all query terms.
                prop_assert!(w <= tokens.len() || terms.is_empty());
                let ok = (0..=tokens.len().saturating_sub(w)).any(|s| {
                    terms.iter().all(|t| tokens[s..s + w].contains(t))
                }) || w == 0;
                prop_assert!(ok, "no window of {} covers {:?}", w, terms);
            }
            None => {
                prop_assert!(terms.iter().any(|t| !tokens.contains(t)));
            }
        }
    }

    #[test]
    fn elastic_router_conserves_flits(
        injections in proptest::collection::vec((0usize..4, 0usize..4, 0usize..2), 0..64),
    ) {
        let mut er = ElasticRouter::new(ErConfig {
            ports: 4,
            vcs: 2,
            credits_per_vc: 4,
            shared_credits: 8,
            policy: CreditPolicy::Elastic,
            flit_bytes: 32,
        });
        let mut accepted = 0u64;
        for (i, &(port, out, vc)) in injections.iter().enumerate() {
            let flit = Flit {
                out_port: out,
                vc,
                tail: true,
                msg_id: i as u64,
                flit_seq: 0,
            };
            if er.inject(port, flit).is_ok() {
                accepted += 1;
            }
        }
        let drained = er.drain(10_000);
        prop_assert_eq!(drained.len() as u64, accepted);
        prop_assert_eq!(er.occupancy(), 0);
        // Every accepted flit leaves on its requested output port.
        for (port, flit) in &drained {
            prop_assert_eq!(*port, flit.out_port);
        }
    }
}
