//! Equivalence gate for the FabricBuilder / hybrid-fidelity redesign.
//!
//! The builder's all-packet path must be a *perfect* stand-in for the
//! legacy construction APIs: same seed, same workload, byte-identical
//! telemetry fingerprint. This is what lets every legacy call site
//! migrate to `ClusterBuilder` without invalidating any recorded result,
//! and what pins the hybrid machinery's zero-cost claim — an explicit
//! all-packet fidelity map must not perturb component ids, RNG draws, or
//! event order.

use catapult::prelude::*;

mod common;

/// Drives a fixed 2-pod probe workload and returns the serialized
/// metrics snapshot.
fn fingerprint(mut cluster: Cluster) -> String {
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(1, 3, 7); // cross-pod: probes traverse the spine
    cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    schedule_probes(
        &mut cluster,
        a,
        a_send,
        SimTime::ZERO,
        SimDuration::from_micros(50),
        40,
        64,
    );
    cluster.run_to_idle();
    cluster.metrics_snapshot().to_json_pretty()
}

const SEED: u64 = 0xE9_01;

#[test]
fn builder_matches_deprecated_paper_scale_byte_for_byte() {
    #[allow(deprecated)]
    let legacy = fingerprint(Cluster::paper_scale(SEED, 2));
    let builder = fingerprint(ClusterBuilder::paper(SEED, 2).build());
    common::assert_identical("builder vs Cluster::paper_scale", &legacy, &builder);
}

#[test]
fn explicit_all_packet_fidelity_map_is_zero_cost() {
    // Routing the build through the hybrid-aware path with an explicit
    // all-packet map must not register a flow model, shift component
    // ids, or consume extra RNG draws.
    let plain = fingerprint(ClusterBuilder::paper(SEED, 2).build());
    let mapped = fingerprint(
        ClusterBuilder::paper(SEED, 2)
            .fidelity(FidelityMap::all_packet(2))
            .build(),
    );
    common::assert_identical("default vs explicit all-packet map", &plain, &mapped);
}

#[test]
fn deprecated_cluster_new_matches_builder() {
    let fabric_cfg = calib::fabric_config(calib::paper_shape(2));
    let shell_cfg = calib::shell_config();
    #[allow(deprecated)]
    let legacy = fingerprint(Cluster::new(SEED, &fabric_cfg, shell_cfg.clone()));
    let builder = fingerprint(
        ClusterBuilder::new(SEED)
            .fabric_config(&fabric_cfg)
            .shell_config(shell_cfg)
            .build(),
    );
    common::assert_identical("builder vs Cluster::new", &legacy, &builder);
}

#[test]
fn lazy_cluster_materializes_only_touched_pods() {
    let mut cluster = ClusterBuilder::paper(7, 4).lazy(true).build();
    assert_eq!(cluster.fabric().materialized_pods(), 0);
    // Spines exist from the start; pods appear on first attach.
    let spine_only = cluster.fabric().switch_count();
    cluster.add_shell(NodeAddr::new(2, 0, 0));
    assert_eq!(cluster.fabric().materialized_pods(), 1);
    assert!(cluster.fabric().is_materialized(2));
    assert!(!cluster.fabric().is_materialized(0));
    let per_pod = cluster.fabric().switch_count() - spine_only;
    cluster.add_shell(NodeAddr::new(0, 1, 3));
    assert_eq!(cluster.fabric().materialized_pods(), 2);
    assert_eq!(cluster.fabric().switch_count(), spine_only + 2 * per_pod);
}

#[test]
fn lazy_all_packet_probes_match_eager_rtt_statistics() {
    // Lazy materialization changes component *ids* (pods register on
    // first touch), so fingerprints differ — but the simulated physics
    // must not: the same probe workload sees identical RTT histograms.
    let eager = fingerprint(ClusterBuilder::paper(SEED, 2).build());
    let lazy = fingerprint(ClusterBuilder::paper(SEED, 2).lazy(true).build());
    let rtt_lines = |dump: &str| -> Vec<String> {
        dump.lines()
            .filter(|l| l.contains("rtt_ns"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        rtt_lines(&eager),
        rtt_lines(&lazy),
        "lazy materialization must not perturb probe latencies"
    );
}

#[test]
fn hybrid_island_runs_and_keeps_island_probes_packet_level() {
    let mut cluster = ClusterBuilder::paper(SEED, 4)
        .packet_island(2)
        .lazy(true)
        .build();
    assert!(
        cluster.flowsim_id().is_some(),
        "hybrid map needs a flow model"
    );
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(1, 3, 7);
    cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    schedule_probes(
        &mut cluster,
        a,
        a_send,
        SimTime::ZERO,
        SimDuration::from_micros(50),
        40,
        64,
    );
    cluster.run_to_idle();
    let snap = cluster.metrics_snapshot();
    let rtts = snap
        .histogram(&format!("shell/{a}/ltl/rtt_ns"))
        .expect("island probes record RTTs");
    assert_eq!(rtts.count, 40);
    // Flow pods never grew switches.
    assert_eq!(cluster.fabric().materialized_pods(), 2);
}
