//! Reconfiguration behaviour (Section II): "Full FPGA reconfiguration
//! briefly brings down this network link ... When network traffic cannot
//! be paused even briefly, partial reconfiguration permits packets to be
//! passed through even during reconfiguration of the role."

// `stats()` stays covered while it remains a supported (deprecated) shim.
#![allow(deprecated)]

use bytes::Bytes;
use catapult::ClusterBuilder;
use dcnet::{Msg, NetEvent, NodeAddr, Packet, PortId, TrafficClass};
use dcsim::{Component, Context, SimDuration, SimTime};
use shell::{Shell, ShellCmd, PORT_NIC};

#[derive(Debug, Default)]
struct HostNic {
    received: Vec<(SimTime, Packet)>,
}

impl Component<Msg> for HostNic {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::Net(NetEvent::Packet { pkt, .. }) = msg {
            self.received.push((ctx.now(), pkt));
        }
    }
}

/// Sends a packet from A's host every 100 ms for 3 s while A reconfigures
/// at t=500 ms; returns the packets B's host received.
fn run_with_reconfig(partial: bool) -> (usize, u64, usize) {
    let mut cluster = ClusterBuilder::paper(31, 1).build();
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 0, 2);
    let a_shell = cluster.add_shell(a);
    cluster.add_shell(b);
    let nic_b = cluster.engine_mut().add_component(HostNic::default());
    cluster.shell_mut(b).connect_nic(nic_b, PortId(0));

    let total = 30u64;
    for i in 0..total {
        let pkt = Packet::new(
            a,
            b,
            1000,
            2000,
            TrafficClass::BEST_EFFORT,
            Bytes::from(vec![i as u8; 200]),
        );
        cluster.engine_mut().schedule(
            SimTime::from_millis(i * 100),
            a_shell,
            Msg::packet(pkt, PORT_NIC),
        );
    }
    cluster.engine_mut().schedule(
        SimTime::from_millis(500),
        a_shell,
        Msg::custom(ShellCmd::Reconfigure { partial }),
    );
    cluster.run_to_idle();

    let received = cluster
        .engine()
        .component::<HostNic>(nic_b)
        .expect("nic exists")
        .received
        .len();
    let shell_a = cluster.shell(a);
    (
        received,
        shell_a.stats_view().reconfig_drops,
        total as usize,
    )
}

#[test]
fn full_reconfig_drops_traffic_for_the_load_window() {
    let (received, drops, total) = run_with_reconfig(false);
    // 1.8s load window starting at 0.5s: the ~18 packets inside it vanish.
    assert!(drops >= 15, "drops {drops}");
    assert_eq!(received + drops as usize, total);
    assert!(received < total);
}

#[test]
fn partial_reconfig_passes_all_traffic() {
    let (received, drops, total) = run_with_reconfig(true);
    assert_eq!(drops, 0, "partial reconfiguration keeps the bridge up");
    assert_eq!(received, total);
}

#[test]
fn bridge_recovers_after_full_reconfig() {
    let mut cluster = ClusterBuilder::paper(32, 1).build();
    let a = NodeAddr::new(0, 0, 1);
    let a_shell = cluster.add_shell(a);
    cluster.engine_mut().schedule(
        SimTime::ZERO,
        a_shell,
        Msg::custom(ShellCmd::Reconfigure { partial: false }),
    );
    cluster.run_until(SimTime::from_millis(100));
    assert!(!cluster.shell(a).bridge_up(), "down during the load");
    cluster.run_for(SimDuration::from_millis(2_000));
    assert!(cluster.shell(a).bridge_up(), "back up after the load");
}

#[test]
fn ltl_survives_partial_reconfig() {
    // Messages sent mid-partial-reconfig still deliver: LTL is shell
    // logic, not role logic.
    #[derive(Debug, Default)]
    struct Collector {
        got: usize,
    }
    impl Component<Msg> for Collector {
        fn on_message(&mut self, msg: Msg, _ctx: &mut Context<'_, Msg>) {
            if msg.downcast::<shell::LtlDeliver>().is_ok() {
                self.got += 1;
            }
        }
    }
    let mut cluster = ClusterBuilder::paper(33, 1).build();
    let a = NodeAddr::new(0, 0, 1);
    let b = NodeAddr::new(0, 0, 2);
    let a_shell = cluster.add_shell(a);
    cluster.add_shell(b);
    let (a_send, _, _, _) = cluster.connect_pair(a, b);
    let collector = cluster.engine_mut().add_component(Collector::default());
    cluster.set_consumer(b, collector);
    cluster.engine_mut().schedule(
        SimTime::ZERO,
        a_shell,
        Msg::custom(ShellCmd::Reconfigure { partial: true }),
    );
    cluster.engine_mut().schedule(
        SimTime::from_millis(100), // mid-reconfig (250ms window)
        a_shell,
        Msg::custom(ShellCmd::LtlSend {
            conn: a_send,
            vc: 0,
            payload: Bytes::from_static(b"role swap in progress"),
        }),
    );
    cluster.run_to_idle();
    assert_eq!(
        cluster
            .engine()
            .component::<Collector>(collector)
            .expect("collector exists")
            .got,
        1
    );
    let _ = cluster.shell(a) as &Shell;
}
