//! Offline stub of the `serde_json` crate: renders the stub `serde`
//! [`Value`] model as JSON text. Only serialization is provided — the
//! workspace never deserializes.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error (currently only non-string object keys could
/// produce one; kept for API compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |v, d, o| {
            write_value(v, indent, d, o)
        }),
        Value::Object(entries) => write_seq(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // Real serde_json errors on non-finite floats; results data is
        // always finite, so render null rather than failing the run.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats readable and round-trippable.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&x.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x".into())),
            (
                "pts".into(),
                Value::Array(vec![Value::F64(1.0), Value::F64(2.5)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"x\",\n  \"pts\": [\n    1.0,\n    2.5\n  ]\n}"
        );
        let c = to_string(&Raw(Value::Array(vec![]))).unwrap();
        assert_eq!(c, "[]");
    }

    #[test]
    fn escapes_strings() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
