//! Offline stub of the `rand` crate.
//!
//! Implements the exact API surface this workspace uses: `SmallRng`
//! (xoshiro256++ seeded through SplitMix64 — the same algorithm real
//! rand 0.8 uses for `SmallRng` on 64-bit platforms), the `RngCore`,
//! `SeedableRng` and `Rng` traits, `gen`, `gen_range`, `gen_bool` and
//! `fill_bytes`.
//!
//! The distributions are draw-compatible with rand 0.8.5: given the
//! same engine state, `gen`, `gen_range` and `gen_bool` consume the
//! same raw outputs and return the same values as the real crate, so
//! seeds reproduce the simulation traces recorded before vendoring.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign test on the most significant bit, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), matching rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[lo, hi)` without modulo bias.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Lemire widening-multiply sampling over `[lo, lo + range)`, matching
/// rand 0.8.5's `UniformInt::sample_single_inclusive` for types whose
/// "large" sampling width is u32 (u8, u16, u32). One `next_u32` draw
/// per attempt.
#[inline]
fn sample_int_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32, small: bool) -> u32 {
    debug_assert!(range != 0);
    let zone = if small {
        // Small types use the exact-modulus zone.
        let ints_to_reject = (u32::MAX - range + 1) % range;
        u32::MAX - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (range as u64);
        let (hi, lo) = ((m >> 32) as u32, m as u32);
        if lo <= zone {
            return hi;
        }
    }
}

/// As [`sample_int_u32`] but for 64-bit-wide types (u64, usize).
#[inline]
fn sample_int_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range != 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int32 {
    ($($t:ty => $small:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let range = hi.wrapping_sub(lo) as u32;
                if range == 0 {
                    // Full-width range: every value is acceptable.
                    return rng.next_u32() as $t;
                }
                lo.wrapping_add(sample_int_u32(rng, range, $small) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int32!(u8 => true, u16 => true, u32 => false);

macro_rules! impl_sample_uniform_int64 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let range = hi.wrapping_sub(lo) as u64;
                if range == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_int_u64(rng, range) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int64!(u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        // rand 0.8's UniformFloat: 52 mantissa bits mapped to [1, 2),
        // rescaled into [lo, hi).
        let mut scale = hi - lo;
        loop {
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits(fraction | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + lo;
            if res < hi {
                return res;
            }
            // Astronomically rare rounding edge: shrink scale one ulp.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // Bernoulli via integer comparison, as in rand 0.8.
        assert!((0.0..=1.0).contains(&p), "gen_bool requires 0 <= p <= 1");
        let p_int = if p == 1.0 {
            u64::MAX
        } else {
            (p * (2.0 * (1u64 << 63) as f64)) as u64
        };
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++, seeded via
    /// SplitMix64 — the same construction real rand 0.8 uses for
    /// `SmallRng` on 64-bit platforms, so streams are reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have linear dependencies, so
            // rand 0.8 takes the upper half.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = r.gen_range(3.0f64..9.0);
            assert!((3.0..9.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SmallRng::seed_from_u64(8);
        let hits = (0..4000).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
