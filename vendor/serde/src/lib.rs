//! Offline stub of the `serde` crate.
//!
//! The workspace only ever *serializes* result structs to JSON, so this
//! stub models serialization as conversion to a small JSON [`Value`]
//! tree; `serde_json` renders that tree. `#[derive(Serialize)]` comes
//! from the sibling `serde_derive` stub.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A JSON value: the serialization data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Conversion to the JSON data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.5f64, 2usize)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::F64(1.5), Value::U64(2)])])
        );
    }
}
