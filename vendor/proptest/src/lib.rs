//! Offline stub of the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `any::<T>()`, `Just`, integer/float range strategies,
//! `collection::vec`, `array::uniformN` and tuple strategies.
//!
//! Deliberate simplifications versus real proptest: case generation is
//! deterministic (seeded from the test name), failures panic on the
//! first counterexample with no shrinking, and there is no persisted
//! regression file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    /// Number of cases each property runs (real proptest defaults to
    /// 256; the stub trades a little coverage for wall-clock).
    pub const DEFAULT_CASES: u32 = 64;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: DEFAULT_CASES,
            }
        }
    }

    /// Deterministic RNG driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from a test's name, so every run of a
        /// given property sees the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - u64::MAX.wrapping_rem(n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Object-safe companion of [`Strategy`], used by `prop_oneof!`.
pub trait DynStrategy<T> {
    /// Draws one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`", created by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = self.start as u64;
                let span = (<$t>::MAX as u64).wrapping_sub(start).wrapping_add(1);
                if span == 0 {
                    // Full-width type: every bit pattern is in range.
                    rng.next_u64() as $t
                } else {
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
impl_range_from_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a weighted union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.dyn_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered above");
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A length range for [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// Creates a strategy for arrays of this fixed size.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_fns!(
        uniform4 => 4,
        uniform8 => 8,
        uniform12 => 12,
        uniform16 => 16,
        uniform32 => 32
    );
}

pub mod prelude {
    //! The usual proptest imports.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `body` over generated
/// cases. The seed files put `#[test]` inside the macro, which is passed
/// through as-is.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;
     $( $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, panicking with the
/// counterexample case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+); };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::DynStrategy<_>>)> =
            ::std::vec![$( ($weight as u32, ::std::boxed::Box::new($strat)) ),+];
        $crate::OneOf::new(arms)
    }};
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::DynStrategy<_>>)> =
            ::std::vec![$( (1u32, ::std::boxed::Box::new($strat)) ),+];
        $crate::OneOf::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_array_sizes() {
        let mut rng = TestRng::deterministic("vec_and_array_sizes");
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let exact = crate::collection::vec(any::<u8>(), 256usize).generate(&mut rng);
            assert_eq!(exact.len(), 256);
            let a = crate::array::uniform16(any::<u8>()).generate(&mut rng);
            assert_eq!(a.len(), 16);
        }
    }

    #[test]
    fn oneof_weights_all_arms_reachable() {
        let strat = prop_oneof![
            4 => Just(0u8),
            1 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [0u32; 3];
        for _ in 0..600 {
            seen[strat.generate(&mut rng) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
        assert!(seen[0] > seen[1] && seen[0] > seen[2], "{seen:?}");
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0u32..100, ys in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 8);
        }
    }

    #[test]
    fn macro_runs() {
        macro_generates_cases();
    }
}
