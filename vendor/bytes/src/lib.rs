//! Offline stub of the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply clonable, contiguous immutable byte
//! buffer backed by an `Arc`), [`BytesMut`] (a growable builder that
//! freezes into `Bytes`) and the [`BufMut`] write trait — exactly the
//! surface used by this workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
///
/// Clones share the underlying allocation; [`Bytes::slice`] returns a
/// zero-copy view into the same storage.
#[derive(Clone, Default)]
pub struct Bytes {
    // `Arc<Vec<u8>>` rather than `Arc<[u8]>`: conversion from an owned
    // `Vec` (the `BytesMut::freeze` path, taken once per reassembled
    // message on the LTL hot path) moves the vector instead of
    // allocating and copying the payload.
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-slice sharing this buffer's storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // O(1): the vector is moved behind the `Arc`, not copied.
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Clears the buffer, keeping its capacity for reuse as a scratch
    /// encode buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Sequential big-endian writes into a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian f32.
    fn put_f32(&mut self, n: f32) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_storage() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16(0xBEEF);
        m.put_u8(7);
        m.put_slice(b"abc");
        let b = m.freeze();
        assert_eq!(&b[..], &[0xBE, 0xEF, 7, b'a', b'b', b'c']);
        let s = b.slice(3..6);
        assert_eq!(&s[..], b"abc");
        assert_eq!(s.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn big_endian_encoding() {
        let mut m = BytesMut::new();
        m.put_u32(0x0102_0304);
        m.put_u64(0x0A0B_0C0D_0E0F_1011);
        m.put_f32(1.5);
        let b = m.freeze();
        assert_eq!(&b[..4], &[1, 2, 3, 4]);
        assert_eq!(&b[4..12], &[0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F, 0x10, 0x11]);
        assert_eq!(&b[12..], &1.5f32.to_be_bytes());
    }

    #[test]
    fn from_static_and_eq_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, b"hello"[..]);
        assert!(!b.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }
}
