//! Offline stub of the `criterion` crate.
//!
//! Benchmarks compile and run with a plain wall-clock timing loop and
//! report mean ns/iter (plus derived throughput) to stdout. No
//! statistical analysis, baselines or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measure_for: Duration::from_millis(40),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measure_for: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timing samples (kept for API compatibility;
    /// the stub uses it to bound the measurement loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_for = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` and prints the mean ns/iter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measure_for,
            max_samples: self.sample_size.max(2),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let ns = if b.iters > 0 {
            b.total.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id, ns);
        if ns > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let gbps = n as f64 / ns;
                    line.push_str(&format!("  ({gbps:.3} GB/s)"));
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 * 1e3 / ns;
                    line.push_str(&format!("  ({meps:.3} Melem/s)"));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    max_samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = ((self.budget.as_nanos() / self.max_samples as u128) / once.as_nanos())
            .clamp(1, 1 << 20) as u64;

        let mut samples = 0;
        while samples < self.max_samples && self.total < self.budget {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += per_sample;
            samples += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        g.throughput(Throughput::Elements(1))
            .bench_function("f", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
        g.finish();
        assert!(calls > 0);
    }
}
