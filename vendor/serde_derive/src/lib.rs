//! Offline stub of `serde_derive`: `#[derive(Serialize)]` for plain
//! structs, written against the raw `proc_macro` API (no `syn`/`quote`,
//! which are equally unreachable in an air-gapped build).
//!
//! Supports named-field structs, tuple structs and unit structs without
//! generics — the only shapes this workspace derives on. Enum or
//! generic inputs produce a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the stub's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => i += 1,
        other => {
            return Err(format!(
                "serde_derive stub supports only structs, found {other}"
            ))
        }
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected struct name, found {other}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("serde_derive stub does not support generic structs".to_string());
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream())?;
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = tuple_arity(g.stream());
            let entries: Vec<String> = (0..arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        // Unit struct.
        _ => "::serde::Value::Null".to_string(),
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("serde_derive stub generated invalid code: {e:?}"))
}

/// Extracts field names from the token stream of a braced struct body,
/// splitting on top-level commas (commas inside `<...>` generics or
/// parenthesized groups do not count).
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other}")),
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, found {other:?}")),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts fields of a tuple struct body by top-level commas.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut arity = 0usize;
    let mut saw_token = false;
    let mut trailing_comma = false;
    for tt in stream {
        saw_token = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if saw_token && !trailing_comma {
        arity += 1;
    }
    arity
}
